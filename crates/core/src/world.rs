//! Full-grid simulation state: the container used by the serial reference
//! executor and as the canonical form for cross-executor state comparison.

use crate::epithelial::{EpiCells, EpiState};
use crate::fields::Field;
use crate::foi::{foi_voxels, FoiPattern};
use crate::grid::{Coord, GridDims};
use crate::params::SimParams;
use crate::rules::RuleView;
use crate::tcell::TCellSlot;

/// The complete voxel state of a simulation, globally indexed.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    pub dims: GridDims,
    pub epi: EpiCells,
    pub tcells: Vec<TCellSlot>,
    pub virions: Field,
    pub chemokine: Field,
}

impl World {
    /// All-healthy tissue with no agents or concentrations.
    pub fn healthy(dims: GridDims) -> Self {
        let n = dims.nvoxels();
        World {
            dims,
            epi: EpiCells::healthy(n),
            tcells: vec![TCellSlot::EMPTY; n],
            virions: Field::zeros(n),
            chemokine: Field::zeros(n),
        }
    }

    /// Initial world for a parameter set: healthy tissue seeded with
    /// `params.initial_infection` virions at each focus of the pattern.
    pub fn seeded(p: &SimParams, pattern: FoiPattern) -> Self {
        let mut w = World::healthy(p.dims);
        for idx in foi_voxels(p, pattern) {
            w.virions.set(idx, p.initial_infection);
        }
        w
    }

    /// Punch airway voxels (no epithelial cell) at the given indices — used
    /// to overlay lung structure (§2.2).
    pub fn carve_airways(&mut self, voxels: &[usize]) {
        for &v in voxels {
            self.epi.set(v, EpiState::Airway, 0);
        }
    }

    pub fn nvoxels(&self) -> usize {
        self.dims.nvoxels()
    }

    /// Count epithelial cells in a state (full sweep).
    pub fn count_epi(&self, s: EpiState) -> u64 {
        self.epi.state.iter().filter(|&&b| b == s as u8).count() as u64
    }

    /// Count tissue T cells (full sweep).
    pub fn count_tcells(&self) -> u64 {
        self.tcells.iter().filter(|t| t.occupied()).count() as u64
    }

    /// First index where two worlds differ, with a description — the
    /// cross-executor bitwise-equality debugging helper.
    pub fn first_difference(&self, other: &World) -> Option<(usize, String)> {
        if self.dims != other.dims {
            return Some((0, format!("dims {:?} vs {:?}", self.dims, other.dims)));
        }
        for i in 0..self.nvoxels() {
            if self.epi.state[i] != other.epi.state[i] {
                return Some((
                    i,
                    format!(
                        "epi state {} vs {} at {:?}",
                        self.epi.state[i],
                        other.epi.state[i],
                        self.dims.coord(i)
                    ),
                ));
            }
            if self.epi.timer[i] != other.epi.timer[i] {
                return Some((
                    i,
                    format!(
                        "epi timer {} vs {} at {:?}",
                        self.epi.timer[i],
                        other.epi.timer[i],
                        self.dims.coord(i)
                    ),
                ));
            }
            if self.tcells[i] != other.tcells[i] {
                return Some((
                    i,
                    format!(
                        "tcell {:?} vs {:?} at {:?}",
                        self.tcells[i],
                        other.tcells[i],
                        self.dims.coord(i)
                    ),
                ));
            }
            if self.virions.get(i).to_bits() != other.virions.get(i).to_bits() {
                return Some((
                    i,
                    format!(
                        "virions {} vs {} at {:?}",
                        self.virions.get(i),
                        other.virions.get(i),
                        self.dims.coord(i)
                    ),
                ));
            }
            if self.chemokine.get(i).to_bits() != other.chemokine.get(i).to_bits() {
                return Some((
                    i,
                    format!(
                        "chemokine {} vs {} at {:?}",
                        self.chemokine.get(i),
                        other.chemokine.get(i),
                        self.dims.coord(i)
                    ),
                ));
            }
        }
        None
    }
}

impl RuleView for World {
    #[inline]
    fn dims(&self) -> GridDims {
        self.dims
    }
    #[inline]
    fn epi_state(&self, c: Coord) -> EpiState {
        self.epi.get(self.dims.index(c))
    }
    #[inline]
    fn tcell(&self, c: Coord) -> TCellSlot {
        self.tcells[self.dims.index(c)]
    }
    #[inline]
    fn virions(&self, c: Coord) -> f32 {
        self.virions.get(self.dims.index(c))
    }
    #[inline]
    fn chemokine(&self, c: Coord) -> f32 {
        self.chemokine.get(self.dims.index(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foi::FoiPattern;

    #[test]
    fn seeded_world_has_foi_virions() {
        let p = SimParams {
            dims: GridDims::new2d(32, 32),
            num_foi: 4,
            ..SimParams::default()
        };
        let w = World::seeded(&p, FoiPattern::UniformLattice);
        assert_eq!(w.virions.count_positive(), 4);
        assert_eq!(
            w.virions.sum(),
            4.0 * p.initial_infection as f64,
            "each focus gets the initial load"
        );
        assert_eq!(w.count_epi(EpiState::Healthy), 32 * 32);
        assert_eq!(w.count_tcells(), 0);
    }

    #[test]
    fn carve_airways() {
        let mut w = World::healthy(GridDims::new2d(8, 8));
        w.carve_airways(&[0, 1, 2]);
        assert_eq!(w.count_epi(EpiState::Airway), 3);
        assert_eq!(w.count_epi(EpiState::Healthy), 61);
    }

    #[test]
    fn first_difference_detects_each_component() {
        let dims = GridDims::new2d(4, 4);
        let base = World::healthy(dims);
        assert!(base.first_difference(&base.clone()).is_none());

        let mut m = base.clone();
        m.epi.set(3, EpiState::Dead, 0);
        assert!(base.first_difference(&m).unwrap().1.contains("epi state"));

        let mut m = base.clone();
        m.epi.timer[3] = 9;
        assert!(base.first_difference(&m).unwrap().1.contains("epi timer"));

        let mut m = base.clone();
        m.tcells[5] = TCellSlot::fresh(10);
        assert!(base.first_difference(&m).unwrap().1.contains("tcell"));

        let mut m = base.clone();
        m.virions.set(7, 1.0);
        assert!(base.first_difference(&m).unwrap().1.contains("virions"));

        let mut m = base.clone();
        m.chemokine.set(7, 1.0);
        assert!(base.first_difference(&m).unwrap().1.contains("chemokine"));
    }

    #[test]
    fn world_implements_ruleview() {
        let dims = GridDims::new2d(4, 4);
        let mut w = World::healthy(dims);
        let c = Coord::new(1, 1, 0);
        w.virions.set(dims.index(c), 2.5);
        assert_eq!(RuleView::virions(&w, c), 2.5);
        assert_eq!(RuleView::epi_state(&w, c), EpiState::Healthy);
        assert!(!RuleView::tcell(&w, c).occupied());
    }
}
