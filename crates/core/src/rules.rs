//! The staged per-timestep model rules shared by every executor.
//!
//! These functions are *pure*: given read access to the step-start state (a
//! [`RuleView`]) plus `(seed, step)`, they return intents/transitions. All
//! randomness is counter-based on **global** voxel ids, so any executor that
//! can see a voxel's neighborhood computes exactly the same result — the
//! property behind the paper's one-communication-wave tiebreak (§3.1): two
//! devices sharing a boundary independently agree on every contest.
//!
//! ## Phase order within a step (fixed across executors)
//!
//! 1. extravasation trials (oldest state wins a voxel: a trial blocks movers)
//! 2. T-cell planning ([`plan_tcell`]) on the step-start state
//! 3. conflict resolution: per-target max [`Bid`]
//! 4. apply: deaths, binds (epi → apoptotic), moves
//! 5. epithelial FSM ([`epi_update`]) on the post-bind state
//! 6. production + diffusion ([`crate::diffusion`])
//! 7. settle fresh T cells, statistics
//!
//! ## Exactness of activity tracking
//!
//! [`voxel_active`] defines the activity predicate used by both the CPU
//! active list and the GPU active tiles. Processing only the 1-dilation of
//! active voxels is *exact* (not an approximation): an inactive voxel with
//! inactive neighbors has no virions/chemokine in range, no T cells in
//! range, and a steady epithelial state, so every phase above is a no-op
//! there. Nothing in SIMCoV moves faster than one voxel per step (§3.2).

use crate::epithelial::EpiState;
use crate::grid::{Coord, GridDims};
use crate::params::SimParams;
use crate::rng::{CounterRng, Stream};
use crate::tcell::TCellSlot;

/// Read access to the step-start simulation state around a voxel. Parallel
/// executors implement this over subdomain-plus-ghost storage; callers only
/// evaluate coordinates within Chebyshev distance 1 of voxels they own.
pub trait RuleView {
    fn dims(&self) -> GridDims;
    fn epi_state(&self, c: Coord) -> EpiState;
    fn tcell(&self, c: Coord) -> TCellSlot;
    fn virions(&self, c: Coord) -> f32;
    fn chemokine(&self, c: Coord) -> f32;
}

/// A movement/binding bid: `(64-bit random value, source voxel id)` packed so
/// larger is better and `0` means "no bid". Ties on the random value (already
/// ~2⁻⁶⁴ unlikely, §3.1) are broken by the source id, making resolution a
/// total order — resolution is a pure `max`, commutative and associative, so
/// ghost-region combining is order-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bid(pub u128);

impl Bid {
    pub const EMPTY: Bid = Bid(0);

    /// Construct from a bid value and the bidder's global voxel id.
    #[inline]
    pub fn new(value: u64, src: u64) -> Bid {
        Bid(((value as u128) << 64) | (src as u128 + 1))
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The bidder's global voxel id. Panics on `EMPTY`.
    #[inline]
    pub fn src(self) -> u64 {
        debug_assert!(!self.is_empty());
        (self.0 as u64) - 1
    }

    /// Max-combine (the halo-merge operation).
    #[inline]
    pub fn merge(self, other: Bid) -> Bid {
        self.max(other)
    }
}

/// The action a tissue T cell takes this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TCellAction {
    /// Tissue lifetime exhausted; the cell is removed.
    Die,
    /// Still bound to an epithelial cell; the bind counter decrements.
    StayBound,
    /// No action (hit a wall, ran into another T cell, or failed the binding
    /// probability draw). T cells do not retry within a step (§3.1).
    Stay,
    /// Attempt to bind the expressing epithelial cell at `target`.
    TryBind { target: Coord, bid: Bid },
    /// Attempt to move to the unoccupied voxel at `target`.
    TryMove { target: Coord, bid: Bid },
}

/// The bid value a T cell at global voxel `gid` generates this step.
#[inline]
pub fn tcell_bid_value(seed: u64, step: u64, gid: u64) -> u64 {
    CounterRng::new(seed, Stream::TCellBid, step, gid).next_u64()
}

/// Plan the action of the T cell at `c` (which must hold an established,
/// non-fresh T cell) from the step-start state.
pub fn plan_tcell<V: RuleView>(view: &V, p: &SimParams, step: u64, c: Coord) -> TCellAction {
    let dims = view.dims();
    let slot = view.tcell(c);
    debug_assert!(slot.occupied() && !slot.is_fresh());
    let gid = dims.index(c) as u64;

    if slot.tissue_steps() <= 1 {
        return TCellAction::Die;
    }
    if slot.bind_steps() > 0 {
        return TCellAction::StayBound;
    }

    // Binding scan: own voxel first, then neighbors in offset-table order.
    // Bounded candidate buffer: 1 + 26 neighbors max.
    let mut candidates = [Coord::new(0, 0, 0); 27];
    let mut n_cand = 0usize;
    if view.epi_state(c).bindable() {
        candidates[n_cand] = c;
        n_cand += 1;
    }
    for &(dx, dy, dz) in dims.neighbor_offsets() {
        let t = c.offset(dx, dy, dz);
        if dims.in_bounds(t) && view.epi_state(t).bindable() {
            candidates[n_cand] = t;
            n_cand += 1;
        }
    }
    if n_cand > 0 {
        let mut action_rng = CounterRng::new(p.seed, Stream::TCellAction, step, gid);
        let target = candidates[action_rng.below(n_cand as u64) as usize];
        let mut bind_rng = CounterRng::new(p.seed, Stream::BindProb, step, gid);
        if bind_rng.chance(p.max_binding_prob) {
            let bid = Bid::new(tcell_bid_value(p.seed, step, gid), gid);
            return TCellAction::TryBind { target, bid };
        }
        return TCellAction::Stay;
    }

    // Movement: pick a uniformly random direction from the full offset
    // table; walls and occupied voxels make the cell stay ("T cells can and
    // do run into each other", §3.1).
    let offs = dims.neighbor_offsets();
    let mut action_rng = CounterRng::new(p.seed, Stream::TCellAction, step, gid);
    let (dx, dy, dz) = offs[action_rng.below(offs.len() as u64) as usize];
    let target = c.offset(dx, dy, dz);
    if !dims.in_bounds(target) {
        return TCellAction::Stay;
    }
    if view.tcell(target).occupied() {
        return TCellAction::Stay;
    }
    let bid = Bid::new(tcell_bid_value(p.seed, step, gid), gid);
    TCellAction::TryMove { target, bid }
}

/// Result of one epithelial FSM update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpiUpdate {
    pub state: EpiState,
    pub timer: u32,
    /// The transition that happened, for incremental statistics.
    pub transition: EpiTransition,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpiTransition {
    None,
    /// Healthy → incubating.
    Infected,
    /// Incubating → expressing.
    StartedExpressing,
    /// Expressing/apoptotic timer ran out → dead.
    Died,
}

/// Poisson-drawn period helpers, keyed on the voxel so all executors agree.
#[inline]
pub fn incubation_timer(p: &SimParams, step: u64, gid: u64) -> u32 {
    CounterRng::new(p.seed, Stream::IncubationPeriod, step, gid).poisson(p.incubation_period)
}

#[inline]
pub fn expressing_timer(p: &SimParams, step: u64, gid: u64) -> u32 {
    CounterRng::new(p.seed, Stream::ExpressingPeriod, step, gid).poisson(p.expressing_period)
}

/// The apoptosis countdown assigned when a T cell binds the epithelial cell
/// at global voxel `gid` on `step`.
#[inline]
pub fn apoptosis_timer(p: &SimParams, step: u64, gid: u64) -> u32 {
    CounterRng::new(p.seed, Stream::ApoptosisPeriod, step, gid).poisson(p.apoptosis_period)
}

/// One voxel's epithelial FSM step. `virions` is the step-start virion
/// concentration at the voxel (infection probability `min(1, infectivity ·
/// virions)`). Runs *after* binding has been applied, so a cell bound this
/// step enters here as `Apoptotic` with a fresh timer (which then decrements
/// once this step — consistent in every executor).
pub fn epi_update(
    state: EpiState,
    timer: u32,
    virions: f32,
    p: &SimParams,
    step: u64,
    gid: u64,
) -> EpiUpdate {
    match state {
        EpiState::Airway | EpiState::Dead => EpiUpdate {
            state,
            timer,
            transition: EpiTransition::None,
        },
        EpiState::Healthy => {
            if virions > 0.0 {
                let prob = (p.infectivity * virions as f64).min(1.0);
                let mut rng = CounterRng::new(p.seed, Stream::Infection, step, gid);
                if rng.chance(prob) {
                    return EpiUpdate {
                        state: EpiState::Incubating,
                        timer: incubation_timer(p, step, gid),
                        transition: EpiTransition::Infected,
                    };
                }
            }
            EpiUpdate {
                state,
                timer,
                transition: EpiTransition::None,
            }
        }
        EpiState::Incubating => {
            let t = timer.saturating_sub(1);
            if t == 0 {
                EpiUpdate {
                    state: EpiState::Expressing,
                    timer: expressing_timer(p, step, gid),
                    transition: EpiTransition::StartedExpressing,
                }
            } else {
                EpiUpdate {
                    state,
                    timer: t,
                    transition: EpiTransition::None,
                }
            }
        }
        EpiState::Expressing | EpiState::Apoptotic => {
            let t = timer.saturating_sub(1);
            if t == 0 {
                EpiUpdate {
                    state: EpiState::Dead,
                    timer: 0,
                    transition: EpiTransition::Died,
                }
            } else {
                EpiUpdate {
                    state,
                    timer: t,
                    transition: EpiTransition::None,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Extravasation
// ---------------------------------------------------------------------------

/// The voxel extravasation trial `i` of `step` lands on (uniform over the
/// whole grid, §2.2).
#[inline]
pub fn extrav_voxel(p: &SimParams, step: u64, trial: u64) -> usize {
    let n = p.dims.nvoxels() as u64;
    CounterRng::new(p.seed, Stream::ExtravVoxel, step, trial).below(n) as usize
}

/// Whether trial `i` succeeds given the chemokine level at its voxel: the
/// signal must exceed the detection threshold and the entry probability is
/// proportional to (equal to, capped at 1) the concentration.
#[inline]
pub fn extrav_succeeds(p: &SimParams, step: u64, trial: u64, chem: f32) -> bool {
    if chem < p.min_chemokine {
        return false;
    }
    let mut rng = CounterRng::new(p.seed, Stream::ExtravProb, step, trial);
    rng.chance((chem as f64).clamp(0.0, 1.0))
}

/// The tissue lifetime (steps) of the T cell entering via trial `i`.
#[inline]
pub fn extrav_lifetime(p: &SimParams, step: u64, trial: u64) -> u32 {
    CounterRng::new(p.seed, Stream::TCellLife, step, trial).poisson(p.tcell_tissue_period)
}

// ---------------------------------------------------------------------------
// Activity predicate
// ---------------------------------------------------------------------------

/// Is there any activity at a voxel? Used (after 1-dilation) by the CPU
/// active list and the GPU active tiles; see the module docs for the
/// exactness argument.
#[inline]
pub fn voxel_active(epi: EpiState, tcell: TCellSlot, virions: f32, chem: f32) -> bool {
    tcell.occupied() || virions > 0.0 || chem > 0.0 || epi.is_transient()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;

    /// A tiny hand-rolled view for rule unit tests.
    struct TestView {
        dims: GridDims,
        epi: Vec<EpiState>,
        tcell: Vec<TCellSlot>,
        vir: Vec<f32>,
        chem: Vec<f32>,
    }

    impl TestView {
        fn new(dims: GridDims) -> Self {
            let n = dims.nvoxels();
            TestView {
                dims,
                epi: vec![EpiState::Healthy; n],
                tcell: vec![TCellSlot::EMPTY; n],
                vir: vec![0.0; n],
                chem: vec![0.0; n],
            }
        }
    }

    impl RuleView for TestView {
        fn dims(&self) -> GridDims {
            self.dims
        }
        fn epi_state(&self, c: Coord) -> EpiState {
            self.epi[self.dims.index(c)]
        }
        fn tcell(&self, c: Coord) -> TCellSlot {
            self.tcell[self.dims.index(c)]
        }
        fn virions(&self, c: Coord) -> f32 {
            self.vir[self.dims.index(c)]
        }
        fn chemokine(&self, c: Coord) -> f32 {
            self.chem[self.dims.index(c)]
        }
    }

    fn params(dims: GridDims) -> SimParams {
        SimParams {
            dims,
            ..SimParams::default()
        }
    }

    #[test]
    fn bid_ordering_and_merge() {
        let a = Bid::new(10, 3);
        let b = Bid::new(10, 4);
        let c = Bid::new(11, 0);
        assert!(b > a, "equal values break ties by source id");
        assert!(c > b, "higher value wins");
        assert_eq!(a.merge(c), c);
        assert_eq!(Bid::EMPTY.merge(a), a);
        assert!(Bid::EMPTY < Bid::new(0, 0));
        assert_eq!(Bid::new(0, 0).src(), 0);
        assert_eq!(b.src(), 4);
    }

    #[test]
    fn dying_tcell_plans_death() {
        let dims = GridDims::new2d(5, 5);
        let mut v = TestView::new(dims);
        let c = Coord::new(2, 2, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(1, 0);
        let p = params(dims);
        assert_eq!(plan_tcell(&v, &p, 0, c), TCellAction::Die);
    }

    #[test]
    fn bound_tcell_stays_bound() {
        let dims = GridDims::new2d(5, 5);
        let mut v = TestView::new(dims);
        let c = Coord::new(2, 2, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(50, 3);
        let p = params(dims);
        assert_eq!(plan_tcell(&v, &p, 0, c), TCellAction::StayBound);
    }

    #[test]
    fn tcell_binds_expressing_neighbor() {
        let dims = GridDims::new2d(5, 5);
        let mut v = TestView::new(dims);
        let c = Coord::new(2, 2, 0);
        let e = Coord::new(3, 2, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(50, 0);
        v.epi[dims.index(e)] = EpiState::Expressing;
        let p = params(dims); // max_binding_prob = 1.0
        match plan_tcell(&v, &p, 0, c) {
            TCellAction::TryBind { target, bid } => {
                assert_eq!(target, e);
                assert_eq!(bid.src(), dims.index(c) as u64);
            }
            other => panic!("expected bind, got {other:?}"),
        }
    }

    #[test]
    fn tcell_prefers_own_voxel_epi_when_only_candidate() {
        let dims = GridDims::new2d(5, 5);
        let mut v = TestView::new(dims);
        let c = Coord::new(2, 2, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(50, 0);
        v.epi[dims.index(c)] = EpiState::Expressing;
        let p = params(dims);
        match plan_tcell(&v, &p, 0, c) {
            TCellAction::TryBind { target, .. } => assert_eq!(target, c),
            other => panic!("expected bind, got {other:?}"),
        }
    }

    #[test]
    fn zero_binding_prob_makes_tcell_stay() {
        let dims = GridDims::new2d(5, 5);
        let mut v = TestView::new(dims);
        let c = Coord::new(2, 2, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(50, 0);
        v.epi[dims.index(Coord::new(3, 2, 0))] = EpiState::Expressing;
        let mut p = params(dims);
        p.max_binding_prob = 0.0;
        assert_eq!(plan_tcell(&v, &p, 0, c), TCellAction::Stay);
    }

    #[test]
    fn tcell_moves_when_nothing_to_bind() {
        let dims = GridDims::new2d(9, 9);
        let mut v = TestView::new(dims);
        let c = Coord::new(4, 4, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(50, 0);
        let p = params(dims);
        // Interior voxel, empty neighbors: must produce a move.
        match plan_tcell(&v, &p, 0, c) {
            TCellAction::TryMove { target, bid } => {
                assert_eq!(target.chebyshev(c), 1);
                assert_eq!(bid.src(), dims.index(c) as u64);
            }
            other => panic!("expected move, got {other:?}"),
        }
    }

    #[test]
    fn tcell_blocked_by_occupied_target_stays() {
        let dims = GridDims::new2d(9, 9);
        let mut v = TestView::new(dims);
        let c = Coord::new(4, 4, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(50, 0);
        // Occupy every neighbor: whatever direction is drawn, the move fails.
        for n in dims.neighbors(c).collect::<Vec<_>>() {
            v.tcell[n] = TCellSlot::established(50, 0);
        }
        let p = params(dims);
        assert_eq!(plan_tcell(&v, &p, 0, c), TCellAction::Stay);
    }

    #[test]
    fn plan_is_deterministic() {
        let dims = GridDims::new2d(9, 9);
        let mut v = TestView::new(dims);
        let c = Coord::new(4, 4, 0);
        v.tcell[dims.index(c)] = TCellSlot::established(50, 0);
        let p = params(dims);
        assert_eq!(plan_tcell(&v, &p, 3, c), plan_tcell(&v, &p, 3, c));
        // Different steps generally give different directions — just check
        // both are moves.
        assert!(matches!(
            plan_tcell(&v, &p, 4, c),
            TCellAction::TryMove { .. }
        ));
    }

    #[test]
    fn epi_fsm_progression() {
        let dims = GridDims::new2d(3, 3);
        let p = params(dims);
        // Healthy with no virions: no-op.
        let u = epi_update(EpiState::Healthy, 0, 0.0, &p, 0, 0);
        assert_eq!(u.state, EpiState::Healthy);
        assert_eq!(u.transition, EpiTransition::None);

        // Healthy with overwhelming virions: infects (prob 1).
        let u = epi_update(EpiState::Healthy, 0, 1e9, &p, 0, 0);
        assert_eq!(u.state, EpiState::Incubating);
        assert_eq!(u.transition, EpiTransition::Infected);
        assert!(u.timer >= 1);

        // Incubating counts down then expresses.
        let u = epi_update(EpiState::Incubating, 2, 0.0, &p, 1, 0);
        assert_eq!(u.state, EpiState::Incubating);
        assert_eq!(u.timer, 1);
        let u = epi_update(EpiState::Incubating, 1, 0.0, &p, 2, 0);
        assert_eq!(u.state, EpiState::Expressing);
        assert_eq!(u.transition, EpiTransition::StartedExpressing);

        // Expressing dies at timer exhaustion.
        let u = epi_update(EpiState::Expressing, 1, 0.0, &p, 3, 0);
        assert_eq!(u.state, EpiState::Dead);
        assert_eq!(u.transition, EpiTransition::Died);

        // Apoptotic dies at timer exhaustion.
        let u = epi_update(EpiState::Apoptotic, 1, 0.0, &p, 3, 0);
        assert_eq!(u.state, EpiState::Dead);

        // Dead and airway are inert.
        for s in [EpiState::Dead, EpiState::Airway] {
            let u = epi_update(s, 0, 1e9, &p, 5, 0);
            assert_eq!(u.state, s);
            assert_eq!(u.transition, EpiTransition::None);
        }
    }

    #[test]
    fn extravasation_trial_determinism_and_threshold() {
        let dims = GridDims::new2d(16, 16);
        let p = params(dims);
        assert_eq!(extrav_voxel(&p, 3, 7), extrav_voxel(&p, 3, 7));
        assert!(extrav_voxel(&p, 3, 7) < dims.nvoxels());
        // Below threshold never succeeds.
        assert!(!extrav_succeeds(&p, 3, 7, 0.0));
        assert!(!extrav_succeeds(&p, 3, 7, p.min_chemokine / 2.0));
        // Saturated signal always succeeds.
        assert!(extrav_succeeds(&p, 3, 7, 1.0));
        assert!(extrav_lifetime(&p, 3, 7) >= 1);
    }

    #[test]
    fn activity_predicate() {
        assert!(!voxel_active(EpiState::Healthy, TCellSlot::EMPTY, 0.0, 0.0));
        assert!(!voxel_active(EpiState::Dead, TCellSlot::EMPTY, 0.0, 0.0));
        assert!(voxel_active(
            EpiState::Healthy,
            TCellSlot::established(5, 0),
            0.0,
            0.0
        ));
        assert!(voxel_active(EpiState::Healthy, TCellSlot::EMPTY, 0.1, 0.0));
        assert!(voxel_active(EpiState::Healthy, TCellSlot::EMPTY, 0.0, 0.1));
        assert!(voxel_active(
            EpiState::Incubating,
            TCellSlot::EMPTY,
            0.0,
            0.0
        ));
    }
}
