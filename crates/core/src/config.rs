//! SIMCoV-style configuration file parsing.
//!
//! The open-source SIMCoV drives runs from `key = value` config files
//! (e.g. `covid_default.config`); this module parses that format so
//! existing workflows can be ported. Lines starting with `;` or `#` are
//! comments; keys use the SIMCoV names where they exist.

use crate::grid::GridDims;
use crate::params::SimParams;

/// Parse a SIMCoV-style config string into parameters, starting from the
/// defaults. Unknown keys are rejected (typos should fail loudly).
pub fn parse_config(text: &str) -> Result<SimParams, String> {
    let mut p = SimParams::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{line}`", lineno + 1))?;
        let key = key.trim();
        let value = value.trim();
        let err = |e: &dyn std::fmt::Display| format!("line {}: {key}: {e}", lineno + 1);

        macro_rules! num {
            ($ty:ty) => {
                value.parse::<$ty>().map_err(|e| err(&e))?
            };
        }
        match key {
            "dim" => {
                // SIMCoV format: "x y z".
                let parts: Vec<&str> = value.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(err(&"expected three dimensions `x y z`"));
                }
                let x = parts[0].parse::<u32>().map_err(|e| err(&e))?;
                let y = parts[1].parse::<u32>().map_err(|e| err(&e))?;
                let z = parts[2].parse::<u32>().map_err(|e| err(&e))?;
                p.dims = GridDims::new3d(x, y, z.max(1));
            }
            "timesteps" => p.steps = num!(u64),
            "seed" | "rnd-seed" => p.seed = num!(u64),
            "infectivity" => p.infectivity = num!(f64),
            "virion-production" => p.virion_production = num!(f32),
            "virion-clearance" => p.virion_clearance = num!(f32),
            "virion-diffusion" => p.virion_diffusion = num!(f32),
            "min-virions" => p.min_virions = num!(f32),
            "chemokine-production" => p.chemokine_production = num!(f32),
            "chemokine-decay" => p.chemokine_decay = num!(f32),
            "chemokine-diffusion" => p.chemokine_diffusion = num!(f32),
            "min-chemokine" => p.min_chemokine = num!(f32),
            "incubation-period" => p.incubation_period = num!(f64),
            "expressing-period" => p.expressing_period = num!(f64),
            "apoptosis-period" => p.apoptosis_period = num!(f64),
            "tcell-generation-rate" => p.tcell_generation_rate = num!(f64),
            "tcell-initial-delay" => p.tcell_initial_delay = num!(u64),
            "tcell-vascular-period" => p.tcell_vascular_period = num!(f64),
            "tcell-tissue-period" => p.tcell_tissue_period = num!(f64),
            "tcell-binding-period" => p.tcell_binding_period = num!(u32),
            "max-binding-prob" => p.max_binding_prob = num!(f64),
            "initial-infection" => p.initial_infection = num!(f32),
            "num-infections" | "num-foi" => p.num_foi = num!(u32),
            other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
        }
    }
    p.validate()?;
    Ok(p)
}

/// Render parameters back to the config format (round-trippable).
pub fn to_config(p: &SimParams) -> String {
    format!(
        "; SIMCoV configuration\n\
         dim = {} {} {}\n\
         timesteps = {}\n\
         seed = {}\n\
         infectivity = {}\n\
         virion-production = {}\n\
         virion-clearance = {}\n\
         virion-diffusion = {}\n\
         min-virions = {}\n\
         chemokine-production = {}\n\
         chemokine-decay = {}\n\
         chemokine-diffusion = {}\n\
         min-chemokine = {}\n\
         incubation-period = {}\n\
         expressing-period = {}\n\
         apoptosis-period = {}\n\
         tcell-generation-rate = {}\n\
         tcell-initial-delay = {}\n\
         tcell-vascular-period = {}\n\
         tcell-tissue-period = {}\n\
         tcell-binding-period = {}\n\
         max-binding-prob = {}\n\
         initial-infection = {}\n\
         num-infections = {}\n",
        p.dims.x,
        p.dims.y,
        p.dims.z,
        p.steps,
        p.seed,
        p.infectivity,
        p.virion_production,
        p.virion_clearance,
        p.virion_diffusion,
        p.min_virions,
        p.chemokine_production,
        p.chemokine_decay,
        p.chemokine_diffusion,
        p.min_chemokine,
        p.incubation_period,
        p.expressing_period,
        p.apoptosis_period,
        p.tcell_generation_rate,
        p.tcell_initial_delay,
        p.tcell_vascular_period,
        p.tcell_tissue_period,
        p.tcell_binding_period,
        p.max_binding_prob,
        p.initial_infection,
        p.num_foi,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_config() {
        let p = parse_config(
            "; covid run\n\
             dim = 100 100 1\n\
             timesteps = 500\n\
             num-infections = 4\n\
             infectivity = 0.002\n",
        )
        .unwrap();
        assert_eq!(p.dims, GridDims::new2d(100, 100));
        assert_eq!(p.steps, 500);
        assert_eq!(p.num_foi, 4);
        assert_eq!(p.infectivity, 0.002);
        // Untouched keys keep defaults.
        assert_eq!(p.virion_production, SimParams::default().virion_production);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_config("\n; c1\n# c2\n  \ntimesteps = 7\n").unwrap();
        assert_eq!(p.steps, 7);
    }

    #[test]
    fn unknown_key_rejected_with_line_number() {
        let e = parse_config("timesteps = 5\nvirulence = 3\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert!(e.contains("virulence"), "{e}");
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(parse_config("timesteps 5").is_err());
        assert!(parse_config("timesteps = five").is_err());
    }

    #[test]
    fn invalid_values_rejected_by_validation() {
        let e = parse_config("virion-diffusion = 1.5").unwrap_err();
        assert!(e.contains("virion_diffusion"), "{e}");
    }

    #[test]
    fn roundtrip() {
        let p = SimParams {
            dims: GridDims::new3d(30, 20, 10),
            num_foi: 9,
            infectivity: 0.0042,
            ..SimParams::default()
        };
        let q = parse_config(&to_config(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn simcov_3d_dims() {
        let p = parse_config("dim = 50 60 70").unwrap();
        assert_eq!(p.dims, GridDims::new3d(50, 60, 70));
        assert!(!p.dims.is_2d());
    }
}
