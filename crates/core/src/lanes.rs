//! Wide-lane (SIMD-shaped) stencil kernels with a scalar tail.
//!
//! The diffusion inner loop is the hottest kernel in every executor. The SoA
//! layout ([`crate::soa`]) makes it vectorization-ready; this module supplies
//! the fixed-width chunked form: [`LANES`] consecutive voxels are processed
//! per chunk with one accumulator per lane, the neighbor-delta loop on the
//! *outside* and the lane loop on the *inside* — the shape LLVM
//! autovectorizes into packed loads/adds today and `std::simd` can replace
//! verbatim once it stabilizes. A scalar tail (the existing
//! [`StencilDeltas::sum2`] path) covers run remainders shorter than a chunk.
//!
//! ## Bitwise reproducibility
//!
//! Lane `l` of a chunk based at voxel `i` accumulates `field[i + l + d]` for
//! each delta `d` in [`StencilDeltas::deltas`] order — exactly the additions,
//! in exactly the order, that the scalar `sum2(i + l, ..)` performs. Lanes
//! never mix: there is no horizontal reduction, so widening the chunk cannot
//! reassociate any f32 sum. The per-lane diffusion update then calls the same
//! [`diffuse_voxel`] scalar function. The wide path is therefore *structurally*
//! bit-identical to the scalar oracle — a property the differential suite
//! (`tests/simd_differential.rs`) enforces over adversarial shapes, and the
//! unit tests below enforce per-chunk.
//!
//! [`StencilDeltas::sum2`]: crate::soa::StencilDeltas::sum2
//! [`StencilDeltas::deltas`]: crate::soa::StencilDeltas::deltas

use crate::diffusion::{diffuse_voxel, DiffuseCoeffs};
use crate::fields::Field;
use crate::soa::StencilDeltas;

/// Fixed chunk width of the wide kernels, in f32 lanes. Eight lanes fill one
/// AVX2 register (256 bit) and two NEON registers; the chunked loop shape
/// vectorizes on narrower ISAs too (the compiler splits the lane loop).
pub const LANES: usize = 8;

/// Which diffusion kernel an executor runs. The trajectories are bitwise
/// identical by construction; `Scalar` is kept alive as the differential
/// oracle the wide path is tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Per-voxel gather via [`StencilDeltas::sum2`] — the reference path.
    ///
    /// [`StencilDeltas::sum2`]: crate::soa::StencilDeltas::sum2
    Scalar,
    /// Fixed-width chunked gather over [`LANES`] voxels with a scalar tail.
    #[default]
    Wide,
}

impl KernelMode {
    pub fn name(&self) -> &'static str {
        match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Wide => "wide",
        }
    }
}

/// Gather-sum two fields over the Moore neighborhoods of [`LANES`]
/// consecutive voxels starting at `base`, one accumulator pair per lane.
///
/// The caller guarantees every voxel `base..base + LANES` is interior (its
/// whole neighborhood resolves by constant deltas within the box). Deltas
/// iterate on the outside so each lane receives its additions in
/// offset-table order — the canonical rounding order of the scalar path.
#[inline]
pub fn gather2_lanes(
    st: &StencilDeltas,
    base: usize,
    a: &Field,
    b: &Field,
    sa: &mut [f32; LANES],
    sb: &mut [f32; LANES],
) {
    *sa = [0.0; LANES];
    *sb = [0.0; LANES];
    for &d in st.deltas() {
        let u = (base as isize + d) as usize;
        let ra = &a.data[u..u + LANES];
        let rb = &b.data[u..u + LANES];
        for l in 0..LANES {
            sa[l] += ra[l];
            sb[l] += rb[l];
        }
    }
}

/// Diffuse a run of `len` consecutive *interior* voxels starting at linear
/// index `base`: full-width chunks via [`gather2_lanes`], then a scalar tail.
/// `emit(i, new_virions, new_chem)` is called once per voxel in ascending
/// index order, so staged write-back buffers keep their scalar-path order.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn diffuse_interior_run(
    st: &StencilDeltas,
    base: usize,
    len: usize,
    virions: &Field,
    chem: &Field,
    vc: DiffuseCoeffs,
    cc: DiffuseCoeffs,
    mut emit: impl FnMut(usize, f32, f32),
) {
    let n_valid = st.len();
    let end = base + len;
    let mut i = base;
    let mut sv = [0.0f32; LANES];
    let mut sc = [0.0f32; LANES];
    while i + LANES <= end {
        gather2_lanes(st, i, virions, chem, &mut sv, &mut sc);
        for l in 0..LANES {
            let nv = diffuse_voxel(virions.data[i + l], sv[l], n_valid, vc.d, vc.decay, vc.min);
            let nc = diffuse_voxel(chem.data[i + l], sc[l], n_valid, cc.d, cc.decay, cc.min);
            emit(i + l, nv, nc);
        }
        i += LANES;
    }
    while i < end {
        let (vs, cs) = st.sum2(i, virions, chem);
        let nv = diffuse_voxel(virions.data[i], vs, n_valid, vc.d, vc.decay, vc.min);
        let nc = diffuse_voxel(chem.data[i], cs, n_valid, cc.d, cc.decay, cc.min);
        emit(i, nv, nc);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;

    fn coeffs(d: f32, decay: f32, min: f32) -> DiffuseCoeffs {
        DiffuseCoeffs { d, decay, min }
    }

    /// Order-sensitive fill: values spanning many magnitudes so any
    /// reassociation of the f32 sums changes the bits.
    fn adversarial_fields(n: usize, seed: u64) -> (Field, Field) {
        let mut a = Field::zeros(n);
        let mut b = Field::zeros(n);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for v in 0..n {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (s >> 40) as f32 / (1u64 << 24) as f32;
            // Mix huge, tiny and denormal-adjacent magnitudes.
            let scale = match v % 4 {
                0 => 1.0e7,
                1 => 1.0,
                2 => 1.0e-30,
                _ => 1.0e-38,
            };
            a.set(v, u * scale + 1.0e-41);
            b.set(v, (1.0 - u) * scale);
        }
        (a, b)
    }

    #[test]
    fn wide_gather_matches_scalar_bitwise() {
        for dims in [GridDims::new2d(32, 8), GridDims::new3d(12, 5, 4)] {
            let st = StencilDeltas::for_grid(dims);
            let (a, b) = adversarial_fields(dims.nvoxels(), 7);
            let nx = dims.x as usize;
            // Every full-width interior chunk of every interior row.
            for v in 0..dims.nvoxels() {
                let c = dims.coord(v);
                let x = c.x as usize;
                if !st.is_interior(c)
                    || x + LANES + 1 > nx
                    || !st.is_interior(dims.coord(v + LANES - 1))
                {
                    continue;
                }
                let mut sa = [0.0f32; LANES];
                let mut sb = [0.0f32; LANES];
                gather2_lanes(&st, v, &a, &b, &mut sa, &mut sb);
                for l in 0..LANES {
                    let (ea, eb) = st.sum2(v + l, &a, &b);
                    assert_eq!(sa[l].to_bits(), ea.to_bits(), "lane {l} at {v}");
                    assert_eq!(sb[l].to_bits(), eb.to_bits(), "lane {l} at {v}");
                }
            }
        }
    }

    #[test]
    fn interior_run_matches_scalar_for_every_length() {
        // Lengths straddling the chunk width: 0, 1, LANES-1, LANES, LANES+1,
        // 2*LANES+3 — the tail and chunk boundaries must all agree.
        let dims = GridDims::new2d(64, 5);
        let st = StencilDeltas::for_grid(dims);
        let (a, b) = adversarial_fields(dims.nvoxels(), 3);
        let vc = coeffs(0.15, 0.004, 1.0e-10);
        let cc = coeffs(0.6, 0.02, 1.0e-6);
        let row = dims.x as usize; // y = 1 row start
        for len in [0usize, 1, LANES - 1, LANES, LANES + 1, 2 * LANES + 3] {
            let base = row + 1;
            let mut got: Vec<(usize, u32, u32)> = Vec::new();
            diffuse_interior_run(&st, base, len, &a, &b, vc, cc, |i, nv, nc| {
                got.push((i, nv.to_bits(), nc.to_bits()));
            });
            assert_eq!(got.len(), len);
            for (k, &(i, nv, nc)) in got.iter().enumerate() {
                assert_eq!(i, base + k, "emit order must be ascending");
                let (vs, cs) = st.sum2(i, &a, &b);
                let ev = diffuse_voxel(a.data[i], vs, st.len(), vc.d, vc.decay, vc.min);
                let ec = diffuse_voxel(b.data[i], cs, st.len(), cc.d, cc.decay, cc.min);
                assert_eq!(nv, ev.to_bits(), "virions at {i} (len {len})");
                assert_eq!(nc, ec.to_bits(), "chem at {i} (len {len})");
            }
        }
    }

    #[test]
    fn denormal_adjacent_values_survive_the_wide_path() {
        // Sums landing in the subnormal range must round identically.
        let dims = GridDims::new2d(LANES as u32 + 4, 3);
        let st = StencilDeltas::for_grid(dims);
        let n = dims.nvoxels();
        let mut a = Field::zeros(n);
        let mut b = Field::zeros(n);
        for v in 0..n {
            a.set(v, f32::from_bits(1 + (v as u32 % 7))); // smallest subnormals
            b.set(v, 1.0e-38 * (v as f32 + 1.0));
        }
        let vc = coeffs(0.9, 0.0, 0.0);
        let cc = coeffs(0.9, 0.0, 0.0);
        let base = dims.x as usize + 1;
        diffuse_interior_run(&st, base, LANES, &a, &b, vc, cc, |i, nv, nc| {
            let (vs, cs) = st.sum2(i, &a, &b);
            let ev = diffuse_voxel(a.data[i], vs, st.len(), vc.d, vc.decay, vc.min);
            let ec = diffuse_voxel(b.data[i], cs, st.len(), cc.d, cc.decay, cc.min);
            assert_eq!(nv.to_bits(), ev.to_bits());
            assert_eq!(nc.to_bits(), ec.to_bits());
        });
    }

    #[test]
    fn kernel_mode_default_and_names() {
        assert_eq!(KernelMode::default(), KernelMode::Wide);
        assert_eq!(KernelMode::Wide.name(), "wide");
        assert_eq!(KernelMode::Scalar.name(), "scalar");
    }
}
