//! Local subdomain storage box with a one-voxel ghost halo.
//!
//! A [`HaloBox`] maps global coordinates within a subdomain's halo reach to
//! a local row-major index. Positions outside the global grid (the halo of
//! a subdomain at the grid edge) still get local cells; they hold inert
//! defaults and are never read because all rules bounds-check against the
//! global grid first.

use crate::decomp::Subdomain;
use crate::grid::{Coord, GridDims};

/// A local box `[lo, hi)` in global coordinates covering a subdomain plus a
/// one-voxel ghost ring (no ghost along z for 2D grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloBox {
    pub lo: Coord,
    pub hi: Coord,
    /// The owned (core) region.
    pub core: Subdomain,
}

impl HaloBox {
    pub fn new(dims: GridDims, sub: Subdomain) -> Self {
        let gz = if dims.is_2d() { 0 } else { 1 };
        HaloBox {
            lo: Coord::new(sub.lo.x - 1, sub.lo.y - 1, sub.lo.z - gz),
            hi: Coord::new(sub.hi.x + 1, sub.hi.y + 1, sub.hi.z + gz),
            core: sub,
        }
    }

    /// Local extents.
    #[inline]
    pub fn size(&self) -> (usize, usize, usize) {
        (
            (self.hi.x - self.lo.x) as usize,
            (self.hi.y - self.lo.y) as usize,
            (self.hi.z - self.lo.z) as usize,
        )
    }

    /// Number of local cells (core + halo).
    #[inline]
    pub fn len(&self) -> usize {
        let (x, y, z) = self.size();
        x * y * z
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does the box cover this global coordinate (core or ghost)?
    #[inline]
    pub fn covers(&self, c: Coord) -> bool {
        c.x >= self.lo.x
            && c.x < self.hi.x
            && c.y >= self.lo.y
            && c.y < self.hi.y
            && c.z >= self.lo.z
            && c.z < self.hi.z
    }

    /// Local row-major index of a covered global coordinate.
    #[inline]
    pub fn local(&self, c: Coord) -> usize {
        debug_assert!(self.covers(c), "{c:?} outside halo box {self:?}");
        let (sx, sy, _) = self.size();
        ((c.z - self.lo.z) as usize * sy + (c.y - self.lo.y) as usize) * sx
            + (c.x - self.lo.x) as usize
    }

    /// Inverse of [`HaloBox::local`].
    #[inline]
    pub fn global(&self, idx: usize) -> Coord {
        let (sx, sy, _) = self.size();
        let z = idx / (sx * sy);
        let rem = idx % (sx * sy);
        Coord::new(
            self.lo.x + (rem % sx) as i64,
            self.lo.y + (rem / sx) as i64,
            self.lo.z + z as i64,
        )
    }

    /// Is the coordinate in the owned core (not ghost)?
    #[inline]
    pub fn is_core(&self, c: Coord) -> bool {
        self.core.contains(c)
    }

    /// Is the coordinate a core voxel on the core's surface (adjacent to a
    /// ghost cell — i.e. the data neighbors need)?
    #[inline]
    pub fn is_boundary(&self, c: Coord) -> bool {
        if !self.is_core(c) {
            return false;
        }
        c.x == self.core.lo.x
            || c.x == self.core.hi.x - 1
            || c.y == self.core.lo.y
            || c.y == self.core.hi.y - 1
            || (self.lo.z < self.core.lo.z && (c.z == self.core.lo.z || c.z == self.core.hi.z - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{Partition, Strategy};

    fn setup() -> (GridDims, HaloBox) {
        let dims = GridDims::new2d(8, 8);
        let p = Partition::new(dims, 4, Strategy::Blocks);
        (dims, HaloBox::new(dims, *p.sub(0)))
    }

    #[test]
    fn box_extents_2d() {
        let (_, hb) = setup();
        // Core [0,4)², halo [-1,5)², no z ghost.
        assert_eq!(hb.lo, Coord::new(-1, -1, 0));
        assert_eq!(hb.hi, Coord::new(5, 5, 1));
        assert_eq!(hb.size(), (6, 6, 1));
        assert_eq!(hb.len(), 36);
    }

    #[test]
    fn local_global_roundtrip() {
        let (_, hb) = setup();
        for idx in 0..hb.len() {
            let c = hb.global(idx);
            assert!(hb.covers(c));
            assert_eq!(hb.local(c), idx);
        }
    }

    #[test]
    fn core_and_boundary_classification() {
        let (_, hb) = setup();
        assert!(hb.is_core(Coord::new(0, 0, 0)));
        assert!(hb.is_core(Coord::new(3, 3, 0)));
        assert!(!hb.is_core(Coord::new(-1, 0, 0)));
        assert!(!hb.is_core(Coord::new(4, 0, 0)));
        // Boundary: on the core surface.
        assert!(hb.is_boundary(Coord::new(0, 2, 0)));
        assert!(hb.is_boundary(Coord::new(3, 2, 0)));
        assert!(hb.is_boundary(Coord::new(2, 3, 0)));
        assert!(!hb.is_boundary(Coord::new(2, 2, 0)));
        assert!(!hb.is_boundary(Coord::new(-1, -1, 0)));
    }

    #[test]
    fn halo_box_3d_has_z_ghost() {
        let dims = GridDims::new3d(8, 8, 8);
        let p = Partition::new(dims, 8, Strategy::Blocks);
        let hb = HaloBox::new(dims, *p.sub(0));
        assert_eq!(hb.lo, Coord::new(-1, -1, -1));
        assert_eq!(hb.size(), (6, 6, 6));
        // z-surface counts as boundary in 3D.
        assert!(hb.is_boundary(Coord::new(2, 2, 0)));
        assert!(hb.is_boundary(Coord::new(2, 2, 3)));
        assert!(!hb.is_boundary(Coord::new(2, 2, 2)));
    }

    #[test]
    fn covers_rejects_outside() {
        let (_, hb) = setup();
        assert!(!hb.covers(Coord::new(5, 0, 0)));
        assert!(!hb.covers(Coord::new(-2, 0, 0)));
        assert!(hb.covers(Coord::new(4, 4, 0))); // ghost corner
    }
}
