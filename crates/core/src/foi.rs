//! Foci-of-infection (FOI) seeding strategies.
//!
//! SIMCoV seeds the initial infection at one or more spatially distinct
//! voxels (§2.2). The paper's experiments use evenly spread foci (16–1024 in
//! Table 1); its discussion (§6) motivates CT-scan-derived initial conditions
//! with "large patchy lesions" — both are provided here.

use crate::grid::{Coord, GridDims};
use crate::params::SimParams;
use crate::rng::{CounterRng, Stream};

/// How the initial foci of infection are placed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FoiPattern {
    /// `num_foi` foci on a near-square lattice covering the grid evenly —
    /// "spatially distinct seeds of the infection" (§4.2). Deterministic.
    #[default]
    UniformLattice,
    /// Foci at uniformly random voxels (duplicates collapse).
    Random,
    /// CT-scan-like patchy lesions: `num_foi` is split across a few large
    /// clusters; every voxel within `radius` (Chebyshev) of a cluster center
    /// is seeded (§6's patient-CT initialization scenario).
    CtLesions { clusters: u32, radius: u32 },
}

/// Compute the seeded voxels (global linear indices, deduplicated and
/// sorted) for a pattern. Each returned voxel receives
/// `params.initial_infection` virions at step 0.
pub fn foi_voxels(p: &SimParams, pattern: FoiPattern) -> Vec<usize> {
    let dims = p.dims;
    let mut out = match pattern {
        FoiPattern::UniformLattice => lattice(dims, p.num_foi),
        FoiPattern::Random => {
            let mut v: Vec<usize> = (0..p.num_foi as u64)
                .map(|i| {
                    CounterRng::new(p.seed, Stream::FoiPlacement, 0, i).below(dims.nvoxels() as u64)
                        as usize
                })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        FoiPattern::CtLesions { clusters, radius } => {
            let centers = lattice(dims, clusters.max(1));
            let mut v = Vec::new();
            for (ci, &center) in centers.iter().enumerate() {
                // Jitter each lesion center randomly so lesions are patchy,
                // not perfectly regular.
                let c = dims.coord(center);
                let mut rng = CounterRng::new(p.seed, Stream::FoiPlacement, 1, ci as u64);
                let jx = rng.below(2 * radius as u64 + 1) as i64 - radius as i64;
                let jy = rng.below(2 * radius as u64 + 1) as i64 - radius as i64;
                let c = Coord::new(
                    (c.x + jx).clamp(0, dims.x as i64 - 1),
                    (c.y + jy).clamp(0, dims.y as i64 - 1),
                    c.z,
                );
                // Chebyshev balls are axis-aligned boxes, so each (z, y) row
                // contributes one contiguous linear-index span: clamp the
                // x-extent once and extend by the whole run instead of
                // bounds-checking voxel by voxel (the same chunked-span shape
                // as the wide diffusion kernels in [`crate::lanes`]).
                let r = radius as i64;
                let x0 = (c.x - r).max(0);
                let x1 = (c.x + r).min(dims.x as i64 - 1);
                if x0 > x1 {
                    continue;
                }
                let run = (x1 - x0 + 1) as usize;
                for dz in -r..=r {
                    let z = c.z + dz;
                    if z < 0 || z >= dims.z as i64 {
                        continue;
                    }
                    for dy in -r..=r {
                        let y = c.y + dy;
                        if y < 0 || y >= dims.y as i64 {
                            continue;
                        }
                        let base = dims.index(Coord::new(x0, y, z));
                        v.extend(base..base + run);
                    }
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        }
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// `n` points on a near-square lattice over the grid (z = 0 plane for 3D
/// grids, matching SIMCoV's 2D-slice seeding).
fn lattice(dims: GridDims, n: u32) -> Vec<usize> {
    if n == 0 {
        return vec![];
    }
    // Choose cols × rows ≥ n with aspect ratio near the grid's.
    let aspect = dims.x as f64 / dims.y as f64;
    let cols = ((n as f64 * aspect).sqrt().ceil() as u32).clamp(1, dims.x.max(1));
    let rows = n.div_ceil(cols).clamp(1, dims.y.max(1));
    let mut out = Vec::with_capacity(n as usize);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if out.len() == n as usize {
                break 'outer;
            }
            // Cell centers of a cols × rows partition.
            let x = ((2 * c as u64 + 1) * dims.x as u64 / (2 * cols as u64)) as i64;
            let y = ((2 * r as u64 + 1) * dims.y as u64 / (2 * rows as u64)) as i64;
            out.push(dims.index(Coord::new(
                x.min(dims.x as i64 - 1),
                y.min(dims.y as i64 - 1),
                0,
            )));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(x: u32, y: u32, foi: u32) -> SimParams {
        SimParams {
            dims: GridDims::new2d(x, y),
            num_foi: foi,
            ..SimParams::default()
        }
    }

    #[test]
    fn lattice_count_and_bounds() {
        let p = params(100, 100, 16);
        let v = foi_voxels(&p, FoiPattern::UniformLattice);
        assert_eq!(v.len(), 16);
        for &idx in &v {
            assert!(idx < p.dims.nvoxels());
        }
    }

    #[test]
    fn lattice_is_spread_out() {
        let p = params(100, 100, 4);
        let v = foi_voxels(&p, FoiPattern::UniformLattice);
        assert_eq!(v.len(), 4);
        // All pairwise Chebyshev distances ≥ 25 for 4 foci on 100².
        for i in 0..v.len() {
            for j in i + 1..v.len() {
                let a = p.dims.coord(v[i]);
                let b = p.dims.coord(v[j]);
                assert!(a.chebyshev(b) >= 25, "foci too close: {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn single_focus_is_near_center() {
        let p = params(101, 101, 1);
        let v = foi_voxels(&p, FoiPattern::UniformLattice);
        assert_eq!(v.len(), 1);
        let c = p.dims.coord(v[0]);
        assert!(c.chebyshev(Coord::new(50, 50, 0)) <= 1);
    }

    #[test]
    fn random_foci_deterministic_per_seed() {
        let p = params(64, 64, 32);
        let a = foi_voxels(&p, FoiPattern::Random);
        let b = foi_voxels(&p, FoiPattern::Random);
        assert_eq!(a, b);
        let mut p2 = p.clone();
        p2.seed = 999;
        let c = foi_voxels(&p2, FoiPattern::Random);
        assert_ne!(a, c);
    }

    #[test]
    fn ct_lesions_are_patchy() {
        let p = params(128, 128, 0);
        let v = foi_voxels(
            &p,
            FoiPattern::CtLesions {
                clusters: 4,
                radius: 3,
            },
        );
        // 4 clusters × up to 7×7 voxels; jitter clamping may trim at edges.
        assert!(v.len() > 4 * 20, "lesions too small: {}", v.len());
        assert!(v.len() <= 4 * 49);
        for &idx in &v {
            assert!(idx < p.dims.nvoxels());
        }
    }

    #[test]
    fn dense_lattice_caps_at_grid() {
        let p = params(4, 4, 16);
        let v = foi_voxels(&p, FoiPattern::UniformLattice);
        assert_eq!(v.len(), 16);
    }

    #[test]
    fn lattice_1024_foi_all_distinct() {
        let p = params(625, 625, 1024);
        let v = foi_voxels(&p, FoiPattern::UniformLattice);
        assert_eq!(v.len(), 1024, "paper's Fig 8 max FOI must place fully");
    }
}
