//! Checkpoint/restore: snapshot a running simulation to a compact binary
//! blob and resume it later — bitwise-exactly, thanks to the counter-based
//! RNG (no hidden generator state to capture).
//!
//! Long SIMCoV campaigns (33,120+ steps) need restartability on shared
//! clusters; the format here is a simple versioned little-endian layout
//! with no external dependencies. Two blob versions share one header:
//! version 1 ([`save`]/[`restore`]) captures a serial sim's resumable
//! state; version 2 ([`encode_run`]/[`restore_run`]) captures a driver-run
//! [`RunCheckpoint`] including the statistics history, and is what the
//! durable crash-restart files persist.
//!
//! Every parse failure is a typed [`CheckpointError`]; hostile input is
//! bounds-checked before any allocation.

use crate::fields::Field;
use crate::grid::GridDims;
use crate::integrity::crc_run;
use crate::params::SimParams;
use crate::serial::SerialSim;
use crate::stats::{StepStats, TimeSeries};
use crate::tcell::{Cohort, TCellSlot, VascularPool};
use crate::world::World;
use pgas::SplitMix64;
use std::collections::VecDeque;

const MAGIC: &[u8; 8] = b"SIMCOVCK";
const VERSION: u32 = 1;
/// Blob version for [`encode_run`]: version 1 state plus the statistics
/// history trailer.
const RUN_VERSION: u32 = 2;

/// Why a checkpoint blob failed to restore. `Display` strings are part of
/// the diagnostic surface (tests pin their phrasing).
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The blob does not start with the SIMCoV checkpoint magic.
    BadMagic,
    /// A version this build cannot parse (or the wrong version for the
    /// entry point: [`restore`] reads v1, [`restore_run`] reads v2).
    UnsupportedVersion(u32),
    /// The blob was written under different simulation parameters.
    FingerprintMismatch,
    /// The blob ends before a declared field.
    Truncated { need: usize, offset: usize },
    /// Grid dims in the blob disagree with the resuming parameters.
    DimsMismatch { got: GridDims, expected: GridDims },
    /// An epithelial state byte outside the enum's range — corrupt payload.
    BadEpiState(u8),
    /// An element count whose byte size overflows.
    ElementCountOverflow(usize),
    /// More cohorts claimed than the remaining payload could hold.
    CohortsExceedPayload { claimed: usize, remaining: usize },
    /// Cohort counts overflow u64 when summed.
    CohortCountsOverflow,
    /// Cohort counts disagree with the pool's cached total.
    CohortSumMismatch { claimed: u64, total: u64 },
    /// The vascular carry is NaN or infinite.
    NonFiniteCarry,
    /// More history records claimed than the remaining payload could hold.
    HistoryExceedsPayload { claimed: usize, remaining: usize },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a SIMCoV checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::FingerprintMismatch => write!(
                f,
                "parameter fingerprint mismatch: resuming with different parameters"
            ),
            CheckpointError::Truncated { need, offset } => {
                write!(
                    f,
                    "truncated checkpoint: need {need} bytes at offset {offset}"
                )
            }
            CheckpointError::DimsMismatch { got, expected } => {
                write!(f, "dims mismatch: {got:?} vs {expected:?}")
            }
            CheckpointError::BadEpiState(b) => write!(f, "corrupt epithelial state byte {b}"),
            CheckpointError::ElementCountOverflow(n) => {
                write!(f, "corrupt checkpoint: element count {n} overflows")
            }
            CheckpointError::CohortsExceedPayload { claimed, remaining } => write!(
                f,
                "corrupt checkpoint: {claimed} cohorts claimed, {remaining} bytes remain"
            ),
            CheckpointError::CohortCountsOverflow => {
                write!(f, "corrupt checkpoint: cohort counts overflow")
            }
            CheckpointError::CohortSumMismatch { claimed, total } => write!(
                f,
                "corrupt checkpoint: cohorts sum to {claimed}, total says {total}"
            ),
            CheckpointError::NonFiniteCarry => {
                write!(f, "corrupt checkpoint: non-finite vascular carry")
            }
            CheckpointError::HistoryExceedsPayload { claimed, remaining } => write!(
                f,
                "corrupt checkpoint: {claimed} history records claimed, {remaining} bytes remain"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn u32s(&mut self, vs: &[u32]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn bytes(&mut self, vs: &[u8]) {
        self.buf.extend_from_slice(vs);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        // checked_add: a hostile length must not wrap `pos + n` past the
        // bounds check into an out-of-range slice.
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(CheckpointError::Truncated {
                need: n,
                offset: self.pos,
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes left unread — an upper bound for any element count a hostile
    /// blob may claim.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(checked_len(n, 4)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, CheckpointError> {
        let raw = self.take(checked_len(n, 4)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn checked_len(n: usize, elem: usize) -> Result<usize, CheckpointError> {
    n.checked_mul(elem)
        .ok_or(CheckpointError::ElementCountOverflow(n))
}

/// Write the shared resumable payload: step, dims, world fields, pool.
fn encode_state(w: &mut Writer, step: u64, world: &World, pool: &VascularPool) {
    w.u64(step);
    let dims = world.dims;
    w.u32(dims.x);
    w.u32(dims.y);
    w.u32(dims.z);
    w.bytes(&world.epi.state);
    w.u32s(&world.epi.timer);
    w.u32s(&world.tcells.iter().map(|t| t.0).collect::<Vec<u32>>());
    w.f32s(&world.virions.data);
    w.f32s(&world.chemokine.data);
    let (cohorts, carry, total) = pool.snapshot();
    w.f64(carry);
    w.u64(total);
    w.u64(cohorts.len() as u64);
    for c in cohorts {
        w.u64(c.expiry_step);
        w.u64(c.count);
    }
}

/// Parse the shared resumable payload back, validating every claim.
fn decode_state(
    r: &mut Reader,
    params: &SimParams,
) -> Result<(u64, World, VascularPool), CheckpointError> {
    let step = r.u64()?;
    let dims = GridDims::new3d(r.u32()?, r.u32()?, r.u32()?);
    if dims != params.dims {
        return Err(CheckpointError::DimsMismatch {
            got: dims,
            expected: params.dims,
        });
    }
    let n = dims.nvoxels();
    let epi_state = r.take(n)?.to_vec();
    for &b in &epi_state {
        if b > 5 {
            return Err(CheckpointError::BadEpiState(b));
        }
    }
    let epi_timer = r.u32s(n)?;
    let tcells: Vec<TCellSlot> = r.u32s(n)?.into_iter().map(TCellSlot).collect();
    let virions = r.f32s(n)?;
    let chemokine = r.f32s(n)?;
    let carry = r.f64()?;
    let total = r.u64()?;
    let n_cohorts = r.u64()? as usize;
    // Each cohort occupies 16 bytes; a claimed count beyond the remaining
    // payload is corrupt, and pre-allocating it would let a 20-byte blob
    // demand gigabytes.
    if n_cohorts > r.remaining() / 16 {
        return Err(CheckpointError::CohortsExceedPayload {
            claimed: n_cohorts,
            remaining: r.remaining(),
        });
    }
    let mut cohorts = Vec::with_capacity(n_cohorts);
    for _ in 0..n_cohorts {
        cohorts.push(Cohort {
            expiry_step: r.u64()?,
            count: r.u64()?,
        });
    }
    // The pool's own invariants hold for every blob `save` writes; a blob
    // that violates them is corrupt and must be rejected here rather than
    // trip assertions (or overflow) inside `from_snapshot`.
    let claimed = cohorts
        .iter()
        .try_fold(0u64, |acc, c| acc.checked_add(c.count))
        .ok_or(CheckpointError::CohortCountsOverflow)?;
    if claimed != total {
        return Err(CheckpointError::CohortSumMismatch { claimed, total });
    }
    if !carry.is_finite() {
        return Err(CheckpointError::NonFiniteCarry);
    }
    let world = World {
        dims,
        epi: crate::epithelial::EpiCells {
            state: epi_state,
            timer: epi_timer,
        },
        tcells,
        virions: Field { data: virions },
        chemokine: Field { data: chemokine },
    };
    Ok((
        step,
        world,
        VascularPool::from_snapshot(cohorts, carry, total),
    ))
}

/// Check the shared header, returning the blob's version for the caller to
/// match against its expected entry point.
fn decode_header(r: &mut Reader, params: &SimParams) -> Result<u32, CheckpointError> {
    if r.take(8)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION && version != RUN_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let fp = r.u64()?;
    if fp != params_fingerprint(params) {
        return Err(CheckpointError::FingerprintMismatch);
    }
    Ok(version)
}

/// Serialize a serial simulation's full resumable state (world, pool,
/// step counter). Parameters are *not* embedded — resuming requires the
/// same `SimParams`, which is checked via a fingerprint.
pub fn save(sim: &SerialSim) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u32(VERSION);
    w.u64(params_fingerprint(&sim.params));
    encode_state(&mut w, sim.step, &sim.world, &sim.pool);
    w.buf
}

/// Restore a simulation from [`save`] output. The statistics history is
/// not part of the checkpoint; the resumed run logs from the current step.
pub fn restore(params: SimParams, blob: &[u8]) -> Result<SerialSim, CheckpointError> {
    let mut r = Reader { buf: blob, pos: 0 };
    let version = decode_header(&mut r, &params)?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let (step, world, pool) = decode_state(&mut r, &params)?;
    let mut sim = SerialSim::from_world(params, world);
    sim.pool = pool;
    sim.step = step;
    Ok(sim)
}

/// Bytes one encoded [`StepStats`] record occupies in a version-2 blob.
const STEP_STATS_BYTES: usize = 11 * 8;

/// Serialize a [`RunCheckpoint`] (version 2): the version-1 resumable
/// state plus the statistics history, so a crash restart reproduces the
/// full time series, not just the final state.
pub fn encode_run(params: &SimParams, cp: &RunCheckpoint) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u32(RUN_VERSION);
    w.u64(params_fingerprint(params));
    encode_state(&mut w, cp.step, &cp.world, &cp.pool);
    w.u64(cp.history.steps.len() as u64);
    for s in &cp.history.steps {
        w.u64(s.step);
        w.f64(s.virions);
        w.f64(s.chemokine);
        w.u64(s.tcells_vasculature);
        w.u64(s.tcells_tissue);
        w.u64(s.epi_healthy);
        w.u64(s.epi_incubating);
        w.u64(s.epi_expressing);
        w.u64(s.epi_apoptotic);
        w.u64(s.epi_dead);
        w.u64(s.extravasated);
    }
    w.buf
}

/// Restore a [`RunCheckpoint`] from [`encode_run`] output.
pub fn restore_run(params: &SimParams, blob: &[u8]) -> Result<RunCheckpoint, CheckpointError> {
    let mut r = Reader { buf: blob, pos: 0 };
    let version = decode_header(&mut r, params)?;
    if version != RUN_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let (step, world, pool) = decode_state(&mut r, params)?;
    let n_records = r.u64()? as usize;
    if n_records > r.remaining() / STEP_STATS_BYTES {
        return Err(CheckpointError::HistoryExceedsPayload {
            claimed: n_records,
            remaining: r.remaining(),
        });
    }
    let mut history = TimeSeries::default();
    for _ in 0..n_records {
        history.push(StepStats {
            step: r.u64()?,
            virions: r.f64()?,
            chemokine: r.f64()?,
            tcells_vasculature: r.u64()?,
            tcells_tissue: r.u64()?,
            epi_healthy: r.u64()?,
            epi_incubating: r.u64()?,
            epi_expressing: r.u64()?,
            epi_apoptotic: r.u64()?,
            epi_dead: r.u64()?,
            extravasated: r.u64()?,
        });
    }
    Ok(RunCheckpoint {
        step,
        world,
        pool,
        history,
    })
}

// ---------------------------------------------------------------------------
// In-memory incremental checkpoints (recovery support)
// ---------------------------------------------------------------------------
//
// The binary blob format above serves cold restarts between processes. The
// fault-recovery loop in the driver crate needs something different: a
// *cheap, frequent, in-process* snapshot it can roll a run back to after a
// rank failure. Checkpoints here stay as live structures (no encoding), and
// successive saves pay only for the voxels that changed — SIMCoV's activity
// is spatially sparse, so a delta is typically a small fraction of the grid.
// The `*_bytes` accounting mirrors what an encoded incremental checkpoint
// would cost, which the fault-sweep bench plots as checkpoint overhead.
//
// Against *silent* corruption a single rollback target is not enough: if the
// newest checkpoint itself absorbed a flipped bit, rolling back to it just
// replays the corruption. The store therefore keeps a short chain of sealed
// generations; `latest_verified` re-derives each generation's CRC seal and
// quarantines any that no longer match, falling back to the newest clean one.

/// One voxel's complete state, the unit of incremental checkpoint deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelState {
    pub epi_state: u8,
    pub epi_timer: u32,
    pub tcell: TCellSlot,
    pub virions: f32,
    pub chemokine: f32,
}

impl VoxelState {
    /// Encoded footprint of one delta entry: u32 index + payload.
    pub const ENCODED_BYTES: usize = 4 + 1 + 4 + 4 + 4 + 4;

    fn capture(w: &World, i: usize) -> VoxelState {
        VoxelState {
            epi_state: w.epi.state[i],
            epi_timer: w.epi.timer[i],
            tcell: w.tcells[i],
            virions: w.virions.get(i),
            chemokine: w.chemokine.get(i),
        }
    }

    fn differs(&self, w: &World, i: usize) -> bool {
        self.epi_state != w.epi.state[i]
            || self.epi_timer != w.epi.timer[i]
            || self.tcell != w.tcells[i]
            || self.virions.to_bits() != w.virions.get(i).to_bits()
            || self.chemokine.to_bits() != w.chemokine.get(i).to_bits()
    }

    fn apply(self, w: &mut World, i: usize) {
        w.epi.state[i] = self.epi_state;
        w.epi.timer[i] = self.epi_timer;
        w.tcells[i] = self.tcell;
        w.virions.set(i, self.virions);
        w.chemokine.set(i, self.chemokine);
    }
}

/// A sparse world-to-world diff: every voxel whose state changed, with its
/// new value. Comparison is bitwise (float payloads compared as bits), so
/// `apply` reproduces the target world exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldDelta {
    pub changed: Vec<(u32, VoxelState)>,
}

impl WorldDelta {
    /// Diff two same-shaped worlds.
    pub fn diff(prev: &World, next: &World) -> WorldDelta {
        assert_eq!(prev.dims, next.dims, "delta across different grids");
        let mut changed = Vec::new();
        for i in 0..next.nvoxels() {
            let v = VoxelState::capture(next, i);
            if v.differs(prev, i) {
                changed.push((i as u32, v));
            }
        }
        WorldDelta { changed }
    }

    /// Apply in place: `apply(diff(a, b), a) == b`, bitwise.
    pub fn apply(&self, w: &mut World) {
        for &(i, v) in &self.changed {
            v.apply(w, i as usize);
        }
    }

    pub fn len(&self) -> usize {
        self.changed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// What this delta would cost encoded (index + payload per entry).
    pub fn encoded_bytes(&self) -> usize {
        self.changed.len() * VoxelState::ENCODED_BYTES
    }
}

/// A resumable snapshot of a driver-level run: the canonical world, the
/// replicated vascular pool, the statistics history, at step `step`.
/// Live structures, not encoded — rollback is a clone, not a parse.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    pub step: u64,
    pub world: World,
    pub pool: VascularPool,
    pub history: TimeSeries,
}

/// Accounting for one [`CheckpointStore::save`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    pub step: u64,
    /// Cost of a dense (full-world) checkpoint at this step.
    pub full_bytes: u64,
    /// Cost actually paid: dense for the first save, delta afterwards.
    pub delta_bytes: u64,
    /// Voxels that changed since the previous checkpoint.
    pub changed_voxels: u64,
}

/// What a dense encoding of this world would occupy (the blob format's
/// per-voxel payload; headers excluded).
pub fn dense_world_bytes(w: &World) -> u64 {
    (w.nvoxels() * (1 + 4 + 4 + 4 + 4)) as u64
}

/// How many sealed generations the store retains by default. One guards
/// against fail-stop loss; the extra depth guards against a *corrupt*
/// newest generation (quarantine falls back to an older clean one).
pub const DEFAULT_GENERATIONS: usize = 3;

/// A retained checkpoint generation with its CRC seal, taken from the live
/// state at save time. A generation whose re-derived CRC disagrees with
/// its seal was corrupted at rest and must not be restored.
#[derive(Debug, Clone, PartialEq)]
struct Generation {
    cp: RunCheckpoint,
    seal: u64,
}

/// An in-memory incremental checkpoint store holding a short chain of
/// sealed [`RunCheckpoint`] generations (newest last). The first save is a
/// full clone; every later save diffs against the newest generation and
/// pays only for changed voxels. Cumulative byte counters feed the
/// fault-sweep bench's checkpoint-overhead curves.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStore {
    generations: VecDeque<Generation>,
    capacity: usize,
    /// Number of saves performed.
    pub saves: u64,
    /// Cumulative dense cost (what non-incremental checkpointing would pay).
    pub full_bytes: u64,
    /// Cumulative incremental cost actually paid.
    pub delta_bytes: u64,
    /// Generations discarded because their seal no longer verified.
    pub quarantined: u64,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        Self::with_generations(DEFAULT_GENERATIONS)
    }
}

impl CheckpointStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// A store retaining up to `k` generations (at least one).
    pub fn with_generations(k: usize) -> Self {
        CheckpointStore {
            generations: VecDeque::new(),
            capacity: k.max(1),
            saves: 0,
            full_bytes: 0,
            delta_bytes: 0,
            quarantined: 0,
        }
    }

    /// Retained generation count.
    pub fn generations(&self) -> usize {
        self.generations.len()
    }

    /// Record a checkpoint of the run at `step`.
    pub fn save(
        &mut self,
        step: u64,
        world: &World,
        pool: &VascularPool,
        history: &TimeSeries,
    ) -> CheckpointStats {
        let full = dense_world_bytes(world);
        let seal = crc_run(step, world, pool);
        let stats = match self.generations.back() {
            None => {
                self.generations.push_back(Generation {
                    cp: RunCheckpoint {
                        step,
                        world: world.clone(),
                        pool: pool.clone(),
                        history: history.clone(),
                    },
                    seal,
                });
                CheckpointStats {
                    step,
                    full_bytes: full,
                    delta_bytes: full,
                    changed_voxels: world.nvoxels() as u64,
                }
            }
            Some(prev) => {
                let delta = WorldDelta::diff(&prev.cp.world, world);
                // Materialize the new generation by patching a clone of the
                // previous one — the same work an encoded incremental store
                // would do, and it keeps the patch path honest.
                let mut next_world = prev.cp.world.clone();
                delta.apply(&mut next_world);
                debug_assert_eq!(&next_world, world, "incremental patch must reproduce");
                self.generations.push_back(Generation {
                    cp: RunCheckpoint {
                        step,
                        world: next_world,
                        pool: pool.clone(),
                        history: history.clone(),
                    },
                    seal,
                });
                CheckpointStats {
                    step,
                    full_bytes: full,
                    // When nearly every voxel changed, the per-entry index
                    // overhead makes the delta dearer than a dense dump; a
                    // real store would write dense, so account that way.
                    delta_bytes: (delta.encoded_bytes() as u64).min(full),
                    changed_voxels: delta.len() as u64,
                }
            }
        };
        while self.generations.len() > self.capacity {
            self.generations.pop_front();
        }
        self.saves += 1;
        self.full_bytes += stats.full_bytes;
        self.delta_bytes += stats.delta_bytes;
        stats
    }

    /// The most recent checkpoint, if any save has happened. Does *not*
    /// verify seals — fail-stop recovery can trust it; silent-corruption
    /// recovery must go through [`latest_verified`](Self::latest_verified).
    pub fn latest(&self) -> Option<&RunCheckpoint> {
        self.generations.back().map(|g| &g.cp)
    }

    /// The newest generation whose CRC seal still verifies. Generations
    /// that fail verification are quarantined (dropped and counted); if
    /// every generation is corrupt the store ends up empty and the caller
    /// must treat the run as unrecoverable from memory.
    pub fn latest_verified(&mut self) -> Option<&RunCheckpoint> {
        while let Some(g) = self.generations.back() {
            if crc_run(g.cp.step, &g.cp.world, &g.cp.pool) == g.seal {
                break;
            }
            self.generations.pop_back();
            self.quarantined += 1;
        }
        self.generations.back().map(|g| &g.cp)
    }

    /// Test/injection hook: flip one seeded bit in the *newest* generation's
    /// world, modeling corruption of a checkpoint at rest. Returns false if
    /// the store is empty.
    pub fn inject_corruption(&mut self, seed: u64) -> bool {
        let Some(g) = self.generations.back_mut() else {
            return false;
        };
        let mut rng = SplitMix64::new(seed);
        let n = g.cp.world.nvoxels() as u64;
        let i = (rng.next_u64() % n) as usize;
        let w = &mut g.cp.world;
        match rng.next_u64() % 3 {
            0 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                let v = w.virions.get(i);
                w.virions.set(i, f32::from_bits(v.to_bits() ^ bit));
            }
            1 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                let c = w.chemokine.get(i);
                w.chemokine.set(i, f32::from_bits(c.to_bits() ^ bit));
            }
            _ => {
                w.epi.timer[i] ^= 1 << (rng.next_u64() % 32);
            }
        }
        true
    }
}

/// A cheap structural fingerprint of the parameters (hash of the debug
/// formatting — parameters are plain data, so this is stable within a
/// build and catches accidental mismatches).
pub(crate) fn params_fingerprint(p: &SimParams) -> u64 {
    let s = format!("{p:?}");
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;

    fn sim() -> SerialSim {
        let p = SimParams::test_config(GridDims::new2d(24, 24), 160, 3, 13);
        SerialSim::new(p)
    }

    #[test]
    fn resume_equals_uninterrupted_run() {
        let mut full = sim();
        full.run();

        let mut first_half = sim();
        for _ in 0..80 {
            first_half.advance_step();
        }
        let blob = save(&first_half);
        let mut resumed = restore(first_half.params.clone(), &blob).unwrap();
        assert_eq!(resumed.step, 80);
        for _ in 80..160 {
            resumed.advance_step();
        }
        assert!(
            full.world.first_difference(&resumed.world).is_none(),
            "resumed run diverged from uninterrupted run"
        );
        assert_eq!(full.pool, resumed.pool);
    }

    #[test]
    fn rejects_wrong_parameters() {
        let mut a = sim();
        a.advance_step();
        let blob = save(&a);
        let mut other = a.params.clone();
        other.infectivity *= 2.0;
        let e = restore(other, &blob).unwrap_err();
        assert_eq!(e, CheckpointError::FingerprintMismatch);
        assert!(e.to_string().contains("fingerprint"), "{e}");
    }

    #[test]
    fn rejects_corrupt_blobs() {
        let mut a = sim();
        a.advance_step();
        let mut blob = save(&a);
        // Truncation.
        let short = &blob[..blob.len() / 2];
        assert!(matches!(
            restore(a.params.clone(), short),
            Err(CheckpointError::Truncated { .. })
        ));
        // Bad magic.
        blob[0] ^= 0xff;
        assert_eq!(
            restore(a.params.clone(), &blob).unwrap_err(),
            CheckpointError::BadMagic
        );
    }

    #[test]
    fn rejects_corrupt_state_bytes() {
        let mut a = sim();
        a.advance_step();
        let mut blob = save(&a);
        // Corrupt an epithelial state byte (header is 8+4+8+8+12 = 40).
        blob[45] = 99;
        let e = restore(a.params.clone(), &blob).unwrap_err();
        assert_eq!(e, CheckpointError::BadEpiState(99));
        assert!(e.to_string().contains("epithelial"), "{e}");
    }

    #[test]
    fn version_mismatch_between_entry_points() {
        let mut a = sim();
        a.advance_step();
        let v1 = save(&a);
        assert_eq!(
            restore_run(&a.params, &v1).unwrap_err(),
            CheckpointError::UnsupportedVersion(1)
        );
        let cp = RunCheckpoint {
            step: a.step,
            world: a.world.clone(),
            pool: a.pool.clone(),
            history: a.history.clone(),
        };
        let v2 = encode_run(&a.params, &cp);
        assert_eq!(
            restore(a.params.clone(), &v2).unwrap_err(),
            CheckpointError::UnsupportedVersion(2)
        );
        // An unknown future version is rejected at the header.
        let mut v9 = v1.clone();
        v9[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            restore(a.params.clone(), &v9).unwrap_err(),
            CheckpointError::UnsupportedVersion(9)
        );
    }

    #[test]
    fn run_blob_roundtrips_with_history() {
        let mut a = sim();
        for _ in 0..30 {
            a.advance_step();
        }
        assert!(!a.history.is_empty(), "serial sim logs history");
        let cp = RunCheckpoint {
            step: a.step,
            world: a.world.clone(),
            pool: a.pool.clone(),
            history: a.history.clone(),
        };
        let blob = encode_run(&a.params, &cp);
        let back = restore_run(&a.params, &blob).unwrap();
        assert_eq!(back, cp, "run checkpoint roundtrips bitwise");

        // A hostile history count must be rejected without allocation.
        let mut hostile = blob.clone();
        let hist_at = blob.len() - 8 - cp.history.steps.len() * STEP_STATS_BYTES;
        hostile[hist_at..hist_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            restore_run(&a.params, &hostile).unwrap_err(),
            CheckpointError::HistoryExceedsPayload { .. }
        ));
    }

    /// Fuzz `restore` against hostile input: truncations at every length,
    /// random byte flips in valid blobs, and fully random blobs. Restoring
    /// must return `Err` (or a valid sim) — never panic, never misallocate.
    /// Catches the `pos + n` bounds-check overflow and the unchecked
    /// cohort-count pre-allocation.
    #[test]
    fn fuzz_restore_never_panics() {
        use crate::rng::{CounterRng, Stream};

        let mut a = sim();
        for _ in 0..20 {
            a.advance_step();
        }
        let blob = save(&a);

        // Every truncation of a valid blob must be rejected cleanly.
        for len in 0..blob.len() {
            assert!(
                restore(a.params.clone(), &blob[..len]).is_err(),
                "truncation to {len} bytes accepted"
            );
        }

        // Byte flips anywhere in a valid blob: Err or a structurally valid
        // sim (a flipped float payload can still restore), never a panic.
        for case in 0..400u64 {
            let mut rng = CounterRng::new(0xC0FFEE, Stream::ExtravVoxel, case, 0);
            let mut mutated = blob.clone();
            for _ in 0..1 + rng.below(8) {
                let at = rng.below(mutated.len() as u64) as usize;
                mutated[at] ^= rng.next_u64() as u8;
            }
            let _ = restore(a.params.clone(), &mutated);
        }

        // Fully random blobs of random lengths, plus adversarial giant
        // little-endian length words sprayed through them.
        for case in 0..400u64 {
            let mut rng = CounterRng::new(0xFEED, Stream::ExtravProb, case, 0);
            let len = rng.below(512) as usize;
            let mut junk: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            if junk.len() >= 8 && rng.chance(0.5) {
                // Start with valid magic so parsing reaches the length
                // fields, then plant u64::MAX somewhere after the header.
                junk[..8].copy_from_slice(MAGIC);
                if junk.len() > 28 {
                    let at = 12 + rng.below((junk.len() - 20) as u64) as usize;
                    junk[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                }
            }
            assert!(
                restore(a.params.clone(), &junk).is_err(),
                "random blob (case {case}) accepted"
            );
        }
    }

    #[test]
    fn world_delta_roundtrips_bitwise() {
        let mut a = sim();
        for _ in 0..10 {
            a.advance_step();
        }
        let before = a.world.clone();
        for _ in 0..5 {
            a.advance_step();
        }
        let delta = WorldDelta::diff(&before, &a.world);
        assert!(!delta.is_empty(), "an active run must change voxels");
        assert!(
            delta.len() < a.world.nvoxels(),
            "activity is sparse: {} of {} voxels",
            delta.len(),
            a.world.nvoxels()
        );
        let mut patched = before;
        delta.apply(&mut patched);
        assert_eq!(patched, a.world);
        assert_eq!(
            delta.encoded_bytes(),
            delta.len() * VoxelState::ENCODED_BYTES
        );
        // Self-diff is empty.
        assert!(WorldDelta::diff(&a.world, &a.world).is_empty());
    }

    #[test]
    fn checkpoint_store_is_incremental() {
        let mut a = sim();
        let mut store = CheckpointStore::new();
        let first = store.save(0, &a.world, &a.pool, &a.history);
        assert_eq!(first.delta_bytes, first.full_bytes, "first save is dense");
        let mut last_world = a.world.clone();
        for k in 1..=3u64 {
            // Early steps: activity is still localized around the foci, so
            // the incremental save must beat a dense one.
            for _ in 0..2 {
                a.advance_step();
            }
            let s = store.save(a.step, &a.world, &a.pool, &a.history);
            assert_eq!(s.step, a.step);
            assert!(
                s.delta_bytes < s.full_bytes,
                "incremental save must be cheaper than dense ({} voxels changed of {})",
                s.changed_voxels,
                a.world.nvoxels()
            );
            let cp = store.latest().expect("saved");
            assert_eq!(cp.step, a.step);
            assert_eq!(cp.world, a.world, "stored world tracks the run");
            assert_eq!(cp.pool, a.pool);
            assert_eq!(cp.history, a.history);
            assert_ne!(cp.world, last_world, "run actually advanced (k={k})");
            last_world = a.world.clone();
        }
        assert_eq!(store.saves, 4);
        assert!(store.delta_bytes < store.full_bytes);
        // Four saves into a default (3-generation) store: the oldest was
        // evicted, the newest is still `latest`.
        assert_eq!(store.generations(), DEFAULT_GENERATIONS);
    }

    #[test]
    fn quarantine_falls_back_to_the_newest_clean_generation() {
        let mut a = sim();
        let mut store = CheckpointStore::new();
        let mut steps = Vec::new();
        for _ in 0..3 {
            for _ in 0..2 {
                a.advance_step();
            }
            store.save(a.step, &a.world, &a.pool, &a.history);
            steps.push(a.step);
        }
        assert_eq!(store.generations(), 3);
        // Clean store: latest_verified is simply latest.
        assert_eq!(store.latest_verified().unwrap().step, steps[2]);
        assert_eq!(store.quarantined, 0);

        // Corrupt the newest generation: verification must skip it.
        assert!(store.inject_corruption(0xBAD_5EED));
        assert_eq!(store.latest().unwrap().step, steps[2], "latest is blind");
        let verified = store.latest_verified().unwrap();
        assert_eq!(verified.step, steps[1], "fell back one generation");
        assert_eq!(store.quarantined, 1);
        assert_eq!(store.generations(), 2);

        // Corrupt every remaining generation: the store runs dry.
        assert!(store.inject_corruption(0xBAD_5EED + 1));
        store.latest_verified();
        assert!(store.inject_corruption(0xBAD_5EED + 2));
        assert!(store.latest_verified().is_none());
        assert_eq!(store.quarantined, 3);
        assert_eq!(store.generations(), 0);

        // The store still works after running dry.
        a.advance_step();
        store.save(a.step, &a.world, &a.pool, &a.history);
        assert_eq!(store.latest_verified().unwrap().step, a.step);
    }

    #[test]
    fn checkpoint_size_is_compact() {
        let a = sim();
        let blob = save(&a);
        // 24×24 voxels × 17 B/voxel + header ≈ 10 KB.
        assert!(blob.len() < 16 * 1024, "blob {} bytes", blob.len());
    }
}
