//! Checkpoint/restore: snapshot a running simulation to a compact binary
//! blob and resume it later — bitwise-exactly, thanks to the counter-based
//! RNG (no hidden generator state to capture).
//!
//! Long SIMCoV campaigns (33,120+ steps) need restartability on shared
//! clusters; the format here is a simple versioned little-endian layout
//! with no external dependencies.

use crate::fields::Field;
use crate::grid::GridDims;
use crate::params::SimParams;
use crate::serial::SerialSim;
use crate::tcell::{Cohort, TCellSlot, VascularPool};
use crate::world::World;

const MAGIC: &[u8; 8] = b"SIMCOVCK";
const VERSION: u32 = 1;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn u32s(&mut self, vs: &[u32]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn bytes(&mut self, vs: &[u8]) {
        self.buf.extend_from_slice(vs);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        // checked_add: a hostile length must not wrap `pos + n` past the
        // bounds check into an out-of-range slice.
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "truncated checkpoint: need {n} bytes at offset {}",
                    self.pos
                )
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes left unread — an upper bound for any element count a hostile
    /// blob may claim.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let raw = self.take(checked_len(n, 4)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, String> {
        let raw = self.take(checked_len(n, 4)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn checked_len(n: usize, elem: usize) -> Result<usize, String> {
    n.checked_mul(elem)
        .ok_or_else(|| format!("corrupt checkpoint: element count {n} overflows"))
}

/// Serialize a serial simulation's full resumable state (world, pool,
/// step counter). Parameters are *not* embedded — resuming requires the
/// same `SimParams`, which is checked via a fingerprint.
pub fn save(sim: &SerialSim) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u32(VERSION);
    w.u64(params_fingerprint(&sim.params));
    w.u64(sim.step);
    let dims = sim.world.dims;
    w.u32(dims.x);
    w.u32(dims.y);
    w.u32(dims.z);
    w.bytes(&sim.world.epi.state);
    w.u32s(&sim.world.epi.timer);
    w.u32s(&sim.world.tcells.iter().map(|t| t.0).collect::<Vec<u32>>());
    w.f32s(&sim.world.virions.data);
    w.f32s(&sim.world.chemokine.data);
    let (cohorts, carry, total) = sim.pool.snapshot();
    w.f64(carry);
    w.u64(total);
    w.u64(cohorts.len() as u64);
    for c in cohorts {
        w.u64(c.expiry_step);
        w.u64(c.count);
    }
    w.buf
}

/// Restore a simulation from [`save`] output. The statistics history is
/// not part of the checkpoint; the resumed run logs from the current step.
pub fn restore(params: SimParams, blob: &[u8]) -> Result<SerialSim, String> {
    let mut r = Reader { buf: blob, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err("not a SIMCoV checkpoint (bad magic)".into());
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(format!("unsupported checkpoint version {version}"));
    }
    let fp = r.u64()?;
    if fp != params_fingerprint(&params) {
        return Err("parameter fingerprint mismatch: resuming with different parameters".into());
    }
    let step = r.u64()?;
    let dims = GridDims::new3d(r.u32()?, r.u32()?, r.u32()?);
    if dims != params.dims {
        return Err(format!("dims mismatch: {dims:?} vs {:?}", params.dims));
    }
    let n = dims.nvoxels();
    let epi_state = r.take(n)?.to_vec();
    for &b in &epi_state {
        if b > 5 {
            return Err(format!("corrupt epithelial state byte {b}"));
        }
    }
    let epi_timer = r.u32s(n)?;
    let tcells: Vec<TCellSlot> = r.u32s(n)?.into_iter().map(TCellSlot).collect();
    let virions = r.f32s(n)?;
    let chemokine = r.f32s(n)?;
    let carry = r.f64()?;
    let total = r.u64()?;
    let n_cohorts = r.u64()? as usize;
    // Each cohort occupies 16 bytes; a claimed count beyond the remaining
    // payload is corrupt, and pre-allocating it would let a 20-byte blob
    // demand gigabytes.
    if n_cohorts > r.remaining() / 16 {
        return Err(format!(
            "corrupt checkpoint: {n_cohorts} cohorts claimed, {} bytes remain",
            r.remaining()
        ));
    }
    let mut cohorts = Vec::with_capacity(n_cohorts);
    for _ in 0..n_cohorts {
        cohorts.push(Cohort {
            expiry_step: r.u64()?,
            count: r.u64()?,
        });
    }
    // The pool's own invariants hold for every blob `save` writes; a blob
    // that violates them is corrupt and must be rejected here rather than
    // trip assertions (or overflow) inside `from_snapshot`.
    let claimed = cohorts
        .iter()
        .try_fold(0u64, |acc, c| acc.checked_add(c.count))
        .ok_or("corrupt checkpoint: cohort counts overflow")?;
    if claimed != total {
        return Err(format!(
            "corrupt checkpoint: cohorts sum to {claimed}, total says {total}"
        ));
    }
    if !carry.is_finite() {
        return Err("corrupt checkpoint: non-finite vascular carry".into());
    }
    let world = World {
        dims,
        epi: crate::epithelial::EpiCells {
            state: epi_state,
            timer: epi_timer,
        },
        tcells,
        virions: Field { data: virions },
        chemokine: Field { data: chemokine },
    };
    let mut sim = SerialSim::from_world(params, world);
    sim.pool = VascularPool::from_snapshot(cohorts, carry, total);
    sim.step = step;
    Ok(sim)
}

// ---------------------------------------------------------------------------
// In-memory incremental checkpoints (recovery support)
// ---------------------------------------------------------------------------
//
// The binary blob format above serves cold restarts between processes. The
// fault-recovery loop in the driver crate needs something different: a
// *cheap, frequent, in-process* snapshot it can roll a run back to after a
// rank failure. Checkpoints here stay as live structures (no encoding), and
// successive saves pay only for the voxels that changed — SIMCoV's activity
// is spatially sparse, so a delta is typically a small fraction of the grid.
// The `*_bytes` accounting mirrors what an encoded incremental checkpoint
// would cost, which the fault-sweep bench plots as checkpoint overhead.

use crate::stats::TimeSeries;

/// One voxel's complete state, the unit of incremental checkpoint deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelState {
    pub epi_state: u8,
    pub epi_timer: u32,
    pub tcell: TCellSlot,
    pub virions: f32,
    pub chemokine: f32,
}

impl VoxelState {
    /// Encoded footprint of one delta entry: u32 index + payload.
    pub const ENCODED_BYTES: usize = 4 + 1 + 4 + 4 + 4 + 4;

    fn capture(w: &World, i: usize) -> VoxelState {
        VoxelState {
            epi_state: w.epi.state[i],
            epi_timer: w.epi.timer[i],
            tcell: w.tcells[i],
            virions: w.virions.get(i),
            chemokine: w.chemokine.get(i),
        }
    }

    fn differs(&self, w: &World, i: usize) -> bool {
        self.epi_state != w.epi.state[i]
            || self.epi_timer != w.epi.timer[i]
            || self.tcell != w.tcells[i]
            || self.virions.to_bits() != w.virions.get(i).to_bits()
            || self.chemokine.to_bits() != w.chemokine.get(i).to_bits()
    }

    fn apply(self, w: &mut World, i: usize) {
        w.epi.state[i] = self.epi_state;
        w.epi.timer[i] = self.epi_timer;
        w.tcells[i] = self.tcell;
        w.virions.set(i, self.virions);
        w.chemokine.set(i, self.chemokine);
    }
}

/// A sparse world-to-world diff: every voxel whose state changed, with its
/// new value. Comparison is bitwise (float payloads compared as bits), so
/// `apply` reproduces the target world exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldDelta {
    pub changed: Vec<(u32, VoxelState)>,
}

impl WorldDelta {
    /// Diff two same-shaped worlds.
    pub fn diff(prev: &World, next: &World) -> WorldDelta {
        assert_eq!(prev.dims, next.dims, "delta across different grids");
        let mut changed = Vec::new();
        for i in 0..next.nvoxels() {
            let v = VoxelState::capture(next, i);
            if v.differs(prev, i) {
                changed.push((i as u32, v));
            }
        }
        WorldDelta { changed }
    }

    /// Apply in place: `apply(diff(a, b), a) == b`, bitwise.
    pub fn apply(&self, w: &mut World) {
        for &(i, v) in &self.changed {
            v.apply(w, i as usize);
        }
    }

    pub fn len(&self) -> usize {
        self.changed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// What this delta would cost encoded (index + payload per entry).
    pub fn encoded_bytes(&self) -> usize {
        self.changed.len() * VoxelState::ENCODED_BYTES
    }
}

/// A resumable snapshot of a driver-level run: the canonical world, the
/// replicated vascular pool, the statistics history, at step `step`.
/// Live structures, not encoded — rollback is a clone, not a parse.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    pub step: u64,
    pub world: World,
    pub pool: VascularPool,
    pub history: TimeSeries,
}

/// Accounting for one [`CheckpointStore::save`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    pub step: u64,
    /// Cost of a dense (full-world) checkpoint at this step.
    pub full_bytes: u64,
    /// Cost actually paid: dense for the first save, delta afterwards.
    pub delta_bytes: u64,
    /// Voxels that changed since the previous checkpoint.
    pub changed_voxels: u64,
}

/// What a dense encoding of this world would occupy (the blob format's
/// per-voxel payload; headers excluded).
pub fn dense_world_bytes(w: &World) -> u64 {
    (w.nvoxels() * (1 + 4 + 4 + 4 + 4)) as u64
}

/// An in-memory incremental checkpoint store holding the latest
/// [`RunCheckpoint`]. The first save is a full clone; every later save
/// diffs against the stored world and patches it in place, paying only for
/// changed voxels. Cumulative byte counters feed the fault-sweep bench's
/// checkpoint-overhead curves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointStore {
    latest: Option<RunCheckpoint>,
    /// Number of saves performed.
    pub saves: u64,
    /// Cumulative dense cost (what non-incremental checkpointing would pay).
    pub full_bytes: u64,
    /// Cumulative incremental cost actually paid.
    pub delta_bytes: u64,
}

impl CheckpointStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a checkpoint of the run at `step`.
    pub fn save(
        &mut self,
        step: u64,
        world: &World,
        pool: &VascularPool,
        history: &TimeSeries,
    ) -> CheckpointStats {
        let full = dense_world_bytes(world);
        let stats = match &mut self.latest {
            None => {
                self.latest = Some(RunCheckpoint {
                    step,
                    world: world.clone(),
                    pool: pool.clone(),
                    history: history.clone(),
                });
                CheckpointStats {
                    step,
                    full_bytes: full,
                    delta_bytes: full,
                    changed_voxels: world.nvoxels() as u64,
                }
            }
            Some(cp) => {
                let delta = WorldDelta::diff(&cp.world, world);
                delta.apply(&mut cp.world);
                debug_assert_eq!(&cp.world, world, "incremental patch must reproduce");
                cp.step = step;
                cp.pool = pool.clone();
                cp.history = history.clone();
                CheckpointStats {
                    step,
                    full_bytes: full,
                    // When nearly every voxel changed, the per-entry index
                    // overhead makes the delta dearer than a dense dump; a
                    // real store would write dense, so account that way.
                    delta_bytes: (delta.encoded_bytes() as u64).min(full),
                    changed_voxels: delta.len() as u64,
                }
            }
        };
        self.saves += 1;
        self.full_bytes += stats.full_bytes;
        self.delta_bytes += stats.delta_bytes;
        stats
    }

    /// The most recent checkpoint, if any save has happened.
    pub fn latest(&self) -> Option<&RunCheckpoint> {
        self.latest.as_ref()
    }
}

/// A cheap structural fingerprint of the parameters (hash of the debug
/// formatting — parameters are plain data, so this is stable within a
/// build and catches accidental mismatches).
fn params_fingerprint(p: &SimParams) -> u64 {
    let s = format!("{p:?}");
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;

    fn sim() -> SerialSim {
        let p = SimParams::test_config(GridDims::new2d(24, 24), 160, 3, 13);
        SerialSim::new(p)
    }

    #[test]
    fn resume_equals_uninterrupted_run() {
        let mut full = sim();
        full.run();

        let mut first_half = sim();
        for _ in 0..80 {
            first_half.advance_step();
        }
        let blob = save(&first_half);
        let mut resumed = restore(first_half.params.clone(), &blob).unwrap();
        assert_eq!(resumed.step, 80);
        for _ in 80..160 {
            resumed.advance_step();
        }
        assert!(
            full.world.first_difference(&resumed.world).is_none(),
            "resumed run diverged from uninterrupted run"
        );
        assert_eq!(full.pool, resumed.pool);
    }

    #[test]
    fn rejects_wrong_parameters() {
        let mut a = sim();
        a.advance_step();
        let blob = save(&a);
        let mut other = a.params.clone();
        other.infectivity *= 2.0;
        let e = restore(other, &blob).unwrap_err();
        assert!(e.contains("fingerprint"), "{e}");
    }

    #[test]
    fn rejects_corrupt_blobs() {
        let mut a = sim();
        a.advance_step();
        let mut blob = save(&a);
        // Truncation.
        let short = &blob[..blob.len() / 2];
        assert!(restore(a.params.clone(), short).is_err());
        // Bad magic.
        blob[0] ^= 0xff;
        assert!(restore(a.params.clone(), &blob).is_err());
    }

    #[test]
    fn rejects_corrupt_state_bytes() {
        let mut a = sim();
        a.advance_step();
        let mut blob = save(&a);
        // Corrupt an epithelial state byte (header is 8+4+8+8+12 = 40).
        blob[45] = 99;
        let e = restore(a.params.clone(), &blob).unwrap_err();
        assert!(e.contains("epithelial"), "{e}");
    }

    /// Fuzz `restore` against hostile input: truncations at every length,
    /// random byte flips in valid blobs, and fully random blobs. Restoring
    /// must return `Err` (or a valid sim) — never panic, never misallocate.
    /// Catches the `pos + n` bounds-check overflow and the unchecked
    /// cohort-count pre-allocation.
    #[test]
    fn fuzz_restore_never_panics() {
        use crate::rng::{CounterRng, Stream};

        let mut a = sim();
        for _ in 0..20 {
            a.advance_step();
        }
        let blob = save(&a);

        // Every truncation of a valid blob must be rejected cleanly.
        for len in 0..blob.len() {
            assert!(
                restore(a.params.clone(), &blob[..len]).is_err(),
                "truncation to {len} bytes accepted"
            );
        }

        // Byte flips anywhere in a valid blob: Err or a structurally valid
        // sim (a flipped float payload can still restore), never a panic.
        for case in 0..400u64 {
            let mut rng = CounterRng::new(0xC0FFEE, Stream::ExtravVoxel, case, 0);
            let mut mutated = blob.clone();
            for _ in 0..1 + rng.below(8) {
                let at = rng.below(mutated.len() as u64) as usize;
                mutated[at] ^= rng.next_u64() as u8;
            }
            let _ = restore(a.params.clone(), &mutated);
        }

        // Fully random blobs of random lengths, plus adversarial giant
        // little-endian length words sprayed through them.
        for case in 0..400u64 {
            let mut rng = CounterRng::new(0xFEED, Stream::ExtravProb, case, 0);
            let len = rng.below(512) as usize;
            let mut junk: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            if junk.len() >= 8 && rng.chance(0.5) {
                // Start with valid magic so parsing reaches the length
                // fields, then plant u64::MAX somewhere after the header.
                junk[..8].copy_from_slice(MAGIC);
                if junk.len() > 28 {
                    let at = 12 + rng.below((junk.len() - 20) as u64) as usize;
                    junk[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                }
            }
            assert!(
                restore(a.params.clone(), &junk).is_err(),
                "random blob (case {case}) accepted"
            );
        }
    }

    #[test]
    fn world_delta_roundtrips_bitwise() {
        let mut a = sim();
        for _ in 0..10 {
            a.advance_step();
        }
        let before = a.world.clone();
        for _ in 0..5 {
            a.advance_step();
        }
        let delta = WorldDelta::diff(&before, &a.world);
        assert!(!delta.is_empty(), "an active run must change voxels");
        assert!(
            delta.len() < a.world.nvoxels(),
            "activity is sparse: {} of {} voxels",
            delta.len(),
            a.world.nvoxels()
        );
        let mut patched = before;
        delta.apply(&mut patched);
        assert_eq!(patched, a.world);
        assert_eq!(
            delta.encoded_bytes(),
            delta.len() * VoxelState::ENCODED_BYTES
        );
        // Self-diff is empty.
        assert!(WorldDelta::diff(&a.world, &a.world).is_empty());
    }

    #[test]
    fn checkpoint_store_is_incremental() {
        let mut a = sim();
        let mut store = CheckpointStore::new();
        let first = store.save(0, &a.world, &a.pool, &a.history);
        assert_eq!(first.delta_bytes, first.full_bytes, "first save is dense");
        let mut last_world = a.world.clone();
        for k in 1..=3u64 {
            // Early steps: activity is still localized around the foci, so
            // the incremental save must beat a dense one.
            for _ in 0..2 {
                a.advance_step();
            }
            let s = store.save(a.step, &a.world, &a.pool, &a.history);
            assert_eq!(s.step, a.step);
            assert!(
                s.delta_bytes < s.full_bytes,
                "incremental save must be cheaper than dense ({} voxels changed of {})",
                s.changed_voxels,
                a.world.nvoxels()
            );
            let cp = store.latest().expect("saved");
            assert_eq!(cp.step, a.step);
            assert_eq!(cp.world, a.world, "stored world tracks the run");
            assert_eq!(cp.pool, a.pool);
            assert_eq!(cp.history, a.history);
            assert_ne!(cp.world, last_world, "run actually advanced (k={k})");
            last_world = a.world.clone();
        }
        assert_eq!(store.saves, 4);
        assert!(store.delta_bytes < store.full_bytes);
    }

    #[test]
    fn checkpoint_size_is_compact() {
        let a = sim();
        let blob = save(&a);
        // 24×24 voxels × 17 B/voxel + header ≈ 10 KB.
        assert!(blob.len() < 16 * 1024, "blob {} bytes", blob.len());
    }
}
