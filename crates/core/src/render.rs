//! Visualization output: render simulation state to PPM images.
//!
//! SIMCoV writes visualization samples for inspection (paper Fig. 1A shows
//! such a render: apoptotic red, expressing blue, T cells green on the
//! spreading infection). This renderer maps a 2D slice of the world to the
//! same palette and writes portable pixmaps that any image tool reads.

use crate::epithelial::EpiState;
use crate::grid::Coord;
use crate::world::World;

/// An RGB8 raster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    pub width: usize,
    pub height: usize,
    /// Row-major RGB triples.
    pub pixels: Vec<[u8; 3]>,
}

impl Image {
    /// Serialize as a binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for px in &self.pixels {
            out.extend_from_slice(px);
        }
        out
    }
}

/// Paper-palette colors.
fn color(world: &World, idx: usize) -> [u8; 3] {
    if world.tcells[idx].occupied() {
        return [40, 200, 40]; // T cells: green
    }
    match world.epi.get(idx) {
        EpiState::Apoptotic => [220, 40, 40],  // red
        EpiState::Expressing => [60, 80, 230], // blue
        EpiState::Incubating => [150, 120, 220],
        EpiState::Dead => [40, 40, 40],
        EpiState::Airway => [0, 0, 0],
        EpiState::Healthy => {
            // Healthy tissue shaded by virion load.
            let v = world.virions.get(idx);
            if v > 0.0 {
                let t = ((v.log10() + 10.0) / 14.0).clamp(0.0, 1.0);
                let w = 235 - (120.0 * t) as u8;
                [235, w, w.saturating_sub(20)]
            } else {
                [235, 235, 225] // pale tissue
            }
        }
    }
}

/// Render the z-slice `z` of the world, downsampled to at most
/// `max_side` pixels on the longer edge (nearest-neighbor).
pub fn render_slice(world: &World, z: i64, max_side: usize) -> Image {
    let dims = world.dims;
    let (gx, gy) = (dims.x as usize, dims.y as usize);
    let scale = gx.max(gy).div_ceil(max_side).max(1);
    let width = gx.div_ceil(scale);
    let height = gy.div_ceil(scale);
    let mut pixels = Vec::with_capacity(width * height);
    for py in 0..height {
        for px in 0..width {
            let c = Coord::new((px * scale) as i64, (py * scale) as i64, z);
            pixels.push(color(world, dims.index(c)));
        }
    }
    Image {
        width,
        height,
        pixels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;
    use crate::tcell::TCellSlot;

    #[test]
    fn renders_expected_size_and_header() {
        let w = World::healthy(GridDims::new2d(64, 32));
        let img = render_slice(&w, 0, 64);
        assert_eq!((img.width, img.height), (64, 32));
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n64 32\n255\n"));
        assert_eq!(ppm.len(), 13 + 64 * 32 * 3);
    }

    #[test]
    fn downsampling_caps_size() {
        let w = World::healthy(GridDims::new2d(200, 100));
        let img = render_slice(&w, 0, 50);
        assert!(img.width <= 50 && img.height <= 50);
        assert_eq!(img.pixels.len(), img.width * img.height);
    }

    #[test]
    fn palette_matches_states() {
        let dims = GridDims::new2d(8, 1);
        let mut w = World::healthy(dims);
        w.epi.set(1, EpiState::Apoptotic, 5);
        w.epi.set(2, EpiState::Expressing, 5);
        w.epi.set(3, EpiState::Dead, 0);
        w.tcells[4] = TCellSlot::established(10, 0);
        w.virions.set(5, 100.0);
        let img = render_slice(&w, 0, 8);
        assert_eq!(img.pixels[0], [235, 235, 225]); // healthy
        assert_eq!(img.pixels[1], [220, 40, 40]); // apoptotic red
        assert_eq!(img.pixels[2], [60, 80, 230]); // expressing blue
        assert_eq!(img.pixels[3], [40, 40, 40]); // dead
        assert_eq!(img.pixels[4], [40, 200, 40]); // T cell green
        assert_ne!(img.pixels[5], img.pixels[0]); // virion shading visible
    }

    #[test]
    fn render_is_deterministic() {
        let w = World::healthy(GridDims::new2d(16, 16));
        assert_eq!(render_slice(&w, 0, 16), render_slice(&w, 0, 16));
    }
}
