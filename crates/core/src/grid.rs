//! Voxel grid geometry: dimensions, coordinates, index math and Moore
//! neighborhoods for 2D (8 neighbors) and 3D (26 neighbors) grids.
//!
//! Every voxel is identified by a *global* linear index (`usize`) in row-major
//! order `(z, y, x)` — x fastest. All stochastic draws are keyed on global
//! indices so partitioned executors agree with the serial reference.

/// A signed voxel coordinate. Signed so neighbor arithmetic can go one step
/// out of bounds before being rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    pub x: i64,
    pub y: i64,
    pub z: i64,
}

impl Coord {
    #[inline]
    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        Coord { x, y, z }
    }

    /// Component-wise addition of a neighbor offset.
    #[inline]
    pub const fn offset(self, dx: i64, dy: i64, dz: i64) -> Self {
        Coord::new(self.x + dx, self.y + dy, self.z + dz)
    }

    /// Chebyshev (L∞) distance — the metric of Moore neighborhoods.
    #[inline]
    pub fn chebyshev(self, other: Coord) -> i64 {
        (self.x - other.x)
            .abs()
            .max((self.y - other.y).abs())
            .max((self.z - other.z).abs())
    }
}

/// Grid dimensions. 2D simulations use `z == 1` (the paper's evaluation is
/// entirely 2D; 3D is supported throughout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

/// The 26 Moore-neighborhood offsets of a 3D grid, ordered deterministically
/// (z-major, then y, then x; the zero offset is excluded). The first 8 entries
/// with `dz == 0` are exactly the 2D Moore neighborhood, in the same order —
/// this prefix property is what [`GridDims::neighbor_offsets`] relies on.
pub const MOORE_3D: [(i64, i64, i64); 26] = moore_offsets();

const fn moore_offsets() -> [(i64, i64, i64); 26] {
    let mut out = [(0i64, 0i64, 0i64); 26];
    let mut i = 0;
    // dz == 0 plane first so the 2D neighborhood is a prefix.
    let mut dy = -1i64;
    while dy <= 1 {
        let mut dx = -1i64;
        while dx <= 1 {
            if !(dx == 0 && dy == 0) {
                out[i] = (dx, dy, 0);
                i += 1;
            }
            dx += 1;
        }
        dy += 1;
    }
    let mut dz = -1i64;
    while dz <= 1 {
        if dz != 0 {
            let mut dy2 = -1i64;
            while dy2 <= 1 {
                let mut dx2 = -1i64;
                while dx2 <= 1 {
                    out[i] = (dx2, dy2, dz);
                    i += 1;
                    dx2 += 1;
                }
                dy2 += 1;
            }
        }
        dz += 1;
    }
    out
}

impl GridDims {
    pub const fn new2d(x: u32, y: u32) -> Self {
        GridDims { x, y, z: 1 }
    }

    pub const fn new3d(x: u32, y: u32, z: u32) -> Self {
        GridDims { x, y, z }
    }

    #[inline]
    pub const fn is_2d(&self) -> bool {
        self.z == 1
    }

    /// Total number of voxels.
    #[inline]
    pub const fn nvoxels(&self) -> usize {
        self.x as usize * self.y as usize * self.z as usize
    }

    /// The deterministic neighbor-offset table for this dimensionality:
    /// 8 offsets for 2D grids, 26 for 3D.
    #[inline]
    pub fn neighbor_offsets(&self) -> &'static [(i64, i64, i64)] {
        if self.is_2d() {
            &MOORE_3D[..8]
        } else {
            &MOORE_3D[..]
        }
    }

    /// Number of Moore neighbors for this dimensionality.
    #[inline]
    pub fn n_neighbors(&self) -> usize {
        if self.is_2d() {
            8
        } else {
            26
        }
    }

    #[inline]
    pub fn in_bounds(&self, c: Coord) -> bool {
        c.x >= 0
            && c.y >= 0
            && c.z >= 0
            && (c.x as u64) < self.x as u64
            && (c.y as u64) < self.y as u64
            && (c.z as u64) < self.z as u64
    }

    /// Linear index of an in-bounds coordinate (row-major, x fastest).
    #[inline]
    pub fn index(&self, c: Coord) -> usize {
        debug_assert!(self.in_bounds(c), "coordinate {c:?} out of bounds {self:?}");
        (c.z as usize * self.y as usize + c.y as usize) * self.x as usize + c.x as usize
    }

    /// Linear index, or `None` if out of bounds.
    #[inline]
    pub fn checked_index(&self, c: Coord) -> Option<usize> {
        if self.in_bounds(c) {
            Some(self.index(c))
        } else {
            None
        }
    }

    /// Inverse of [`GridDims::index`].
    #[inline]
    pub fn coord(&self, idx: usize) -> Coord {
        debug_assert!(idx < self.nvoxels());
        let xy = self.x as usize * self.y as usize;
        let z = idx / xy;
        let rem = idx % xy;
        let y = rem / self.x as usize;
        let x = rem % self.x as usize;
        Coord::new(x as i64, y as i64, z as i64)
    }

    /// Iterate the in-bounds Moore neighbors of `c` as linear indices, in the
    /// deterministic offset-table order.
    pub fn neighbors(&self, c: Coord) -> impl Iterator<Item = usize> + '_ {
        self.neighbor_offsets()
            .iter()
            .filter_map(move |&(dx, dy, dz)| self.checked_index(c.offset(dx, dy, dz)))
    }

    /// Iterate all coordinates in index order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.nvoxels()).map(move |i| self.coord(i))
    }

    /// Number of in-bounds Moore neighbors of `c` (boundary voxels have
    /// fewer). Used for zero-flux diffusion normalization.
    pub fn n_valid_neighbors(&self, c: Coord) -> usize {
        self.neighbor_offsets()
            .iter()
            .filter(|&&(dx, dy, dz)| self.in_bounds(c.offset(dx, dy, dz)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_2d() {
        let d = GridDims::new2d(7, 5);
        for i in 0..d.nvoxels() {
            assert_eq!(d.index(d.coord(i)), i);
        }
    }

    #[test]
    fn index_roundtrip_3d() {
        let d = GridDims::new3d(4, 3, 5);
        assert_eq!(d.nvoxels(), 60);
        for i in 0..d.nvoxels() {
            assert_eq!(d.index(d.coord(i)), i);
        }
    }

    #[test]
    fn moore_2d_is_prefix_of_3d() {
        for off in &MOORE_3D[..8] {
            assert_eq!(off.2, 0, "2D prefix must have dz == 0");
        }
        // All 26 offsets are distinct and non-zero.
        let mut seen = std::collections::HashSet::new();
        for off in MOORE_3D {
            assert_ne!(off, (0, 0, 0));
            assert!(seen.insert(off));
        }
    }

    #[test]
    fn neighbor_counts() {
        let d2 = GridDims::new2d(10, 10);
        // interior
        assert_eq!(d2.neighbors(Coord::new(5, 5, 0)).count(), 8);
        // corner
        assert_eq!(d2.neighbors(Coord::new(0, 0, 0)).count(), 3);
        // edge
        assert_eq!(d2.neighbors(Coord::new(5, 0, 0)).count(), 5);

        let d3 = GridDims::new3d(10, 10, 10);
        assert_eq!(d3.neighbors(Coord::new(5, 5, 5)).count(), 26);
        assert_eq!(d3.neighbors(Coord::new(0, 0, 0)).count(), 7);
    }

    #[test]
    fn n_valid_neighbors_matches_iterator() {
        let d = GridDims::new2d(4, 4);
        for c in d.iter_coords().collect::<Vec<_>>() {
            assert_eq!(d.n_valid_neighbors(c), d.neighbors(c).count());
        }
    }

    #[test]
    fn in_bounds_rejects_negative_and_large() {
        let d = GridDims::new2d(3, 3);
        assert!(!d.in_bounds(Coord::new(-1, 0, 0)));
        assert!(!d.in_bounds(Coord::new(0, 3, 0)));
        assert!(!d.in_bounds(Coord::new(0, 0, 1)));
        assert!(d.in_bounds(Coord::new(2, 2, 0)));
    }

    #[test]
    fn chebyshev_distance() {
        let a = Coord::new(0, 0, 0);
        assert_eq!(a.chebyshev(Coord::new(1, 1, 0)), 1);
        assert_eq!(a.chebyshev(Coord::new(-3, 2, 1)), 3);
    }
}
