//! T-cell agents and the implicit vascular pool.
//!
//! Tissue-resident T cells are stored one-per-voxel in a packed 32-bit slot
//! (the GPU memory layout: a fixed-footprint field rather than a dynamic
//! agent list, §3). Circulating T cells are modeled implicitly as an
//! aggregate vascular pool (§2.2): cohorts with an expiry step, replicated
//! deterministically on every rank.

use std::collections::VecDeque;

/// Packed per-voxel T-cell slot.
///
/// Layout: `0` = empty. Otherwise bit 31 is set and the word packs
/// `fresh` (bit 30, set during the step the cell extravasated so it does not
/// also act that step), `bind_steps` (bits 22–29, steps remaining bound to an
/// epithelial cell) and `tissue_steps` (bits 0–21, remaining tissue
/// lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TCellSlot(pub u32);

const OCCUPIED: u32 = 1 << 31;
const FRESH: u32 = 1 << 30;
const BIND_SHIFT: u32 = 22;
const BIND_MASK: u32 = 0xff << BIND_SHIFT;
const TISSUE_MASK: u32 = (1 << 22) - 1;

impl TCellSlot {
    pub const EMPTY: TCellSlot = TCellSlot(0);

    /// A newly extravasated T cell with the given tissue lifetime, marked
    /// fresh for the remainder of the current step.
    #[inline]
    pub fn fresh(tissue_steps: u32) -> Self {
        TCellSlot(OCCUPIED | FRESH | (tissue_steps & TISSUE_MASK))
    }

    /// An established (non-fresh) T cell.
    #[inline]
    pub fn established(tissue_steps: u32, bind_steps: u32) -> Self {
        debug_assert!(bind_steps <= 0xff, "bind period must fit in 8 bits");
        TCellSlot(OCCUPIED | ((bind_steps & 0xff) << BIND_SHIFT) | (tissue_steps & TISSUE_MASK))
    }

    #[inline]
    pub fn occupied(self) -> bool {
        self.0 & OCCUPIED != 0
    }

    #[inline]
    pub fn is_fresh(self) -> bool {
        self.0 & FRESH != 0
    }

    #[inline]
    pub fn tissue_steps(self) -> u32 {
        self.0 & TISSUE_MASK
    }

    #[inline]
    pub fn bind_steps(self) -> u32 {
        (self.0 & BIND_MASK) >> BIND_SHIFT
    }

    /// Clear the fresh marker (end of the extravasation step).
    #[inline]
    pub fn settled(self) -> Self {
        TCellSlot(self.0 & !FRESH)
    }

    #[inline]
    pub fn with_bind_steps(self, b: u32) -> Self {
        debug_assert!(b <= 0xff);
        TCellSlot((self.0 & !BIND_MASK) | ((b & 0xff) << BIND_SHIFT))
    }

    #[inline]
    pub fn with_tissue_steps(self, t: u32) -> Self {
        TCellSlot((self.0 & !TISSUE_MASK) | (t & TISSUE_MASK))
    }
}

/// A cohort of circulating T cells generated at the same step, expiring
/// together. SIMCoV's vascular residence is modeled as a fixed period per
/// cohort (the aggregate-pool simplification documented in DESIGN.md; the
/// per-cell tissue lifetime *is* Poisson-drawn at extravasation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cohort {
    pub expiry_step: u64,
    pub count: u64,
}

/// The implicit vascular T-cell pool. Every rank holds an identical replica
/// and advances it with the globally-reduced extravasation count, so pool
/// evolution is deterministic and partition-independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VascularPool {
    pub(crate) cohorts: VecDeque<Cohort>,
    /// Fractional generation carry so non-integer rates accumulate exactly.
    pub(crate) carry: f64,
    pub(crate) total: u64,
}

impl VascularPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of circulating T cells (= extravasation trials next step).
    #[inline]
    pub fn circulating(&self) -> u64 {
        self.total
    }

    /// Snapshot the pool state for checkpointing.
    pub fn snapshot(&self) -> (Vec<Cohort>, f64, u64) {
        (
            self.cohorts.iter().copied().collect(),
            self.carry,
            self.total,
        )
    }

    /// Restore a pool from a [`VascularPool::snapshot`].
    pub fn from_snapshot(cohorts: Vec<Cohort>, carry: f64, total: u64) -> Self {
        let pool = VascularPool {
            cohorts: cohorts.into_iter().collect(),
            carry,
            total,
        };
        debug_assert_eq!(
            pool.cohorts.iter().map(|c| c.count).sum::<u64>(),
            pool.total
        );
        pool
    }

    /// Advance one step: expire old cohorts, generate new cells (rate per
    /// step, active after `initial_delay`), and remove the cells that
    /// extravasated this step (`extravasated`, globally reduced). Removal
    /// draws from the oldest cohorts first.
    pub fn advance(
        &mut self,
        step: u64,
        rate: f64,
        initial_delay: u64,
        vascular_period: f64,
        extravasated: u64,
    ) {
        // Expire.
        while let Some(front) = self.cohorts.front() {
            if front.expiry_step <= step {
                self.total -= front.count;
                self.cohorts.pop_front();
            } else {
                break;
            }
        }
        // Remove extravasated cells, oldest first.
        let mut remaining = extravasated.min(self.total);
        self.total -= remaining;
        while remaining > 0 {
            let front = self.cohorts.front_mut().expect("pool accounting");
            if front.count <= remaining {
                remaining -= front.count;
                self.cohorts.pop_front();
            } else {
                front.count -= remaining;
                remaining = 0;
            }
        }
        // Generate.
        if step >= initial_delay {
            let gen = rate + self.carry;
            let whole = gen.floor();
            self.carry = gen - whole;
            let n = whole as u64;
            if n > 0 {
                self.total += n;
                self.cohorts.push_back(Cohort {
                    expiry_step: step + vascular_period.round().max(1.0) as u64,
                    count: n,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_empty_is_not_occupied() {
        assert!(!TCellSlot::EMPTY.occupied());
        assert_eq!(TCellSlot::EMPTY.tissue_steps(), 0);
    }

    #[test]
    fn slot_packing_roundtrip() {
        let s = TCellSlot::established(123_456, 7);
        assert!(s.occupied());
        assert!(!s.is_fresh());
        assert_eq!(s.tissue_steps(), 123_456);
        assert_eq!(s.bind_steps(), 7);

        let f = TCellSlot::fresh(42);
        assert!(f.occupied());
        assert!(f.is_fresh());
        assert_eq!(f.tissue_steps(), 42);
        assert_eq!(f.bind_steps(), 0);
        let settled = f.settled();
        assert!(!settled.is_fresh());
        assert!(settled.occupied());
        assert_eq!(settled.tissue_steps(), 42);
    }

    #[test]
    fn slot_mutators() {
        let s = TCellSlot::established(100, 0)
            .with_bind_steps(9)
            .with_tissue_steps(99);
        assert_eq!(s.bind_steps(), 9);
        assert_eq!(s.tissue_steps(), 99);
        assert!(s.occupied());
    }

    #[test]
    fn pool_generates_after_delay() {
        let mut p = VascularPool::new();
        p.advance(0, 10.0, 5, 100.0, 0);
        assert_eq!(p.circulating(), 0);
        p.advance(5, 10.0, 5, 100.0, 0);
        assert_eq!(p.circulating(), 10);
        p.advance(6, 10.0, 5, 100.0, 0);
        assert_eq!(p.circulating(), 20);
    }

    #[test]
    fn pool_fractional_rate_accumulates() {
        let mut p = VascularPool::new();
        for step in 0..10 {
            p.advance(step, 0.5, 0, 1000.0, 0);
        }
        assert_eq!(p.circulating(), 5);
    }

    #[test]
    fn pool_expires_cohorts() {
        let mut p = VascularPool::new();
        p.advance(0, 10.0, 0, 3.0, 0); // expiry at step 3
        assert_eq!(p.circulating(), 10);
        p.advance(1, 0.0, 0, 3.0, 0);
        p.advance(2, 0.0, 0, 3.0, 0);
        assert_eq!(p.circulating(), 10);
        p.advance(3, 0.0, 0, 3.0, 0);
        assert_eq!(p.circulating(), 0);
    }

    #[test]
    fn pool_extravasation_drains_oldest_first() {
        let mut p = VascularPool::new();
        p.advance(0, 10.0, 0, 100.0, 0);
        p.advance(1, 10.0, 0, 100.0, 0);
        assert_eq!(p.circulating(), 20);
        // Remove 15: the whole first cohort (10) plus 5 of the second.
        p.advance(2, 0.0, 0, 100.0, 15);
        assert_eq!(p.circulating(), 5);
    }

    #[test]
    fn pool_extravasation_caps_at_total() {
        let mut p = VascularPool::new();
        p.advance(0, 3.0, 0, 100.0, 0);
        p.advance(1, 0.0, 0, 100.0, 1_000);
        assert_eq!(p.circulating(), 0);
    }

    #[test]
    fn pool_replicas_agree() {
        let mut a = VascularPool::new();
        let mut b = VascularPool::new();
        for step in 0..100 {
            let ex = step % 3;
            a.advance(step, 2.7, 10, 40.0, ex);
            b.advance(step, 2.7, 10, 40.0, ex);
        }
        assert_eq!(a, b);
    }
}
