//! Branching airway structure generation.
//!
//! SIMCoV overlays lung structure on the voxel grid by leaving voxels empty
//! of epithelial cells (§2.2: "structure is defined for the simulation,
//! such as branching airways in the lung, by leaving some voxels empty");
//! §6 anticipates "fractal branching airways" overlaid on full-lung
//! volumes. This module generates a deterministic dichotomous branching
//! tree (the standard Weibel-like airway idealization) in 2D or 3D and
//! returns the voxel set to carve.

use crate::grid::{Coord, GridDims};

/// Parameters of the branching tree.
#[derive(Debug, Clone, Copy)]
pub struct AirwayTree {
    /// Bifurcation generations (Weibel generations to model).
    pub generations: u32,
    /// Trunk length as a fraction of the grid's y extent.
    pub trunk_fraction: f64,
    /// Length ratio per generation (≈ 2^-1/3 for the Weibel model).
    pub length_ratio: f64,
    /// Half-angle between daughter branches (radians).
    pub branch_angle: f64,
    /// Trunk radius in voxels (daughters shrink with the length ratio).
    pub trunk_radius: f64,
}

impl Default for AirwayTree {
    fn default() -> Self {
        AirwayTree {
            generations: 6,
            trunk_fraction: 0.28,
            length_ratio: 0.79, // 2^{-1/3}, Weibel's diameter/length law
            branch_angle: 0.6,
            trunk_radius: 2.5,
        }
    }
}

/// Rasterize a thick line segment into voxel indices.
fn carve_segment(
    dims: GridDims,
    from: (f64, f64, f64),
    to: (f64, f64, f64),
    radius: f64,
    out: &mut Vec<usize>,
) {
    let steps =
        ((to.0 - from.0).abs() + (to.1 - from.1).abs() + (to.2 - from.2).abs()).ceil() as usize + 1;
    let r = radius.max(0.5);
    let ri = r.ceil() as i64;
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        let cx = from.0 + (to.0 - from.0) * t;
        let cy = from.1 + (to.1 - from.1) * t;
        let cz = from.2 + (to.2 - from.2) * t;
        for dz in -ri..=ri {
            for dy in -ri..=ri {
                for dx in -ri..=ri {
                    // Skip z offsets entirely on 2D grids.
                    if dims.is_2d() && dz != 0 {
                        continue;
                    }
                    let d2 = (dx * dx + dy * dy + dz * dz) as f64;
                    if d2 > r * r {
                        continue;
                    }
                    let c = Coord::new(
                        (cx.round() as i64) + dx,
                        (cy.round() as i64) + dy,
                        (cz.round() as i64) + dz,
                    );
                    if let Some(idx) = dims.checked_index(c) {
                        out.push(idx);
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn branch(
    dims: GridDims,
    tree: &AirwayTree,
    pos: (f64, f64, f64),
    dir: (f64, f64, f64),
    length: f64,
    radius: f64,
    generation: u32,
    out: &mut Vec<usize>,
) {
    if generation > tree.generations || length < 1.0 {
        return;
    }
    let end = (
        pos.0 + dir.0 * length,
        pos.1 + dir.1 * length,
        pos.2 + dir.2 * length,
    );
    carve_segment(dims, pos, end, radius, out);
    // Two daughters rotated ±branch_angle in the plane; in 3D alternate the
    // bifurcation plane per generation (xy vs xz) — the standard idealized
    // in-vivo pattern.
    let (sin, cos) = tree.branch_angle.sin_cos();
    let daughters: [(f64, f64, f64); 2] = if dims.is_2d() || generation.is_multiple_of(2) {
        [
            (dir.0 * cos - dir.1 * sin, dir.0 * sin + dir.1 * cos, dir.2),
            (dir.0 * cos + dir.1 * sin, -dir.0 * sin + dir.1 * cos, dir.2),
        ]
    } else {
        [
            (dir.0 * cos - dir.2 * sin, dir.1, dir.0 * sin + dir.2 * cos),
            (dir.0 * cos + dir.2 * sin, dir.1, -dir.0 * sin + dir.2 * cos),
        ]
    };
    for d in daughters {
        branch(
            dims,
            tree,
            end,
            d,
            length * tree.length_ratio,
            (radius * tree.length_ratio).max(0.5),
            generation + 1,
            out,
        );
    }
}

/// Generate the airway voxel set for a grid: trunk entering at the top
/// center (y = 0), branching downward. Returns sorted, deduplicated global
/// voxel indices suitable for [`crate::world::World::carve_airways`].
pub fn airway_voxels(dims: GridDims, tree: &AirwayTree) -> Vec<usize> {
    let mut out = Vec::new();
    let start = (
        dims.x as f64 / 2.0,
        0.0,
        if dims.is_2d() {
            0.0
        } else {
            dims.z as f64 / 2.0
        },
    );
    let trunk_len = dims.y as f64 * tree.trunk_fraction;
    branch(
        dims,
        tree,
        start,
        (0.0, 1.0, 0.0),
        trunk_len,
        tree.trunk_radius,
        0,
        &mut out,
    );
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_carves_a_reasonable_fraction_2d() {
        let dims = GridDims::new2d(128, 128);
        let v = airway_voxels(dims, &AirwayTree::default());
        let frac = v.len() as f64 / dims.nvoxels() as f64;
        assert!(
            (0.01..0.35).contains(&frac),
            "airway fraction {frac} out of range ({} voxels)",
            v.len()
        );
        for &idx in &v {
            assert!(idx < dims.nvoxels());
        }
        // Sorted and deduplicated.
        for w in v.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn tree_is_deterministic() {
        let dims = GridDims::new2d(96, 96);
        let a = airway_voxels(dims, &AirwayTree::default());
        let b = airway_voxels(dims, &AirwayTree::default());
        assert_eq!(a, b);
    }

    #[test]
    fn trunk_starts_at_top_center() {
        let dims = GridDims::new2d(100, 100);
        let v = airway_voxels(dims, &AirwayTree::default());
        // The voxel at (50, 1) must be airway.
        let idx = dims.index(crate::grid::Coord::new(50, 1, 0));
        assert!(v.binary_search(&idx).is_ok(), "trunk missing at top center");
    }

    #[test]
    fn tree_3d_uses_z() {
        let dims = GridDims::new3d(64, 64, 64);
        let v = airway_voxels(dims, &AirwayTree::default());
        assert!(!v.is_empty());
        // Some carved voxel must leave the central z plane (3D branching).
        let off_plane = v.iter().any(|&i| dims.coord(i).z != 32);
        assert!(off_plane, "3D tree should branch out of plane");
    }

    #[test]
    fn more_generations_carve_more() {
        let dims = GridDims::new2d(128, 128);
        let small = airway_voxels(
            dims,
            &AirwayTree {
                generations: 2,
                ..Default::default()
            },
        );
        let large = airway_voxels(
            dims,
            &AirwayTree {
                generations: 7,
                ..Default::default()
            },
        );
        assert!(large.len() > small.len());
    }
}
