//! Concentration diffusion, decay and production rules.
//!
//! SIMCoV concentrations (virions, inflammatory signal) diffuse over the
//! Moore neighborhood with an explicit relaxation-toward-neighbor-mean
//! stencil and zero-flux boundaries, then decay multiplicatively, and small
//! values are flushed to zero to bound the active region (§3.2's activity
//! tracking depends on this flush).
//!
//! Every executor calls [`diffuse_voxel`] with the *same neighbor
//! enumeration order* (the global offset table), so the f32 arithmetic is
//! bitwise identical across serial, CPU-parallel and GPU-tiled runs.

/// One voxel's diffusion + decay update.
///
/// * `own` — this voxel's pre-diffusion (post-production) value
/// * `neighbor_sum` — sum over the in-bounds Moore neighbors' pre-diffusion
///   values, accumulated in offset-table order
/// * `n_valid` — number of in-bounds neighbors (zero-flux boundary: the mean
///   is taken over existing neighbors only)
/// * `d` — diffusion coefficient in `[0, 1]`
/// * `decay` — fraction lost per step in `[0, 1]`
/// * `min_value` — flush-to-zero threshold
#[inline]
pub fn diffuse_voxel(
    own: f32,
    neighbor_sum: f32,
    n_valid: usize,
    d: f32,
    decay: f32,
    min_value: f32,
) -> f32 {
    debug_assert!(n_valid > 0);
    let mean = neighbor_sum / n_valid as f32;
    let diffused = own + d * (mean - own);
    let decayed = diffused * (1.0 - decay);
    if decayed < min_value {
        0.0
    } else {
        decayed
    }
}

/// The three per-species diffusion constants bundled for kernel call sites
/// (virions and chemokine run the same stencil with different coefficients;
/// see [`crate::params::SimParams::virion_coeffs`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffuseCoeffs {
    /// Diffusion coefficient in `[0, 1]`.
    pub d: f32,
    /// Fraction lost per step in `[0, 1]`.
    pub decay: f32,
    /// Flush-to-zero threshold.
    pub min: f32,
}

impl DiffuseCoeffs {
    /// [`diffuse_voxel`] with these coefficients.
    #[inline]
    pub fn apply(&self, own: f32, neighbor_sum: f32, n_valid: usize) -> f32 {
        diffuse_voxel(own, neighbor_sum, n_valid, self.d, self.decay, self.min)
    }
}

/// Virion production by an epithelial cell in a producing state. Additive,
/// unbounded (virions accumulate; clearance bounds them dynamically).
#[inline]
pub fn produce_virions(current: f32, production: f32) -> f32 {
    current + production
}

/// Inflammatory-signal production: additive but saturating at 1.0 — the
/// signal is interpreted as an extravasation probability (§2.2).
#[inline]
pub fn produce_chemokine(current: f32, production: f32) -> f32 {
    (current + production).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_field_is_fixed_point_without_decay() {
        // own == neighbor mean ⇒ no change before decay.
        let v = diffuse_voxel(2.0, 16.0, 8, 0.5, 0.0, 0.0);
        assert_eq!(v, 2.0);
    }

    #[test]
    fn relaxes_toward_neighbor_mean() {
        // own 0, neighbors mean 1, D = 0.5 ⇒ 0.5.
        let v = diffuse_voxel(0.0, 8.0, 8, 0.5, 0.0, 0.0);
        assert!((v - 0.5).abs() < 1e-6);
        // D = 1 moves fully to the mean.
        let v = diffuse_voxel(0.0, 8.0, 8, 1.0, 0.0, 0.0);
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn decay_applies_after_diffusion() {
        let v = diffuse_voxel(1.0, 8.0, 8, 0.0, 0.25, 0.0);
        assert!((v - 0.75).abs() < 1e-6);
    }

    #[test]
    fn flush_to_zero() {
        let v = diffuse_voxel(1e-9, 0.0, 8, 0.0, 0.0, 1e-6);
        assert_eq!(v, 0.0);
        let v = diffuse_voxel(1e-3, 0.0, 8, 0.0, 0.0, 1e-6);
        assert!(v > 0.0);
    }

    #[test]
    fn boundary_uses_valid_neighbors_only() {
        // A corner voxel in 2D has 3 neighbors; the mean divides by 3.
        let v = diffuse_voxel(0.0, 3.0, 3, 1.0, 0.0, 0.0);
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn production_rules() {
        assert_eq!(produce_virions(2.0, 1.1), 3.1);
        assert_eq!(produce_chemokine(0.5, 1.0), 1.0);
        assert!((produce_chemokine(0.25, 0.25) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn never_negative_for_valid_params() {
        for own in [0.0f32, 0.1, 5.0] {
            for nsum in [0.0f32, 1.0, 40.0] {
                let v = diffuse_voxel(own, nsum, 8, 0.15, 0.004, 1e-10);
                assert!(v >= 0.0);
            }
        }
    }
}
