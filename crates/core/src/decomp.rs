//! Domain decomposition: splitting the voxel grid across ranks/devices.
//!
//! SIMCoV distributes the simulation by linear, 2D or 3D block decomposition
//! (§2.2, Fig 1B); the choice affects communication surface area. Subdomains
//! are axis-aligned boxes with near-equal sizes; ownership is computed by a
//! closed-form formula so any rank can locate any voxel's owner without
//! communication (the PGAS property).

use crate::grid::{Coord, GridDims};

/// Decomposition strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// 1D strips along the highest significant axis (y for 2D, z for 3D) —
    /// the "linear" layout of Fig 1B (top).
    Linear,
    /// Near-square/cube blocks — the "block" layout of Fig 1B (bottom),
    /// used by SIMCoV-GPU (Fig 3).
    Blocks,
}

/// An axis-aligned subdomain `[lo, hi)` owned by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subdomain {
    pub rank: usize,
    /// Inclusive lower corner.
    pub lo: Coord,
    /// Exclusive upper corner.
    pub hi: Coord,
}

impl Subdomain {
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.lo.x
            && c.x < self.hi.x
            && c.y >= self.lo.y
            && c.y < self.hi.y
            && c.z >= self.lo.z
            && c.z < self.hi.z
    }

    /// Core (owned) extent along each axis.
    #[inline]
    pub fn core_dims(&self) -> (usize, usize, usize) {
        (
            (self.hi.x - self.lo.x) as usize,
            (self.hi.y - self.lo.y) as usize,
            (self.hi.z - self.lo.z) as usize,
        )
    }

    #[inline]
    pub fn nvoxels(&self) -> usize {
        let (x, y, z) = self.core_dims();
        x * y * z
    }

    /// Iterate owned coordinates in global index order (z, y, x — x fastest).
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let lo = self.lo;
        let hi = self.hi;
        (lo.z..hi.z).flat_map(move |z| {
            (lo.y..hi.y).flat_map(move |y| (lo.x..hi.x).map(move |x| Coord::new(x, y, z)))
        })
    }

    /// Is the coordinate within Chebyshev distance 1 of this subdomain
    /// (i.e. owned or in its ghost halo)?
    #[inline]
    pub fn in_halo_reach(&self, c: Coord) -> bool {
        c.x >= self.lo.x - 1
            && c.x < self.hi.x + 1
            && c.y >= self.lo.y - 1
            && c.y < self.hi.y + 1
            && c.z >= self.lo.z - 1
            && c.z < self.hi.z + 1
    }
}

/// A full partition of the grid into `n_ranks` subdomains on an
/// `nx × ny × nz` rank lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    pub dims: GridDims,
    pub rank_grid: (usize, usize, usize),
    subs: Vec<Subdomain>,
}

/// Near-equal split points of a length-`len` axis into `k` parts:
/// part `i` covers `[i·len/k, (i+1)·len/k)`.
#[inline]
fn split_point(len: u32, k: usize, i: usize) -> i64 {
    (i as u64 * len as u64 / k as u64) as i64
}

/// Index of the part containing `x` under the near-equal split.
#[inline]
fn part_of(x: i64, len: u32, k: usize) -> usize {
    debug_assert!(x >= 0 && (x as u64) < len as u64);
    (((x as u64 + 1) * k as u64 - 1) / len as u64) as usize
}

/// Factor `n` into `(nx, ny, nz)` minimizing the surface-to-volume ratio of
/// the blocks for the given grid aspect. For 2D grids `nz == 1`.
fn factor(dims: GridDims, n: usize) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_cost = f64::INFINITY;
    let want_z = !dims.is_2d();
    let mut nx = 1;
    while nx <= n {
        if n.is_multiple_of(nx) {
            let rest = n / nx;
            let mut ny = 1;
            while ny <= rest {
                if rest.is_multiple_of(ny) {
                    let nz = rest / ny;
                    if !want_z && nz != 1 {
                        ny += 1;
                        continue;
                    }
                    if nx as u64 > dims.x as u64
                        || ny as u64 > dims.y as u64
                        || nz as u64 > dims.z as u64
                    {
                        ny += 1;
                        continue;
                    }
                    // Block extents; cost = communication surface.
                    let bx = dims.x as f64 / nx as f64;
                    let by = dims.y as f64 / ny as f64;
                    let bz = dims.z as f64 / nz as f64;
                    let cost = if want_z {
                        bx * by + by * bz + bx * bz
                    } else {
                        bx + by
                    };
                    if cost < best_cost {
                        best_cost = cost;
                        best = (nx, ny, nz);
                    }
                }
                ny += 1;
            }
        }
        nx += 1;
    }
    best
}

impl Partition {
    /// Partition `dims` across `n_ranks` using `strategy`. Panics if the
    /// grid cannot host that many ranks (more ranks than voxels along the
    /// split axes).
    pub fn new(dims: GridDims, n_ranks: usize, strategy: Strategy) -> Self {
        Self::try_new(dims, n_ranks, strategy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Partition::new`]: reports an unusable
    /// `(dims, n_ranks, strategy)` combination instead of panicking, so
    /// driver construction can surface a typed configuration error.
    pub fn try_new(dims: GridDims, n_ranks: usize, strategy: Strategy) -> Result<Self, String> {
        if n_ranks == 0 {
            return Err("need at least one rank".to_string());
        }
        let rank_grid = match strategy {
            Strategy::Linear => {
                if dims.is_2d() {
                    if n_ranks as u64 > dims.y as u64 {
                        return Err(format!(
                            "linear decomposition: {n_ranks} ranks > {} rows",
                            dims.y
                        ));
                    }
                    (1, n_ranks, 1)
                } else {
                    if n_ranks as u64 > dims.z as u64 {
                        return Err(format!(
                            "linear decomposition: {n_ranks} ranks > {} planes",
                            dims.z
                        ));
                    }
                    (1, 1, n_ranks)
                }
            }
            Strategy::Blocks => {
                let f = factor(dims, n_ranks);
                if f.0 * f.1 * f.2 != n_ranks {
                    return Err(format!(
                        "no valid factorization of {n_ranks} ranks over {dims:?}"
                    ));
                }
                f
            }
        };
        let (nx, ny, nz) = rank_grid;
        let mut subs = Vec::with_capacity(n_ranks);
        for rz in 0..nz {
            for ry in 0..ny {
                for rx in 0..nx {
                    let rank = (rz * ny + ry) * nx + rx;
                    subs.push(Subdomain {
                        rank,
                        lo: Coord::new(
                            split_point(dims.x, nx, rx),
                            split_point(dims.y, ny, ry),
                            split_point(dims.z, nz, rz),
                        ),
                        hi: Coord::new(
                            split_point(dims.x, nx, rx + 1),
                            split_point(dims.y, ny, ry + 1),
                            split_point(dims.z, nz, rz + 1),
                        ),
                    });
                }
            }
        }
        Ok(Partition {
            dims,
            rank_grid,
            subs,
        })
    }

    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.subs.len()
    }

    #[inline]
    pub fn sub(&self, rank: usize) -> &Subdomain {
        &self.subs[rank]
    }

    pub fn subdomains(&self) -> &[Subdomain] {
        &self.subs
    }

    /// The rank owning a (global, in-bounds) coordinate — closed form, no
    /// search.
    #[inline]
    pub fn owner(&self, c: Coord) -> usize {
        let (nx, ny, nz) = self.rank_grid;
        let rx = part_of(c.x, self.dims.x, nx);
        let ry = part_of(c.y, self.dims.y, ny);
        let rz = part_of(c.z, self.dims.z, nz);
        (rz * ny + ry) * nx + rx
    }

    /// Ranks whose subdomains touch `rank`'s (Chebyshev-adjacent on the rank
    /// lattice) — the halo-exchange peer set, including diagonal neighbors.
    pub fn neighbor_ranks(&self, rank: usize) -> Vec<usize> {
        let (nx, ny, nz) = self.rank_grid;
        let rx = rank % nx;
        let ry = (rank / nx) % ny;
        let rz = rank / (nx * ny);
        let mut out = Vec::new();
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let (qx, qy, qz) = (rx as i64 + dx, ry as i64 + dy, rz as i64 + dz);
                    if qx >= 0
                        && qy >= 0
                        && qz >= 0
                        && (qx as usize) < nx
                        && (qy as usize) < ny
                        && (qz as usize) < nz
                    {
                        out.push((qz as usize * ny + qy as usize) * nx + qx as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_reports_bad_configs() {
        let dims = GridDims::new2d(8, 4);
        assert!(Partition::try_new(dims, 0, Strategy::Linear).is_err());
        // Linear over 4 rows cannot host 5 ranks.
        let err = Partition::try_new(dims, 5, Strategy::Linear).unwrap_err();
        assert!(err.contains("4 rows"), "{err}");
        // But 4 ranks fit, fallibly and infallibly alike.
        let a = Partition::try_new(dims, 4, Strategy::Linear).unwrap();
        let b = Partition::new(dims, 4, Strategy::Linear);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_covers_grid_exactly() {
        for strategy in [Strategy::Linear, Strategy::Blocks] {
            for n in [1usize, 2, 3, 4, 6, 8] {
                let dims = GridDims::new2d(37, 23);
                let p = Partition::new(dims, n, strategy);
                let total: usize = p.subdomains().iter().map(|s| s.nvoxels()).sum();
                assert_eq!(total, dims.nvoxels(), "{strategy:?} n={n}");
                // Each voxel owned exactly once and owner() agrees.
                for c in dims.iter_coords().collect::<Vec<_>>() {
                    let owners: Vec<usize> = p
                        .subdomains()
                        .iter()
                        .filter(|s| s.contains(c))
                        .map(|s| s.rank)
                        .collect();
                    assert_eq!(owners.len(), 1);
                    assert_eq!(p.owner(c), owners[0]);
                }
            }
        }
    }

    #[test]
    fn linear_2d_is_row_strips() {
        let p = Partition::new(GridDims::new2d(10, 12), 4, Strategy::Linear);
        assert_eq!(p.rank_grid, (1, 4, 1));
        for s in p.subdomains() {
            assert_eq!(s.lo.x, 0);
            assert_eq!(s.hi.x, 10);
        }
    }

    #[test]
    fn blocks_2d_prefers_squares() {
        let p = Partition::new(GridDims::new2d(100, 100), 4, Strategy::Blocks);
        assert_eq!(p.rank_grid, (2, 2, 1));
        let p = Partition::new(GridDims::new2d(100, 100), 16, Strategy::Blocks);
        assert_eq!(p.rank_grid, (4, 4, 1));
        // Paper device counts factor sensibly.
        let p = Partition::new(GridDims::new2d(1000, 1000), 8, Strategy::Blocks);
        let (nx, ny, _) = p.rank_grid;
        assert_eq!(nx * ny, 8);
        assert!(nx == 2 && ny == 4 || nx == 4 && ny == 2);
    }

    #[test]
    fn blocks_3d_uses_z() {
        let p = Partition::new(GridDims::new3d(32, 32, 32), 8, Strategy::Blocks);
        assert_eq!(p.rank_grid, (2, 2, 2));
    }

    #[test]
    fn neighbor_ranks_2x2() {
        let p = Partition::new(GridDims::new2d(16, 16), 4, Strategy::Blocks);
        // Every rank neighbors the other three on a 2×2 lattice.
        for r in 0..4 {
            let mut expect: Vec<usize> = (0..4).filter(|&q| q != r).collect();
            expect.sort_unstable();
            assert_eq!(p.neighbor_ranks(r), expect);
        }
    }

    #[test]
    fn neighbor_ranks_linear() {
        let p = Partition::new(GridDims::new2d(8, 8), 4, Strategy::Linear);
        assert_eq!(p.neighbor_ranks(0), vec![1]);
        assert_eq!(p.neighbor_ranks(1), vec![0, 2]);
        assert_eq!(p.neighbor_ranks(3), vec![2]);
    }

    #[test]
    fn halo_reach() {
        let p = Partition::new(GridDims::new2d(8, 8), 4, Strategy::Blocks);
        let s = p.sub(0); // [0,4) × [0,4)
        assert!(s.in_halo_reach(Coord::new(4, 4, 0)));
        assert!(!s.in_halo_reach(Coord::new(5, 0, 0)));
        assert!(s.in_halo_reach(Coord::new(-1, -1, 0)));
    }

    #[test]
    fn iter_coords_in_global_order() {
        let p = Partition::new(GridDims::new2d(4, 4), 4, Strategy::Blocks);
        let s = p.sub(3); // [2,4) × [2,4)
        let dims = p.dims;
        let idxs: Vec<usize> = s.iter_coords().map(|c| dims.index(c)).collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        assert_eq!(idxs, sorted);
        assert_eq!(idxs.len(), 4);
    }

    #[test]
    fn uneven_split_sizes_differ_by_at_most_one_row() {
        let p = Partition::new(GridDims::new2d(10, 10), 3, Strategy::Linear);
        let sizes: Vec<usize> = p.subdomains().iter().map(|s| s.nvoxels()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 10);
    }
}
