//! Structure-of-arrays voxel storage and constant-stride stencil geometry.
//!
//! Every executor keeps its voxel state as parallel flat arrays — the SoA
//! layout the paper's GPU port relies on for coalesced access (§3.2). This
//! module gives that layout a single shared type, [`VoxelSoA`], plus the
//! geometry that makes stencil sweeps over it cheap: [`StencilDeltas`]
//! turns the Moore neighbor-offset table into constant linear-index deltas
//! for any row-major box, so interior voxels gather their whole
//! neighborhood with pointer arithmetic instead of per-neighbor coordinate
//! construction and bounds checks.
//!
//! ## Bitwise reproducibility
//!
//! The delta table is derived from [`GridDims::neighbor_offsets`] and
//! preserves its order exactly. For an *interior* voxel (every Moore
//! neighbor inside the global grid) the fast path visits the same `f32`
//! values in the same order as the bounds-checked path, so the accumulated
//! sums — and therefore the whole trajectory — are bit-identical. Only
//! voxels on the global-grid surface take the slow path.

use crate::epithelial::EpiCells;
use crate::fields::Field;
use crate::grid::{Coord, GridDims};
use crate::tcell::TCellSlot;

/// Unified SoA voxel state over an executor-local index space (the full
/// grid for the serial executor, a halo box for `simcov-cpu`, tile-major
/// padded storage for `simcov-gpu`).
#[derive(Debug, Clone)]
pub struct VoxelSoA {
    pub epi: EpiCells,
    pub tcells: Vec<TCellSlot>,
    pub virions: Field,
    pub chem: Field,
}

impl VoxelSoA {
    /// All-airway (inert) storage of `n` voxels — the neutral fill for
    /// halo-box and padded-tile cells before initialization.
    pub fn airway(n: usize) -> Self {
        VoxelSoA {
            epi: EpiCells::airway(n),
            tcells: vec![TCellSlot::EMPTY; n],
            virions: Field::zeros(n),
            chem: Field::zeros(n),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.epi.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.epi.is_empty()
    }
}

/// Precomputed linear-index deltas of the Moore neighborhood over a
/// row-major box with strides `(1, sx, sx * sy)`.
///
/// For the k-th entry `(dx, dy, dz)` of [`GridDims::neighbor_offsets`],
/// `deltas()[k] == (dz * sy + dy) * sx + dx`, so `index + deltas()[k]`
/// addresses the same cell as re-deriving the neighbor coordinate — valid
/// whenever voxel and neighbor both live in the box.
#[derive(Debug, Clone)]
pub struct StencilDeltas {
    dims: GridDims,
    deltas: [isize; 26],
    n: usize,
}

impl StencilDeltas {
    /// Deltas for a row-major box with x-extent `sx` and y-extent `sy`
    /// (e.g. a halo box, or a tile's padded cube).
    pub fn for_strides(dims: GridDims, sx: usize, sy: usize) -> Self {
        let offs = dims.neighbor_offsets();
        let mut deltas = [0isize; 26];
        for (k, &(dx, dy, dz)) in offs.iter().enumerate() {
            deltas[k] = ((dz * sy as i64 + dy) * sx as i64 + dx) as isize;
        }
        StencilDeltas {
            dims,
            deltas,
            n: offs.len(),
        }
    }

    /// Deltas for the global grid itself (the serial executor's layout).
    pub fn for_grid(dims: GridDims) -> Self {
        Self::for_strides(dims, dims.x as usize, dims.y as usize)
    }

    /// The delta table, in [`GridDims::neighbor_offsets`] order.
    #[inline]
    pub fn deltas(&self) -> &[isize] {
        &self.deltas[..self.n]
    }

    /// Number of Moore neighbors (8 in 2D, 26 in 3D).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Is every Moore neighbor of `c` inside the global grid? Interior
    /// voxels may take the branch-free delta path; surface voxels must use
    /// the bounds-checked path (and a smaller `n_valid`).
    #[inline]
    pub fn is_interior(&self, c: Coord) -> bool {
        let d = self.dims;
        let z_ok = if d.is_2d() {
            true
        } else {
            c.z >= 1 && c.z + 1 < d.z as i64
        };
        c.x >= 1 && c.x + 1 < d.x as i64 && c.y >= 1 && c.y + 1 < d.y as i64 && z_ok
    }

    /// Gather-sum two fields over the full neighborhood of linear index
    /// `i`, accumulating in offset-table order (the canonical rounding
    /// order). The caller guarantees `i` maps to an interior voxel whose
    /// neighbors all live in the same box.
    #[inline]
    pub fn sum2(&self, i: usize, a: &Field, b: &Field) -> (f32, f32) {
        let mut sa = 0.0f32;
        let mut sb = 0.0f32;
        for &d in self.deltas() {
            let u = (i as isize + d) as usize;
            sa += a.get(u);
            sb += b.get(u);
        }
        (sa, sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_airway_is_inert() {
        let s = VoxelSoA::airway(10);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.virions.sum(), 0.0);
        assert_eq!(s.chem.sum(), 0.0);
        assert!(s.tcells.iter().all(|t| !t.occupied()));
    }

    #[test]
    fn grid_deltas_match_checked_index_2d() {
        let dims = GridDims::new2d(7, 5);
        let st = StencilDeltas::for_grid(dims);
        assert_eq!(st.len(), 8);
        for v in 0..dims.nvoxels() {
            let c = dims.coord(v);
            if !st.is_interior(c) {
                continue;
            }
            for (k, &(dx, dy, dz)) in dims.neighbor_offsets().iter().enumerate() {
                let expect = dims.checked_index(c.offset(dx, dy, dz)).unwrap();
                assert_eq!((v as isize + st.deltas()[k]) as usize, expect);
            }
        }
    }

    #[test]
    fn grid_deltas_match_checked_index_3d() {
        let dims = GridDims::new3d(5, 4, 6);
        let st = StencilDeltas::for_grid(dims);
        assert_eq!(st.len(), 26);
        for v in 0..dims.nvoxels() {
            let c = dims.coord(v);
            if !st.is_interior(c) {
                continue;
            }
            for (k, &(dx, dy, dz)) in dims.neighbor_offsets().iter().enumerate() {
                let expect = dims.checked_index(c.offset(dx, dy, dz)).unwrap();
                assert_eq!((v as isize + st.deltas()[k]) as usize, expect);
            }
        }
    }

    #[test]
    fn interior_iff_full_neighbor_count() {
        for dims in [GridDims::new2d(6, 9), GridDims::new3d(4, 5, 6)] {
            let st = StencilDeltas::for_grid(dims);
            for c in dims.iter_coords().collect::<Vec<_>>() {
                let full = dims.n_valid_neighbors(c) == dims.n_neighbors();
                assert_eq!(st.is_interior(c), full, "mismatch at {c:?} in {dims:?}");
            }
        }
    }

    #[test]
    fn sum2_matches_checked_order() {
        // The gather must reproduce the bounds-checked accumulation order
        // bitwise, including with values chosen to make f32 addition
        // order-sensitive.
        let dims = GridDims::new2d(5, 5);
        let st = StencilDeltas::for_grid(dims);
        let mut a = Field::zeros(dims.nvoxels());
        let mut b = Field::zeros(dims.nvoxels());
        for v in 0..dims.nvoxels() {
            a.set(v, (v as f32 * 0.37 + 1.0e-3).exp());
            b.set(v, 1.0e7 / (v as f32 + 1.0) - (v as f32).sqrt());
        }
        for v in 0..dims.nvoxels() {
            let c = dims.coord(v);
            if !st.is_interior(c) {
                continue;
            }
            let mut sa = 0.0f32;
            let mut sb = 0.0f32;
            for &(dx, dy, dz) in dims.neighbor_offsets() {
                let u = dims.checked_index(c.offset(dx, dy, dz)).unwrap();
                sa += a.get(u);
                sb += b.get(u);
            }
            let (fa, fb) = st.sum2(v, &a, &b);
            assert_eq!(fa.to_bits(), sa.to_bits());
            assert_eq!(fb.to_bits(), sb.to_bits());
        }
    }

    #[test]
    fn box_strides_match_halo_local() {
        use crate::decomp::{Partition, Strategy};
        use crate::halo::HaloBox;
        let dims = GridDims::new2d(8, 8);
        let p = Partition::new(dims, 4, Strategy::Blocks);
        let hb = HaloBox::new(dims, *p.sub(0));
        let (sx, sy, _) = hb.size();
        let st = StencilDeltas::for_strides(dims, sx, sy);
        for c in hb.core.iter_coords() {
            if !st.is_interior(c) {
                continue;
            }
            let li = hb.local(c);
            for (k, &(dx, dy, dz)) in dims.neighbor_offsets().iter().enumerate() {
                let q = c.offset(dx, dy, dz);
                assert_eq!((li as isize + st.deltas()[k]) as usize, hb.local(q));
            }
        }
    }
}
