//! Scalar concentration fields (virions, inflammatory signal).
//!
//! A [`Field`] is a flat `f32` array over an executor-local index space. The
//! serial executor indexes it with global voxel indices; parallel executors
//! wrap it in their own layouts (subdomain strips, tiled + halo).

/// A dense scalar field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub data: Vec<f32>,
}

impl Field {
    pub fn zeros(n: usize) -> Self {
        Field { data: vec![0.0; n] }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.data[i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: f32) {
        self.data[i] = v;
    }

    #[inline]
    pub fn add(&mut self, i: usize, v: f32) {
        self.data[i] += v;
    }

    /// Total mass, accumulated in f64 in index order (the canonical
    /// reduction order used for cross-executor statistical comparisons).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Number of strictly positive entries.
    pub fn count_positive(&self) -> usize {
        self.data.iter().filter(|&&v| v > 0.0).count()
    }

    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ops() {
        let mut f = Field::zeros(5);
        assert_eq!(f.len(), 5);
        assert_eq!(f.sum(), 0.0);
        f.set(1, 2.0);
        f.add(1, 0.5);
        f.add(3, 1.0);
        assert_eq!(f.get(1), 2.5);
        assert_eq!(f.sum(), 3.5);
        assert_eq!(f.count_positive(), 2);
        f.fill(0.0);
        assert_eq!(f.sum(), 0.0);
    }

    #[test]
    fn sum_is_f64_accumulated() {
        // 1e8 + 1.0 would lose the 1.0 in f32 accumulation.
        let mut f = Field::zeros(2);
        f.set(0, 1e8);
        f.set(1, 1.0);
        assert_eq!(f.sum(), 1e8f64 + 1.0);
    }
}
