//! Exact (superaccumulator) summation of `f32` samples.
//!
//! The statistics reduction sums per-voxel `f32` concentrations into run
//! totals. Plain `f64` accumulation is *order dependent* — re-associating the
//! sum across a different rank/device partition perturbs the result by ULPs —
//! which would make the recovery protocol's "bitwise identical `TimeSeries`"
//! guarantee impossible: recovery re-partitions the domain across survivors.
//!
//! [`ExactSum`] sidesteps rounding entirely: every `f32` is a rational with a
//! 24-bit significand and an exponent in `[-149, 104]`, so the sum of any
//! realistic number of them fits exactly in a 320-bit fixed-point register
//! (bit 0 = 2⁻¹⁴⁹, top value bit ≤ 2¹²⁸·2⁴³ headroom ≈ 8·10¹² additions of
//! `f32::MAX` before overflow). Addition of limbs is associative and
//! commutative, so **any** partition, reduction-tree shape or replay order
//! produces bit-identical totals — the serial reference, the CPU executor and
//! the GPU executor all agree exactly, before and after a recovery.

use std::ops::AddAssign;

/// Number of 64-bit limbs: 320 bits spans `[2⁻¹⁴⁹, 2¹⁷¹)`.
const LIMBS: usize = 5;

/// A fixed-point superaccumulator for non-negative finite `f32` values.
///
/// Little-endian limbs; bit 0 of limb 0 has weight 2⁻¹⁴⁹ (the smallest
/// subnormal `f32`), so every `f32` embeds exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactSum {
    limbs: [u64; LIMBS],
}

impl ExactSum {
    pub const fn zero() -> Self {
        ExactSum { limbs: [0; LIMBS] }
    }

    /// True if no non-zero value has been added.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; LIMBS]
    }

    /// Add one sample exactly. The model's concentration fields are clamped
    /// non-negative, so only non-negative finite inputs are supported
    /// (debug-asserted; negative/NaN inputs indicate a model bug upstream).
    pub fn add_f32(&mut self, v: f32) {
        debug_assert!(
            v.is_finite() && v >= 0.0,
            "ExactSum supports non-negative finite samples, got {v}"
        );
        let bits = v.to_bits();
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x7F_FFFF;
        let (mant, e) = if exp == 0 {
            if frac == 0 {
                return; // ±0 contributes nothing
            }
            (frac as u64, -149) // subnormal: frac · 2⁻¹⁴⁹
        } else {
            ((frac | 0x80_0000) as u64, exp - 150) // normal: (2²³+frac) · 2^(exp−150)
        };
        // Weight of the mantissa's bit 0 relative to the register's bit 0.
        let p = (e + 149) as u32;
        self.add_wide((p / 64) as usize, (mant as u128) << (p % 64));
    }

    /// Add `wide` at limb offset `limb`, propagating carries upward.
    fn add_wide(&mut self, limb: usize, wide: u128) {
        let mut i = limb;
        let mut rem = wide;
        while rem != 0 {
            assert!(i < LIMBS, "ExactSum overflow (≫10¹² f32::MAX additions)");
            let (sum, carry) = self.limbs[i].overflowing_add(rem as u64);
            self.limbs[i] = sum;
            rem = (rem >> 64) + carry as u128;
            i += 1;
        }
    }

    /// Round the exact total to the nearest `f64` (deterministic for a given
    /// exact value — independent of how the total was assembled).
    pub fn to_f64(&self) -> f64 {
        // High-to-low cascade: each fold is exact until the value exceeds
        // 2⁵³, after which rounding depends only on the exact prefix value.
        let mut acc = 0.0f64;
        for limb in self.limbs.iter().rev() {
            acc = acc * 18_446_744_073_709_551_616.0 + *limb as f64; // ·2⁶⁴
        }
        acc * 2f64.powi(-149)
    }
}

impl AddAssign for ExactSum {
    /// Merge two accumulators (the reduction combine). Limb-wise addition
    /// with carry: exactly associative and commutative.
    fn add_assign(&mut self, o: ExactSum) {
        let mut carry = 0u128;
        for i in 0..LIMBS {
            let s = self.limbs[i] as u128 + o.limbs[i] as u128 + carry;
            self.limbs[i] = s as u64;
            carry = s >> 64;
        }
        assert!(carry == 0, "ExactSum overflow in merge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(mut x: u64) -> u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn sample_values(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                // Mix magnitudes wildly: uniform mantissa, exponent spread
                // over ~60 binades, plus exact zeros and subnormals.
                let u = mix(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
                match u % 7 {
                    0 => 0.0,
                    1 => f32::from_bits((u % 0x7F_FFFF) as u32 + 1), // subnormal
                    _ => {
                        let m = (u >> 8) as f32 / (1u64 << 56) as f32 + 0.5;
                        let e = ((u >> 3) % 61) as i32 - 30;
                        m * 2f32.powi(e)
                    }
                }
            })
            .collect()
    }

    #[test]
    fn embeds_single_values_exactly() {
        for v in [
            0.0f32,
            1.0,
            0.5,
            3.25,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::from_bits(1), // smallest subnormal
            1e-38,
            6.1e4,
        ] {
            let mut s = ExactSum::zero();
            s.add_f32(v);
            assert_eq!(s.to_f64(), v as f64, "exact embed of {v}");
        }
    }

    #[test]
    fn order_and_grouping_invariant() {
        let vals = sample_values(4096, 42);
        // Straight left-to-right.
        let mut a = ExactSum::zero();
        for &v in &vals {
            a.add_f32(v);
        }
        // Reversed.
        let mut b = ExactSum::zero();
        for &v in vals.iter().rev() {
            b.add_f32(v);
        }
        // Blocked into 7 uneven partial sums, merged pairwise like a
        // reduction tree.
        let mut parts: Vec<ExactSum> = vals
            .chunks(vals.len() / 7 + 1)
            .map(|c| {
                let mut s = ExactSum::zero();
                for &v in c {
                    s.add_f32(v);
                }
                s
            })
            .collect();
        while parts.len() > 1 {
            let hi = parts.split_off(parts.len().div_ceil(2));
            for (i, h) in hi.into_iter().enumerate() {
                parts[i] += h;
            }
        }
        assert_eq!(a, b);
        assert_eq!(a, parts[0]);
        assert_eq!(a.to_f64().to_bits(), parts[0].to_f64().to_bits());
    }

    #[test]
    fn agrees_with_naive_f64_within_ulps() {
        let vals = sample_values(10_000, 7);
        let naive: f64 = vals.iter().map(|&v| v as f64).sum();
        let mut s = ExactSum::zero();
        for &v in &vals {
            s.add_f32(v);
        }
        let exact = s.to_f64();
        let rel = (exact - naive).abs() / naive.abs().max(1e-300);
        assert!(rel < 1e-11, "exact {exact} vs naive {naive} (rel {rel})");
    }

    #[test]
    fn small_integer_sums_are_exact() {
        let mut s = ExactSum::zero();
        for _ in 0..1000 {
            s.add_f32(1.5);
        }
        assert_eq!(s.to_f64(), 1500.0);
    }

    #[test]
    fn merge_is_commutative() {
        let vals = sample_values(512, 9);
        let (lo, hi) = vals.split_at(200);
        let mk = |vs: &[f32]| {
            let mut s = ExactSum::zero();
            for &v in vs {
                s.add_f32(v);
            }
            s
        };
        let mut ab = mk(lo);
        ab += mk(hi);
        let mut ba = mk(hi);
        ba += mk(lo);
        assert_eq!(ab, ba);
    }

    #[test]
    fn overflow_headroom_is_ample() {
        // A worst-case realistic run: 10⁹ voxels of 10⁶ each stays far from
        // the 2¹⁷¹ register ceiling.
        let mut s = ExactSum::zero();
        for _ in 0..1_000 {
            s.add_f32(1e6);
        }
        let mut total = ExactSum::zero();
        for _ in 0..1_000 {
            total += s;
        }
        assert!((total.to_f64() - 1e12).abs() < 1.0);
    }
}
