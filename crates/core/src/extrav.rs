//! Shared extravasation trial table.
//!
//! All circulating T cells make one extravasation attempt per step at a
//! uniformly random voxel (§2.2). The trial sequence is a pure function of
//! `(seed, step, trial index)`, so every rank can reconstruct it; this table
//! computes it once per step and sorts it by voxel so a rank can extract the
//! trials landing in its region with binary searches instead of a full scan
//! (the *modeled* system distributes trial generation across ranks — see
//! DESIGN.md; the cost model charges each rank `ntrials / n_ranks`).

use crate::params::SimParams;
use crate::rules::extrav_voxel;

/// The extravasation trials of one step, sorted by `(voxel, trial index)`.
/// Per-voxel trial order is what resolves same-voxel conflicts (first
/// successful trial claims the voxel).
#[derive(Debug, Clone, Default)]
pub struct TrialTable {
    entries: Vec<(usize, u64)>,
}

impl TrialTable {
    /// Build the table for `step` given the circulating pool size.
    pub fn build(p: &SimParams, step: u64, ntrials: u64) -> Self {
        let mut entries: Vec<(usize, u64)> = (0..ntrials)
            .map(|i| (extrav_voxel(p, step, i), i))
            .collect();
        entries.sort_unstable();
        TrialTable { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All trials landing on voxels in the global-index range
    /// `[gid_lo, gid_hi)`, in `(voxel, trial)` order.
    pub fn in_gid_range(&self, gid_lo: usize, gid_hi: usize) -> &[(usize, u64)] {
        let lo = self.entries.partition_point(|&(v, _)| v < gid_lo);
        let hi = self.entries.partition_point(|&(v, _)| v < gid_hi);
        &self.entries[lo..hi]
    }

    /// All trials in `(voxel, trial)` order.
    pub fn all(&self) -> &[(usize, u64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;

    fn params() -> SimParams {
        SimParams {
            dims: GridDims::new2d(32, 32),
            ..SimParams::default()
        }
    }

    #[test]
    fn table_matches_direct_generation() {
        let p = params();
        let t = TrialTable::build(&p, 5, 100);
        assert_eq!(t.len(), 100);
        for &(v, i) in t.all() {
            assert_eq!(v, extrav_voxel(&p, 5, i));
        }
    }

    #[test]
    fn sorted_by_voxel_then_trial() {
        let p = params();
        let t = TrialTable::build(&p, 9, 500);
        for w in t.all().windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn gid_range_extraction() {
        let p = params();
        let t = TrialTable::build(&p, 2, 300);
        let lo = 100;
        let hi = 200;
        let range = t.in_gid_range(lo, hi);
        let expect: Vec<(usize, u64)> = t
            .all()
            .iter()
            .copied()
            .filter(|&(v, _)| (lo..hi).contains(&v))
            .collect();
        assert_eq!(range, expect.as_slice());
        // Union over disjoint ranges covers everything.
        let total = t.in_gid_range(0, 512).len() + t.in_gid_range(512, 1024).len();
        assert_eq!(total, 300);
    }

    #[test]
    fn empty_table() {
        let p = params();
        let t = TrialTable::build(&p, 0, 0);
        assert!(t.is_empty());
        assert!(t.in_gid_range(0, 1024).is_empty());
    }
}
