//! Epithelial (tissue) cells: a five-state finite-state machine per voxel.
//!
//! Epithelial cells are stationary. A voxel either holds one epithelial cell
//! or none (`Airway` — used to overlay lung structure such as branching
//! airways, §2.2). States follow the paper:
//! healthy → incubating (infected, producing virus, *not* detectable by T
//! cells) → expressing (detectable) → dead, with a T-cell-triggered
//! apoptotic branch from incubating/expressing.

/// Epithelial cell state of a voxel, stored as one byte (the GPU layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EpiState {
    /// No epithelial cell in this voxel (airway / structural gap).
    Airway = 0,
    Healthy = 1,
    /// Infected; produces virions but is invisible to T cells.
    Incubating = 2,
    /// Producing virions and inflammatory signal; detectable by T cells.
    Expressing = 3,
    /// Bound by a T cell; dying, still producing virions and signal.
    Apoptotic = 4,
    Dead = 5,
}

impl EpiState {
    /// Lossless byte conversion (inverse of `as u8`). Panics on bytes that
    /// do not encode a state — state arrays are never exposed to untrusted
    /// input.
    #[inline]
    pub fn from_u8(b: u8) -> EpiState {
        match b {
            0 => EpiState::Airway,
            1 => EpiState::Healthy,
            2 => EpiState::Incubating,
            3 => EpiState::Expressing,
            4 => EpiState::Apoptotic,
            5 => EpiState::Dead,
            _ => panic!("invalid epithelial state byte {b}"),
        }
    }

    /// Does a cell in this state produce virions this step?
    /// Incubating cells produce virus while undetectable (§2.2).
    #[inline]
    pub fn produces_virions(self) -> bool {
        matches!(
            self,
            EpiState::Incubating | EpiState::Expressing | EpiState::Apoptotic
        )
    }

    /// Does a cell in this state produce inflammatory signal this step?
    /// Only detectable infected states inflame.
    #[inline]
    pub fn produces_chemokine(self) -> bool {
        matches!(self, EpiState::Expressing | EpiState::Apoptotic)
    }

    /// Can a T cell bind this cell (triggering apoptosis)?
    #[inline]
    pub fn bindable(self) -> bool {
        matches!(self, EpiState::Expressing)
    }

    /// States that can still change without external input (used by the
    /// active-list / active-tile optimizations: a voxel whose epithelial
    /// cell is in one of these states must be processed every step).
    #[inline]
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            EpiState::Incubating | EpiState::Expressing | EpiState::Apoptotic
        )
    }
}

/// Structure-of-arrays storage for epithelial cells over any local index
/// space (full grid for the serial executor, subdomain + ghost halo for the
/// parallel executors).
#[derive(Debug, Clone, PartialEq)]
pub struct EpiCells {
    /// One [`EpiState`] byte per voxel.
    pub state: Vec<u8>,
    /// Steps remaining in the current state (meaningful for incubating /
    /// expressing / apoptotic).
    pub timer: Vec<u32>,
}

impl EpiCells {
    /// All-healthy tissue of `n` voxels.
    pub fn healthy(n: usize) -> Self {
        EpiCells {
            state: vec![EpiState::Healthy as u8; n],
            timer: vec![0; n],
        }
    }

    /// All-airway (empty) storage of `n` voxels.
    pub fn airway(n: usize) -> Self {
        EpiCells {
            state: vec![EpiState::Airway as u8; n],
            timer: vec![0; n],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.state.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> EpiState {
        EpiState::from_u8(self.state[i])
    }

    #[inline]
    pub fn set(&mut self, i: usize, s: EpiState, timer: u32) {
        self.state[i] = s as u8;
        self.timer[i] = timer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        for s in [
            EpiState::Airway,
            EpiState::Healthy,
            EpiState::Incubating,
            EpiState::Expressing,
            EpiState::Apoptotic,
            EpiState::Dead,
        ] {
            assert_eq!(EpiState::from_u8(s as u8), s);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_byte_panics() {
        EpiState::from_u8(17);
    }

    #[test]
    fn production_rules_follow_paper() {
        assert!(EpiState::Incubating.produces_virions());
        assert!(!EpiState::Incubating.produces_chemokine());
        assert!(EpiState::Expressing.produces_virions());
        assert!(EpiState::Expressing.produces_chemokine());
        assert!(EpiState::Apoptotic.produces_virions());
        assert!(EpiState::Apoptotic.produces_chemokine());
        assert!(!EpiState::Healthy.produces_virions());
        assert!(!EpiState::Dead.produces_virions());
        assert!(!EpiState::Airway.produces_virions());
    }

    #[test]
    fn only_expressing_is_bindable() {
        assert!(EpiState::Expressing.bindable());
        for s in [
            EpiState::Airway,
            EpiState::Healthy,
            EpiState::Incubating,
            EpiState::Apoptotic,
            EpiState::Dead,
        ] {
            assert!(!s.bindable());
        }
    }

    #[test]
    fn soa_set_get() {
        let mut e = EpiCells::healthy(4);
        assert_eq!(e.get(2), EpiState::Healthy);
        e.set(2, EpiState::Incubating, 17);
        assert_eq!(e.get(2), EpiState::Incubating);
        assert_eq!(e.timer[2], 17);
        assert_eq!(e.len(), 4);
    }
}
