//! The serial reference executor.
//!
//! This is the ground truth for the staged per-step semantics described in
//! [`crate::rules`]; the `simcov-cpu` and `simcov-gpu` executors must produce
//! **bitwise identical** trajectories (verified by the workspace integration
//! tests). It is deliberately simple — full sweeps, no activity tracking —
//! so its correctness is auditable.

use crate::diffusion::{produce_chemokine, produce_virions, DiffuseCoeffs};
use crate::epithelial::EpiState;
use crate::fields::Field;
use crate::foi::FoiPattern;
use crate::grid::GridDims;
use crate::lanes::{self, KernelMode};
use crate::params::SimParams;
use crate::rules::{
    self, epi_update, extrav_lifetime, extrav_succeeds, extrav_voxel, plan_tcell, Bid, TCellAction,
};
use crate::soa::StencilDeltas;
use crate::stats::{StatsPartial, StepStats, TimeSeries};
use crate::tcell::{TCellSlot, VascularPool};
use crate::world::World;

/// Serial SIMCoV simulation.
#[derive(Debug)]
pub struct SerialSim {
    pub params: SimParams,
    pub world: World,
    pub pool: VascularPool,
    pub step: u64,
    pub history: TimeSeries,
    scratch_virions: Field,
    scratch_chem: Field,
    stencil: StencilDeltas,
    kernel: KernelMode,
}

impl SerialSim {
    /// Build a simulation with the default uniform-lattice FOI seeding.
    pub fn new(params: SimParams) -> Self {
        Self::with_pattern(params, FoiPattern::UniformLattice)
    }

    pub fn with_pattern(params: SimParams, pattern: FoiPattern) -> Self {
        params.validate().expect("invalid parameters");
        let world = World::seeded(&params, pattern);
        let n = world.nvoxels();
        let stencil = StencilDeltas::for_grid(params.dims);
        SerialSim {
            params,
            world,
            pool: VascularPool::new(),
            step: 0,
            history: TimeSeries::default(),
            scratch_virions: Field::zeros(n),
            scratch_chem: Field::zeros(n),
            stencil,
            kernel: KernelMode::default(),
        }
    }

    /// Build from an explicit initial world (e.g. carved airways, CT
    /// lesions).
    pub fn from_world(params: SimParams, world: World) -> Self {
        params.validate().expect("invalid parameters");
        assert_eq!(params.dims, world.dims);
        let n = world.nvoxels();
        let stencil = StencilDeltas::for_grid(params.dims);
        SerialSim {
            params,
            world,
            pool: VascularPool::new(),
            step: 0,
            history: TimeSeries::default(),
            scratch_virions: Field::zeros(n),
            scratch_chem: Field::zeros(n),
            stencil,
            kernel: KernelMode::default(),
        }
    }

    /// Select the diffusion kernel (default [`KernelMode::Wide`]). The
    /// trajectory is bitwise identical either way; `Scalar` is the
    /// differential oracle.
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The active diffusion kernel.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Run all configured steps.
    pub fn run(&mut self) {
        while self.step < self.params.steps {
            self.advance_step();
        }
    }

    /// Advance one timestep (the canonical phase order).
    pub fn advance_step(&mut self) {
        let t = self.step;
        let p = self.params.clone();
        let dims = p.dims;
        let n = dims.nvoxels();

        // --- Phase 1: extravasation ----------------------------------
        // Every circulating T cell gets one trial; trials are resolved in
        // trial order (first trial landing on a voxel wins it), and cells
        // are placed immediately (fresh) so they block later trials and
        // this step's movers.
        let ntrials = self.pool.circulating();
        let mut extravasated = 0u64;
        for i in 0..ntrials {
            let v = extrav_voxel(&p, t, i);
            if self.world.tcells[v].occupied() {
                continue;
            }
            if extrav_succeeds(&p, t, i, self.world.chemokine.get(v)) {
                let life = extrav_lifetime(&p, t, i);
                self.world.tcells[v] = TCellSlot::fresh(life);
                extravasated += 1;
            }
        }

        // --- Phase 2: plan established T cells ------------------------
        let mut actions: Vec<(usize, TCellAction)> = Vec::new();
        for v in 0..n {
            let slot = self.world.tcells[v];
            if slot.occupied() && !slot.is_fresh() {
                actions.push((v, plan_tcell(&self.world, &p, t, dims.coord(v))));
            }
        }

        // --- Phase 3: resolve contested targets -----------------------
        // Winner per target = max Bid; separate arenas for movement (the
        // T-cell slot resource) and binding (the epithelial-cell resource).
        let mut move_bids: std::collections::HashMap<usize, Bid> = std::collections::HashMap::new();
        let mut bind_bids: std::collections::HashMap<usize, Bid> = std::collections::HashMap::new();
        for (_, a) in &actions {
            match *a {
                TCellAction::TryMove { target, bid } => {
                    let e = move_bids.entry(dims.index(target)).or_insert(Bid::EMPTY);
                    *e = e.merge(bid);
                }
                TCellAction::TryBind { target, bid } => {
                    let e = bind_bids.entry(dims.index(target)).or_insert(Bid::EMPTY);
                    *e = e.merge(bid);
                }
                _ => {}
            }
        }

        // --- Phase 4: apply T-cell actions ----------------------------
        for (v, a) in &actions {
            let v = *v;
            let slot = self.world.tcells[v];
            let ts = slot.tissue_steps();
            match *a {
                TCellAction::Die => {
                    self.world.tcells[v] = TCellSlot::EMPTY;
                }
                TCellAction::StayBound => {
                    self.world.tcells[v] = TCellSlot::established(ts - 1, slot.bind_steps() - 1);
                }
                TCellAction::Stay => {
                    self.world.tcells[v] = TCellSlot::established(ts - 1, 0);
                }
                TCellAction::TryBind { target, bid } => {
                    let ti = dims.index(target);
                    if bind_bids[&ti] == bid {
                        // Winner: trigger apoptosis, stay bound.
                        self.world.epi.set(
                            ti,
                            EpiState::Apoptotic,
                            rules::apoptosis_timer(&p, t, ti as u64),
                        );
                        self.world.tcells[v] =
                            TCellSlot::established(ts - 1, p.tcell_binding_period);
                    } else {
                        self.world.tcells[v] = TCellSlot::established(ts - 1, 0);
                    }
                }
                TCellAction::TryMove { target, bid } => {
                    let ti = dims.index(target);
                    if move_bids[&ti] == bid {
                        self.world.tcells[ti] = TCellSlot::established(ts - 1, 0);
                        self.world.tcells[v] = TCellSlot::EMPTY;
                    } else {
                        self.world.tcells[v] = TCellSlot::established(ts - 1, 0);
                    }
                }
            }
        }
        // Settle fresh cells.
        for v in 0..n {
            let slot = self.world.tcells[v];
            if slot.is_fresh() {
                self.world.tcells[v] = slot.settled();
            }
        }

        // --- Phase 5: epithelial FSM (post-binding state) --------------
        for v in 0..n {
            let s = self.world.epi.get(v);
            if s == EpiState::Airway || s == EpiState::Dead {
                continue;
            }
            let u = epi_update(
                s,
                self.world.epi.timer[v],
                self.world.virions.get(v),
                &p,
                t,
                v as u64,
            );
            self.world.epi.set(v, u.state, u.timer);
        }

        // --- Phase 6: production + diffusion ---------------------------
        for v in 0..n {
            let s = self.world.epi.get(v);
            if s.produces_virions() {
                self.world.virions.set(
                    v,
                    produce_virions(self.world.virions.get(v), p.virion_production),
                );
            }
            if s.produces_chemokine() {
                self.world.chemokine.set(
                    v,
                    produce_chemokine(self.world.chemokine.get(v), p.chemokine_production),
                );
            }
        }
        let vc = p.virion_coeffs();
        let cc = p.chemokine_coeffs();
        match self.kernel {
            // Reference path: per-voxel gather. Interior voxels use constant
            // stride deltas (same values in the same offset-table order —
            // bitwise identical to the checked path); only the grid surface
            // pays per-neighbor checks.
            KernelMode::Scalar => {
                for v in 0..n {
                    let c = dims.coord(v);
                    if self.stencil.is_interior(c) {
                        let (vs, cs) =
                            self.stencil
                                .sum2(v, &self.world.virions, &self.world.chemokine);
                        let nvalid = self.stencil.len();
                        self.scratch_virions
                            .set(v, vc.apply(self.world.virions.get(v), vs, nvalid));
                        self.scratch_chem
                            .set(v, cc.apply(self.world.chemokine.get(v), cs, nvalid));
                    } else {
                        diffuse_surface_voxel(
                            dims,
                            &self.world,
                            vc,
                            cc,
                            v,
                            &mut self.scratch_virions,
                            &mut self.scratch_chem,
                        );
                    }
                }
            }
            // Wide path: each inner row's interior span runs through the
            // chunked lane kernel (per-lane accumulation in the same
            // offset-table order — structurally bit-identical to `sum2`);
            // the two row ends and all surface rows take the checked path.
            KernelMode::Wide => {
                let (nx, ny, nz) = (dims.x as usize, dims.y as usize, dims.z as usize);
                for z in 0..nz {
                    let z_inner = dims.is_2d() || (z >= 1 && z + 1 < nz);
                    for y in 0..ny {
                        let row = (z * ny + y) * nx;
                        if z_inner && y >= 1 && y + 1 < ny && nx >= 3 {
                            diffuse_surface_voxel(
                                dims,
                                &self.world,
                                vc,
                                cc,
                                row,
                                &mut self.scratch_virions,
                                &mut self.scratch_chem,
                            );
                            let (sv, sc) = (&mut self.scratch_virions, &mut self.scratch_chem);
                            lanes::diffuse_interior_run(
                                &self.stencil,
                                row + 1,
                                nx - 2,
                                &self.world.virions,
                                &self.world.chemokine,
                                vc,
                                cc,
                                |v, nvv, ncc| {
                                    sv.set(v, nvv);
                                    sc.set(v, ncc);
                                },
                            );
                            diffuse_surface_voxel(
                                dims,
                                &self.world,
                                vc,
                                cc,
                                row + nx - 1,
                                &mut self.scratch_virions,
                                &mut self.scratch_chem,
                            );
                        } else {
                            for x in 0..nx {
                                diffuse_surface_voxel(
                                    dims,
                                    &self.world,
                                    vc,
                                    cc,
                                    row + x,
                                    &mut self.scratch_virions,
                                    &mut self.scratch_chem,
                                );
                            }
                        }
                    }
                }
            }
        }
        std::mem::swap(&mut self.world.virions, &mut self.scratch_virions);
        std::mem::swap(&mut self.world.chemokine, &mut self.scratch_chem);

        // --- Phase 7: statistics + pool advance -------------------------
        self.pool.advance(
            t,
            p.tcell_generation_rate,
            p.tcell_initial_delay,
            p.tcell_vascular_period,
            extravasated,
        );
        // Exact accumulation (see `exact::ExactSum`) so the serial totals
        // are bit-identical to any partitioned executor's reduction.
        let mut stats = StatsPartial {
            step: t,
            extravasated,
            tcells_vasculature: self.pool.circulating(),
            ..Default::default()
        };
        for v in 0..n {
            stats.add_virions(self.world.virions.get(v));
            stats.add_chemokine(self.world.chemokine.get(v));
            if self.world.tcells[v].occupied() {
                stats.tcells_tissue += 1;
            }
            match self.world.epi.get(v) {
                EpiState::Healthy => stats.epi_healthy += 1,
                EpiState::Incubating => stats.epi_incubating += 1,
                EpiState::Expressing => stats.epi_expressing += 1,
                EpiState::Apoptotic => stats.epi_apoptotic += 1,
                EpiState::Dead => stats.epi_dead += 1,
                EpiState::Airway => {}
            }
        }
        self.history.push(stats.finalize());
        self.step += 1;
    }

    /// Latest step statistics, if any step has run.
    pub fn last_stats(&self) -> Option<&StepStats> {
        self.history.steps.last()
    }
}

/// Bounds-checked diffusion of one voxel (grid-surface or short-row case):
/// gather the in-bounds Moore neighbors in offset-table order with a
/// per-neighbor check, then stage the update. Shared by both kernel modes so
/// the surface arithmetic is literally the same code path.
fn diffuse_surface_voxel(
    dims: GridDims,
    world: &World,
    vc: DiffuseCoeffs,
    cc: DiffuseCoeffs,
    v: usize,
    scratch_virions: &mut Field,
    scratch_chem: &mut Field,
) {
    let c = dims.coord(v);
    let mut vs = 0.0f32;
    let mut cs = 0.0f32;
    let mut nv = 0usize;
    for &(dx, dy, dz) in dims.neighbor_offsets() {
        if let Some(u) = dims.checked_index(c.offset(dx, dy, dz)) {
            vs += world.virions.get(u);
            cs += world.chemokine.get(u);
            nv += 1;
        }
    }
    scratch_virions.set(v, vc.apply(world.virions.get(v), vs, nv));
    scratch_chem.set(v, cc.apply(world.chemokine.get(v), cs, nv));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;

    fn small(steps: u64, foi: u32, seed: u64) -> SerialSim {
        let p = SimParams::test_config(GridDims::new2d(24, 24), steps, foi, seed);
        SerialSim::new(p)
    }

    #[test]
    fn infection_spreads_and_kills_cells() {
        let mut sim = small(200, 2, 1);
        sim.run();
        let last = *sim.last_stats().unwrap();
        assert!(last.virions > 0.0, "virions should persist/grow");
        assert!(
            last.epi_dead + last.epi_expressing + last.epi_incubating + last.epi_apoptotic > 0,
            "infection should progress"
        );
        // The infection must have spread beyond the initial foci.
        let infected_area = (24 * 24) as u64 - last.epi_healthy;
        assert!(
            infected_area > 2,
            "spread beyond the 2 seeds: {infected_area}"
        );
    }

    #[test]
    fn tcells_eventually_enter_tissue() {
        let mut sim = small(300, 4, 2);
        sim.run();
        let max_tissue = sim
            .history
            .steps
            .iter()
            .map(|s| s.tcells_tissue)
            .max()
            .unwrap();
        assert!(max_tissue > 0, "T cells should extravasate");
        let max_vasc = sim
            .history
            .steps
            .iter()
            .map(|s| s.tcells_vasculature)
            .max()
            .unwrap();
        assert!(max_vasc > 0, "pool should fill");
    }

    #[test]
    fn tcells_bind_and_trigger_apoptosis() {
        let mut sim = small(400, 4, 3);
        sim.run();
        let max_apop = sim
            .history
            .steps
            .iter()
            .map(|s| s.epi_apoptotic)
            .max()
            .unwrap();
        assert!(max_apop > 0, "T cells should trigger apoptosis");
    }

    #[test]
    fn determinism_same_seed() {
        let mut a = small(120, 2, 7);
        let mut b = small(120, 2, 7);
        a.run();
        b.run();
        assert!(a.world.first_difference(&b.world).is_none());
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = small(150, 2, 7);
        let mut b = small(150, 2, 8);
        a.run();
        b.run();
        assert!(a.world.first_difference(&b.world).is_some());
    }

    #[test]
    fn tcell_count_conserved_by_movement() {
        // With extravasation and death disabled after a warm start, the
        // tissue T-cell count must be exactly conserved by movement.
        let mut p = SimParams::test_config(GridDims::new2d(16, 16), 50, 1, 5);
        p.tcell_generation_rate = 0.0;
        p.num_foi = 0;
        let mut sim = SerialSim::new(p);
        // Place some long-lived T cells by hand.
        for v in [0usize, 5, 40, 100, 200, 255] {
            sim.world.tcells[v] = TCellSlot::established(1000, 0);
        }
        let before = sim.world.count_tcells();
        for _ in 0..50 {
            sim.advance_step();
        }
        assert_eq!(sim.world.count_tcells(), before);
    }

    #[test]
    fn one_tcell_per_voxel_invariant() {
        let mut sim = small(200, 4, 11);
        for _ in 0..200 {
            sim.advance_step();
            // TCellSlot is one-per-voxel by construction; verify no slot is
            // simultaneously fresh at end of step (all settled).
            for s in &sim.world.tcells {
                assert!(!s.is_fresh(), "fresh flag must be cleared at step end");
            }
        }
    }

    #[test]
    fn concentrations_bounded_and_nonnegative() {
        let mut sim = small(150, 4, 13);
        for _ in 0..150 {
            sim.advance_step();
            for v in 0..sim.world.nvoxels() {
                assert!(sim.world.virions.get(v) >= 0.0);
                let c = sim.world.chemokine.get(v);
                assert!((0.0..=1.0).contains(&c), "chemokine {c} out of [0,1]");
            }
        }
    }

    #[test]
    fn stats_counts_sum_to_grid() {
        let mut sim = small(100, 2, 17);
        sim.run();
        for s in &sim.history.steps {
            assert_eq!(
                s.epi_healthy + s.epi_incubating + s.epi_expressing + s.epi_apoptotic + s.epi_dead,
                24 * 24
            );
        }
    }

    #[test]
    fn airway_voxels_stay_inert() {
        let p = SimParams::test_config(GridDims::new2d(16, 16), 100, 1, 19);
        let mut w = World::seeded(&p, FoiPattern::UniformLattice);
        w.carve_airways(&[0, 1, 2, 3]);
        let mut sim = SerialSim::from_world(p, w);
        sim.run();
        for v in 0..4usize {
            assert_eq!(sim.world.epi.get(v), EpiState::Airway);
        }
    }

    #[test]
    fn zero_foi_stays_quiescent() {
        let mut p = SimParams::test_config(GridDims::new2d(16, 16), 50, 0, 23);
        p.tcell_generation_rate = 0.0;
        let mut sim = SerialSim::new(p);
        sim.run();
        let last = *sim.last_stats().unwrap();
        assert_eq!(last.virions, 0.0);
        assert_eq!(last.tcells_tissue, 0);
        assert_eq!(last.epi_healthy, 16 * 16);
    }
}
