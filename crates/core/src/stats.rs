//! Per-step aggregate statistics and time-series analysis.
//!
//! SIMCoV logs aggregate quantities every step for time-series analysis of
//! infection dynamics (§3.3). The correctness evaluation (paper Fig. 5 /
//! Table 2) compares peak values and their spread across trials between the
//! CPU and GPU implementations; the helpers for that analysis live here.

use crate::exact::ExactSum;
use std::ops::AddAssign;

/// Aggregate statistics for a single timestep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepStats {
    pub step: u64,
    /// Total virion mass.
    pub virions: f64,
    /// Total inflammatory-signal mass.
    pub chemokine: f64,
    /// Circulating T cells in the vascular pool.
    pub tcells_vasculature: u64,
    /// T cells resident in tissue.
    pub tcells_tissue: u64,
    pub epi_healthy: u64,
    pub epi_incubating: u64,
    pub epi_expressing: u64,
    pub epi_apoptotic: u64,
    pub epi_dead: u64,
    /// T cells that extravasated during this step (also the pool drain).
    pub extravasated: u64,
}

impl AddAssign for StepStats {
    /// Combine partial statistics from two ranks/devices (the reduction
    /// operator). `step` must agree.
    fn add_assign(&mut self, o: StepStats) {
        debug_assert!(self.step == o.step || self.step == 0 || o.step == 0);
        self.step = self.step.max(o.step);
        self.virions += o.virions;
        self.chemokine += o.chemokine;
        self.tcells_vasculature = self.tcells_vasculature.max(o.tcells_vasculature);
        self.tcells_tissue += o.tcells_tissue;
        self.epi_healthy += o.epi_healthy;
        self.epi_incubating += o.epi_incubating;
        self.epi_expressing += o.epi_expressing;
        self.epi_apoptotic += o.epi_apoptotic;
        self.epi_dead += o.epi_dead;
        self.extravasated += o.extravasated;
    }
}

impl StepStats {
    /// Integer fields exactly equal and float fields within relative
    /// tolerance `tol` (reduction association differs between executors).
    pub fn approx_eq(&self, o: &StepStats, tol: f64) -> bool {
        fn close(a: f64, b: f64, tol: f64) -> bool {
            (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
        }
        self.step == o.step
            && self.tcells_vasculature == o.tcells_vasculature
            && self.tcells_tissue == o.tcells_tissue
            && self.epi_healthy == o.epi_healthy
            && self.epi_incubating == o.epi_incubating
            && self.epi_expressing == o.epi_expressing
            && self.epi_apoptotic == o.epi_apoptotic
            && self.epi_dead == o.epi_dead
            && self.extravasated == o.extravasated
            && close(self.virions, o.virions, tol)
            && close(self.chemokine, o.chemokine, tol)
    }
}

/// The in-flight form of [`StepStats`] used during the statistics reduction:
/// float masses accumulate in [`ExactSum`] superaccumulators so the combined
/// total is *independent of partitioning and reduction order* — any rank
/// count, tree shape or post-recovery re-partition produces bit-identical
/// statistics. [`StatsPartial::finalize`] rounds to the `f64` fields of
/// [`StepStats`] once, after the reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsPartial {
    pub step: u64,
    pub virions: ExactSum,
    pub chemokine: ExactSum,
    pub tcells_vasculature: u64,
    pub tcells_tissue: u64,
    pub epi_healthy: u64,
    pub epi_incubating: u64,
    pub epi_expressing: u64,
    pub epi_apoptotic: u64,
    pub epi_dead: u64,
    pub extravasated: u64,
}

impl AddAssign for StatsPartial {
    /// Combine partial statistics from two ranks/devices (the reduction
    /// operator). Exactly associative and commutative.
    fn add_assign(&mut self, o: StatsPartial) {
        debug_assert!(self.step == o.step || self.step == 0 || o.step == 0);
        self.step = self.step.max(o.step);
        self.virions += o.virions;
        self.chemokine += o.chemokine;
        self.tcells_vasculature = self.tcells_vasculature.max(o.tcells_vasculature);
        self.tcells_tissue += o.tcells_tissue;
        self.epi_healthy += o.epi_healthy;
        self.epi_incubating += o.epi_incubating;
        self.epi_expressing += o.epi_expressing;
        self.epi_apoptotic += o.epi_apoptotic;
        self.epi_dead += o.epi_dead;
        self.extravasated += o.extravasated;
    }
}

impl StatsPartial {
    /// Accumulate one voxel's virion concentration exactly.
    #[inline]
    pub fn add_virions(&mut self, v: f32) {
        self.virions.add_f32(v);
    }

    /// Accumulate one voxel's chemokine concentration exactly.
    #[inline]
    pub fn add_chemokine(&mut self, c: f32) {
        self.chemokine.add_f32(c);
    }

    /// Round the exact totals into the reporting form. Deterministic for a
    /// given exact value, so the resulting [`StepStats`] carries the
    /// partition invariance through.
    pub fn finalize(&self) -> StepStats {
        StepStats {
            step: self.step,
            virions: self.virions.to_f64(),
            chemokine: self.chemokine.to_f64(),
            tcells_vasculature: self.tcells_vasculature,
            tcells_tissue: self.tcells_tissue,
            epi_healthy: self.epi_healthy,
            epi_incubating: self.epi_incubating,
            epi_expressing: self.epi_expressing,
            epi_apoptotic: self.epi_apoptotic,
            epi_dead: self.epi_dead,
            extravasated: self.extravasated,
        }
    }
}

/// A run's statistics trajectory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    pub steps: Vec<StepStats>,
}

/// Which statistic to extract from a [`StepStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Virions,
    Chemokine,
    TCellsTissue,
    TCellsVasculature,
    EpiHealthy,
    EpiIncubating,
    EpiExpressing,
    EpiApoptotic,
    EpiDead,
}

impl Metric {
    pub fn get(self, s: &StepStats) -> f64 {
        match self {
            Metric::Virions => s.virions,
            Metric::Chemokine => s.chemokine,
            Metric::TCellsTissue => s.tcells_tissue as f64,
            Metric::TCellsVasculature => s.tcells_vasculature as f64,
            Metric::EpiHealthy => s.epi_healthy as f64,
            Metric::EpiIncubating => s.epi_incubating as f64,
            Metric::EpiExpressing => s.epi_expressing as f64,
            Metric::EpiApoptotic => s.epi_apoptotic as f64,
            Metric::EpiDead => s.epi_dead as f64,
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            Metric::Virions => "virions",
            Metric::Chemokine => "chemokine",
            Metric::TCellsTissue => "tcells_tissue",
            Metric::TCellsVasculature => "tcells_vasculature",
            Metric::EpiHealthy => "epi_healthy",
            Metric::EpiIncubating => "epi_incubating",
            Metric::EpiExpressing => "epi_expressing",
            Metric::EpiApoptotic => "epi_apoptotic",
            Metric::EpiDead => "epi_dead",
        }
    }
}

impl TimeSeries {
    pub fn push(&mut self, s: StepStats) {
        self.steps.push(s);
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Peak value of a metric over the run (paper Table 2 compares peaks).
    pub fn peak(&self, m: Metric) -> f64 {
        self.steps.iter().map(|s| m.get(s)).fold(0.0, f64::max)
    }

    /// Value of a metric at each step.
    pub fn series(&self, m: Metric) -> Vec<f64> {
        self.steps.iter().map(|s| m.get(s)).collect()
    }
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Percent agreement between two values, as reported in Table 2:
/// `100 · (1 − |a−b| / max(a,b))`. Two zeros agree fully.
pub fn percent_agreement(a: f64, b: f64) -> f64 {
    let m = a.abs().max(b.abs());
    if m == 0.0 {
        return 100.0;
    }
    100.0 * (1.0 - (a - b).abs() / m)
}

/// Per-trial min/max envelope across several runs (the shaded band in
/// paper Fig. 5). Returns `(min, mean, max)` per step for the metric;
/// all runs must have equal length.
pub fn envelope(runs: &[TimeSeries], m: Metric) -> Vec<(f64, f64, f64)> {
    if runs.is_empty() {
        return vec![];
    }
    let len = runs[0].len();
    assert!(
        runs.iter().all(|r| r.len() == len),
        "all runs must have equal length"
    );
    (0..len)
        .map(|i| {
            let vals: Vec<f64> = runs.iter().map(|r| m.get(&r.steps[i])).collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (min, mean, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(step: u64, virions: f64, tissue: u64) -> StepStats {
        StepStats {
            step,
            virions,
            tcells_tissue: tissue,
            ..Default::default()
        }
    }

    #[test]
    fn add_assign_combines_partials() {
        let mut a = s(3, 10.0, 2);
        a.tcells_vasculature = 100;
        let mut b = s(3, 5.0, 1);
        b.tcells_vasculature = 100; // replicated global value: max, not sum
        a += b;
        assert_eq!(a.virions, 15.0);
        assert_eq!(a.tcells_tissue, 3);
        assert_eq!(a.tcells_vasculature, 100);
        assert_eq!(a.step, 3);
    }

    #[test]
    fn approx_eq_tolerates_float_noise_only() {
        let a = s(1, 100.0, 5);
        let mut b = s(1, 100.0 + 1e-9, 5);
        assert!(a.approx_eq(&b, 1e-10));
        b.tcells_tissue = 6;
        assert!(!a.approx_eq(&b, 1e-10));
        let c = s(1, 101.0, 5);
        assert!(!a.approx_eq(&c, 1e-10));
    }

    #[test]
    fn peak_and_series() {
        let mut ts = TimeSeries::default();
        for (i, v) in [1.0, 5.0, 3.0].iter().enumerate() {
            ts.push(s(i as u64, *v, i as u64));
        }
        assert_eq!(ts.peak(Metric::Virions), 5.0);
        assert_eq!(ts.peak(Metric::TCellsTissue), 2.0);
        assert_eq!(ts.series(Metric::Virions), vec![1.0, 5.0, 3.0]);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn mean_std_basic() {
        let (m, sd) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((sd - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn percent_agreement_examples() {
        assert_eq!(percent_agreement(0.0, 0.0), 100.0);
        assert!((percent_agreement(100.0, 99.0) - 99.0).abs() < 1e-9);
        assert!((percent_agreement(99.0, 100.0) - 99.0).abs() < 1e-9);
        assert_eq!(percent_agreement(1.0, 0.0), 0.0);
    }

    #[test]
    fn envelope_bands() {
        let mk = |vals: &[f64]| TimeSeries {
            steps: vals
                .iter()
                .enumerate()
                .map(|(i, &v)| s(i as u64, v, 0))
                .collect(),
        };
        let runs = vec![mk(&[1.0, 2.0]), mk(&[3.0, 0.0])];
        let env = envelope(&runs, Metric::Virions);
        assert_eq!(env.len(), 2);
        assert_eq!(env[0], (1.0, 2.0, 3.0));
        assert_eq!(env[1], (0.0, 1.0, 2.0));
    }

    #[test]
    #[should_panic]
    fn envelope_rejects_ragged_runs() {
        let a = TimeSeries {
            steps: vec![s(0, 1.0, 0)],
        };
        let b = TimeSeries { steps: vec![] };
        envelope(&[a, b], Metric::Virions);
    }
}
