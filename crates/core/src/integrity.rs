//! ABFT-style integrity auditing: seals and invariant audits that detect
//! silent data corruption in rank-resident state.
//!
//! Batch CRCs (in `pgas::mailbox`) cover data *in flight*; this module
//! covers data *at rest*. Two detectors, ordered by cost and coverage:
//!
//! 1. **Seal scrub** — a CRC-64 over the canonical world + vascular pool,
//!    taken at the end of every step ([`IntegrityMonitor::reseal`]) and
//!    verified at the start of the next ([`IntegrityMonitor::scrub`])
//!    *before* compute consumes the state. Any bit flip between supersteps
//!    is caught with detection latency of exactly one step boundary.
//! 2. **Invariant audit** — algorithm-based fault tolerance in the SIMCoV
//!    model's own terms, run every [`IntegrityMonitor::audit_period`] steps:
//!    virion/chemokine fields must be finite and non-negative, chemokine
//!    saturates at 1.0 (production clamps and diffusion is a convex
//!    relaxation, so the bound is invariant), epithelial state bytes stay in
//!    the enum's range, and the vascular pool's cohorts must sum exactly to
//!    its cached total. The audit is independent of the seal: it also
//!    catches *logic* corruption the CRC would faithfully reseal.
//!
//! Mass balance is deliberately **not** audited: SIMCoV's diffusion is a
//! relaxation toward the neighbor mean, not a conservative flux form, so
//! total virion mass legitimately changes every step.
//!
//! Violations are typed ([`IntegrityViolation`]); the driver maps them into
//! the tiered recovery ladder (rollback to the last *verified* checkpoint).

use crate::epithelial::EpiState;
use crate::exact::ExactSum;
use crate::tcell::VascularPool;
use crate::world::World;
use pgas::Crc64;

/// Default audit cadence (steps between invariant audits). Scrubbing
/// happens every step regardless; the audit is the expensive sweep.
pub const DEFAULT_AUDIT_PERIOD: u64 = 16;

/// A detected integrity violation in rank-resident state.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrityViolation {
    /// The state CRC no longer matches the seal taken last step.
    SealMismatch { expected: u64, got: u64 },
    /// A field value is NaN or infinite.
    NonFinite { field: &'static str, index: usize },
    /// A concentration went negative.
    Negative { field: &'static str, index: usize },
    /// Chemokine escaped its saturation bound of 1.0.
    AboveSaturation { index: usize, value: f32 },
    /// An epithelial state byte outside the enum's range.
    BadEpiState { index: usize, byte: u8 },
    /// The vascular pool's cohorts do not sum to its cached total.
    CohortSumMismatch { claimed: u64, total: u64 },
    /// The vascular pool's fractional carry is not finite.
    BadCarry,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityViolation::SealMismatch { expected, got } => write!(
                f,
                "state seal mismatch: expected {expected:#018x}, got {got:#018x}"
            ),
            IntegrityViolation::NonFinite { field, index } => {
                write!(f, "non-finite {field} at voxel {index}")
            }
            IntegrityViolation::Negative { field, index } => {
                write!(f, "negative {field} at voxel {index}")
            }
            IntegrityViolation::AboveSaturation { index, value } => {
                write!(f, "chemokine {value} above saturation at voxel {index}")
            }
            IntegrityViolation::BadEpiState { index, byte } => {
                write!(f, "invalid epithelial state byte {byte} at voxel {index}")
            }
            IntegrityViolation::CohortSumMismatch { claimed, total } => write!(
                f,
                "vascular cohorts sum to {claimed}, cached total says {total}"
            ),
            IntegrityViolation::BadCarry => write!(f, "non-finite vascular carry"),
        }
    }
}

impl std::error::Error for IntegrityViolation {}

/// CRC-64 over the complete resumable state (world + pool), bit-exact:
/// float payloads are digested as their raw bits.
pub fn crc_state(world: &World, pool: &VascularPool) -> u64 {
    let mut crc = Crc64::new();
    crc.write_u32(world.dims.x);
    crc.write_u32(world.dims.y);
    crc.write_u32(world.dims.z);
    crc.update(&world.epi.state);
    for &t in &world.epi.timer {
        crc.write_u32(t);
    }
    for t in &world.tcells {
        crc.write_u32(t.0);
    }
    for &v in &world.virions.data {
        crc.write_f32(v);
    }
    for &c in &world.chemokine.data {
        crc.write_f32(c);
    }
    let (cohorts, carry, total) = pool.snapshot();
    crc.write_f64(carry);
    crc.write_u64(total);
    crc.write_len(cohorts.len());
    for c in &cohorts {
        crc.write_u64(c.expiry_step);
        crc.write_u64(c.count);
    }
    crc.finish()
}

/// CRC-64 sealing a run snapshot: the step counter plus [`crc_state`].
/// Used as the per-generation seal in the checkpoint store.
pub fn crc_run(step: u64, world: &World, pool: &VascularPool) -> u64 {
    let mut crc = Crc64::new();
    crc.write_u64(step);
    crc.write_u64(crc_state(world, pool));
    crc.finish()
}

/// Model-level totals computed by a passing audit — a free by-product of
/// the sweep, handy for cross-checking against step statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuditReport {
    pub virions: f64,
    pub chemokine: f64,
    pub tcells_tissue: u64,
    pub circulating: u64,
}

/// Seal-and-audit state machine for one run's canonical state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntegrityMonitor {
    /// Steps between invariant audits; 0 disables auditing (scrubs still
    /// run whenever a seal is present).
    pub audit_period: u64,
    seal: Option<u64>,
    /// Seal verifications performed.
    pub scrubs_run: u64,
    /// Invariant audits performed.
    pub audits_run: u64,
    /// Violations detected (scrub + audit).
    pub violations: u64,
}

impl IntegrityMonitor {
    pub fn new(audit_period: u64) -> Self {
        IntegrityMonitor {
            audit_period,
            ..Default::default()
        }
    }

    /// The current seal, if one has been taken.
    pub fn seal(&self) -> Option<u64> {
        self.seal
    }

    /// Drop the seal (after a rollback replaces the state wholesale).
    pub fn clear_seal(&mut self) {
        self.seal = None;
    }

    /// Take a fresh seal over the state as it stands.
    pub fn reseal(&mut self, world: &World, pool: &VascularPool) {
        self.seal = Some(crc_state(world, pool));
    }

    /// Verify the state against the last seal. A no-op until the first
    /// [`reseal`](Self::reseal).
    pub fn scrub(&mut self, world: &World, pool: &VascularPool) -> Result<(), IntegrityViolation> {
        let Some(expected) = self.seal else {
            return Ok(());
        };
        self.scrubs_run += 1;
        let got = crc_state(world, pool);
        if got != expected {
            self.violations += 1;
            return Err(IntegrityViolation::SealMismatch { expected, got });
        }
        Ok(())
    }

    /// Should the invariant audit run at this step?
    pub fn audit_due(&self, step: u64) -> bool {
        self.audit_period > 0 && step.is_multiple_of(self.audit_period)
    }

    /// Sweep the state for model-invariant violations. Values are verified
    /// *before* they feed the exact accumulators, so a corrupt NaN is
    /// reported as a violation rather than tripping internal assertions.
    pub fn audit(
        &mut self,
        world: &World,
        pool: &VascularPool,
    ) -> Result<AuditReport, IntegrityViolation> {
        self.audits_run += 1;
        let mut virions = ExactSum::zero();
        let mut chemokine = ExactSum::zero();
        let mut tcells_tissue = 0u64;
        for i in 0..world.nvoxels() {
            let v = world.virions.get(i);
            if !v.is_finite() {
                self.violations += 1;
                return Err(IntegrityViolation::NonFinite {
                    field: "virions",
                    index: i,
                });
            }
            if v < 0.0 {
                self.violations += 1;
                return Err(IntegrityViolation::Negative {
                    field: "virions",
                    index: i,
                });
            }
            let c = world.chemokine.get(i);
            if !c.is_finite() {
                self.violations += 1;
                return Err(IntegrityViolation::NonFinite {
                    field: "chemokine",
                    index: i,
                });
            }
            if c < 0.0 {
                self.violations += 1;
                return Err(IntegrityViolation::Negative {
                    field: "chemokine",
                    index: i,
                });
            }
            if c > 1.0 {
                self.violations += 1;
                return Err(IntegrityViolation::AboveSaturation { index: i, value: c });
            }
            let b = world.epi.state[i];
            if b > EpiState::Dead as u8 {
                self.violations += 1;
                return Err(IntegrityViolation::BadEpiState { index: i, byte: b });
            }
            virions.add_f32(v);
            chemokine.add_f32(c);
            if world.tcells[i].occupied() {
                tcells_tissue += 1;
            }
        }
        let (cohorts, carry, total) = pool.snapshot();
        if !carry.is_finite() {
            self.violations += 1;
            return Err(IntegrityViolation::BadCarry);
        }
        let claimed = cohorts
            .iter()
            .try_fold(0u64, |acc, c| acc.checked_add(c.count))
            .ok_or(IntegrityViolation::CohortSumMismatch {
                claimed: u64::MAX,
                total,
            })
            .inspect_err(|_| self.violations += 1)?;
        if claimed != total {
            self.violations += 1;
            return Err(IntegrityViolation::CohortSumMismatch { claimed, total });
        }
        Ok(AuditReport {
            virions: virions.to_f64(),
            chemokine: chemokine.to_f64(),
            tcells_tissue,
            circulating: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;
    use crate::params::SimParams;
    use crate::serial::SerialSim;

    fn sim() -> SerialSim {
        let p = SimParams::test_config(GridDims::new2d(24, 24), 60, 3, 17);
        SerialSim::new(p)
    }

    #[test]
    fn scrub_passes_on_sealed_state_and_catches_any_flip() {
        let mut s = sim();
        for _ in 0..10 {
            s.advance_step();
        }
        let mut mon = IntegrityMonitor::new(DEFAULT_AUDIT_PERIOD);
        // No seal yet: scrub is vacuous.
        assert!(mon.scrub(&s.world, &s.pool).is_ok());
        assert_eq!(mon.scrubs_run, 0);
        mon.reseal(&s.world, &s.pool);
        assert!(mon.scrub(&s.world, &s.pool).is_ok());

        // A single bit flip anywhere in any field must break the seal.
        let v = s.world.virions.get(7);
        s.world.virions.set(7, f32::from_bits(v.to_bits() ^ 1));
        let err = mon.scrub(&s.world, &s.pool).unwrap_err();
        assert!(matches!(err, IntegrityViolation::SealMismatch { .. }));
        assert_eq!(mon.violations, 1);

        // Healing the flip restores the seal.
        s.world.virions.set(7, v);
        assert!(mon.scrub(&s.world, &s.pool).is_ok());
    }

    #[test]
    fn audit_never_false_positives_on_a_live_run() {
        let mut s = sim();
        let mut mon = IntegrityMonitor::new(1);
        for step in 0..60 {
            assert!(mon.audit_due(step));
            let rep = mon
                .audit(&s.world, &s.pool)
                .unwrap_or_else(|e| panic!("false positive at step {step}: {e}"));
            assert!(rep.virions >= 0.0 && rep.chemokine >= 0.0);
            s.advance_step();
        }
        assert_eq!(mon.audits_run, 60);
        assert_eq!(mon.violations, 0);
    }

    fn advanced() -> SerialSim {
        let mut s = sim();
        for _ in 0..5 {
            s.advance_step();
        }
        s
    }

    #[test]
    fn audit_catches_each_invariant_violation() {
        let mut mon = IntegrityMonitor::new(1);

        let mut s = advanced();
        s.world.virions.set(3, f32::NAN);
        assert!(matches!(
            mon.audit(&s.world, &s.pool).unwrap_err(),
            IntegrityViolation::NonFinite {
                field: "virions",
                index: 3
            }
        ));

        let mut s = advanced();
        s.world.virions.set(4, -1.0);
        assert!(matches!(
            mon.audit(&s.world, &s.pool).unwrap_err(),
            IntegrityViolation::Negative {
                field: "virions",
                index: 4
            }
        ));

        let mut s = advanced();
        s.world.chemokine.set(5, 2.5);
        assert!(matches!(
            mon.audit(&s.world, &s.pool).unwrap_err(),
            IntegrityViolation::AboveSaturation { index: 5, .. }
        ));

        let mut s = advanced();
        s.world.epi.state[6] = 99;
        assert!(matches!(
            mon.audit(&s.world, &s.pool).unwrap_err(),
            IntegrityViolation::BadEpiState { index: 6, byte: 99 }
        ));

        // A DRAM flip in the cached total (fields are crate-visible so the
        // test can model post-construction corruption).
        let mut s = advanced();
        s.pool.total ^= 1 << 7;
        assert!(matches!(
            mon.audit(&s.world, &s.pool).unwrap_err(),
            IntegrityViolation::CohortSumMismatch { .. }
        ));

        let mut s = advanced();
        s.pool.carry = f64::NAN;
        assert!(matches!(
            mon.audit(&s.world, &s.pool).unwrap_err(),
            IntegrityViolation::BadCarry
        ));

        assert_eq!(mon.violations, 6);
    }

    #[test]
    fn crc_run_distinguishes_step_and_state() {
        let s = sim();
        let a = crc_run(0, &s.world, &s.pool);
        let b = crc_run(1, &s.world, &s.pool);
        assert_ne!(a, b, "seal must bind the step counter");
        assert_eq!(a, crc_run(0, &s.world, &s.pool), "seal is deterministic");
    }

    #[test]
    fn audit_cadence() {
        let mon = IntegrityMonitor::new(16);
        assert!(mon.audit_due(0));
        assert!(!mon.audit_due(1));
        assert!(mon.audit_due(16));
        assert!(mon.audit_due(32));
        let off = IntegrityMonitor::new(0);
        assert!(!off.audit_due(0));
        assert!(!off.audit_due(16));
    }
}
