//! # simcov-core
//!
//! The SIMCoV model core: the single source of truth for the model *rules*
//! shared by every executor in this workspace (the serial reference, the
//! `simcov-cpu` active-list baseline and the `simcov-gpu` tiled multi-device
//! implementation).
//!
//! SIMCoV (Spatial Immune Model of Coronavirus, Moses et al. 2021) simulates
//! the spread of a viral infection through a 2D or 3D voxel grid of lung
//! epithelium together with the immune response: diffusing virion and
//! inflammatory-signal concentrations and mobile CD8 T-cell agents that bind
//! to and kill infected epithelial cells.
//!
//! ## Determinism
//!
//! Every stochastic draw in the model goes through the counter-based RNG in
//! [`rng`]: a hash of `(seed, stream, step, global voxel id / trial id,
//! draw#)`. This is the strong version of the determinism fix described in
//! §4.1 of the SIMCoV-GPU paper (staged T-cell movement): given a seed, the
//! trajectory is *bitwise identical* regardless of how the domain is
//! partitioned across ranks or devices. Cross-executor equality is enforced
//! by the integration tests at the workspace root.
//!
//! ## Timestep structure (paper Fig. 1C, with the §4.1 staging fix)
//!
//! 1. vascular T-cell pool update + extravasation trials ([`rules::extrav_succeeds`])
//! 2. T-cell stage: aging, bind intents, move intents with 64-bit bids
//! 3. conflict resolution: per-target `max (bid, source)` wins
//! 4. apply binds/moves
//! 5. epithelial FSM update (Poisson-drawn state periods)
//! 6. virion/chemokine production, Moore-stencil diffusion, decay
//! 7. statistics reduction

pub mod airways;
pub mod checkpoint;
pub mod config;
pub mod decomp;
pub mod diffusion;
pub mod epithelial;
pub mod exact;
pub mod extrav;
pub mod fields;
pub mod foi;
pub mod grid;
pub mod halo;
pub mod integrity;
pub mod json;
pub mod lanes;
pub mod params;
pub mod render;
pub mod rng;
pub mod rules;
pub mod serial;
pub mod soa;
pub mod stats;
pub mod tcell;
pub mod world;

pub use checkpoint::{CheckpointError, CheckpointStore, RunCheckpoint};
pub use epithelial::{EpiCells, EpiState};
pub use exact::ExactSum;
pub use fields::Field;
pub use grid::{Coord, GridDims};
pub use integrity::{
    crc_run, crc_state, AuditReport, IntegrityMonitor, IntegrityViolation, DEFAULT_AUDIT_PERIOD,
};
pub use lanes::{KernelMode, LANES};
pub use params::SimParams;
pub use rng::CounterRng;
pub use serial::SerialSim;
pub use soa::{StencilDeltas, VoxelSoA};
pub use stats::{StatsPartial, StepStats, TimeSeries};
pub use tcell::{TCellSlot, VascularPool};
pub use world::World;
