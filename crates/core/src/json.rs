//! A minimal hand-rolled JSON value tree, serializer and parser.
//!
//! The workspace is dependency-free, so structured artifacts (bench JSON,
//! sweep-server job specs and record streams) ride through this small tree
//! type instead of serde. Only what the workspace needs is implemented:
//! construction from Rust primitives, object/array composition, rendering
//! to a valid RFC 8259 document (pretty-printed, two-space indent), and a
//! strict parser for reading documents back. Non-finite floats serialize
//! as `null` — JSON has no encoding for them and a crash in a report
//! writer would lose the run.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers ride as f64 (the JSON number model); u64 counters in
    /// practice stay far below 2^53 so the conversion is exact.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Self {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    /// Parse an RFC 8259 document (the inverse of [`Json::render`]).
    ///
    /// Needed by the benchmark-regression gate, which reads back the
    /// committed baseline artifact. Numbers parse as f64 (the JSON number
    /// model); any trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Append a field to an object (panics on non-objects: builder misuse).
    pub fn push<K: Into<String>, V: Into<Json>>(&mut self, key: K, value: V) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Serialize to a pretty-printed document (two-space indent, `\n`
    /// separators, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render as a single line with no insignificant whitespace — the shape
    /// JSON-lines record streams want. No trailing newline.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            // Scalars render identically in both modes.
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        // Integral values print without a fraction.
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over the raw bytes. JSON structure is ASCII, so
/// byte-level scanning is safe; multi-byte UTF-8 only appears inside strings
/// and is passed through verbatim.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our own artifacts;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (1-4 bytes) verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(42u64).render(), "42\n");
        assert_eq!(Json::from(1.5).render(), "1.5\n");
        assert_eq!(Json::from("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn escapes_strings() {
        let s = Json::from("a\"b\\c\nd\te\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null\n");
        assert_eq!(Json::from(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn renders_nested_structures() {
        let mut doc = Json::obj([("name", Json::from("run"))]);
        doc.push(
            "points",
            Json::Arr(vec![Json::from(1u64), Json::from(2u64)]),
        );
        doc.push("empty", Json::Arr(vec![]));
        doc.push("nested", Json::obj([("ok", Json::from(true))]));
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"run\",\n  \"points\": [\n    1,\n    2\n  ],\n  \
             \"empty\": [],\n  \"nested\": {\n    \"ok\": true\n  }\n}\n"
        );
    }

    #[test]
    fn parse_round_trips_render() {
        let mut doc = Json::obj([("suite", Json::from("perf_gate"))]);
        doc.push("tolerance", 0.25);
        doc.push(
            "kernels",
            Json::Arr(vec![
                Json::obj([
                    ("name", Json::from("diffusion/stencil")),
                    ("median_ns", Json::from(1234u64)),
                ]),
                Json::obj([("name", Json::from("exact_sum")), ("median_ns", 9.5.into())]),
            ]),
        );
        doc.push("empty", Json::Arr(vec![]));
        doc.push("none", Json::Null);
        doc.push("ok", true);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accessors_walk_the_tree() {
        let doc =
            Json::parse(r#"{"kernels": [{"name": "a", "median_ns": 42}], "x": "y"}"#).unwrap();
        let kernels = doc.get("kernels").unwrap().as_arr().unwrap();
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(kernels[0].get("median_ns").unwrap().as_f64(), Some(42.0));
        assert_eq!(doc.get("x").unwrap().as_str(), Some("y"));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("x").unwrap().as_f64().is_none());
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        let doc = Json::parse(r#"["a\"b\\c\ndA", -1.5e3, 0.125, true, false, null]"#).unwrap();
        let items = doc.as_arr().unwrap();
        assert_eq!(items[0].as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(items[1].as_f64(), Some(-1500.0));
        assert_eq!(items[2].as_f64(), Some(0.125));
        assert_eq!(items[3], Json::Bool(true));
        assert_eq!(items[4], Json::Bool(false));
        assert_eq!(items[5], Json::Null);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("42 tail").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integral_floats_have_no_fraction() {
        assert_eq!(Json::from(3.0).render(), "3\n");
        assert_eq!(Json::from(0.25).render(), "0.25\n");
        // Big counters still within exact-f64 range keep full precision.
        assert_eq!(
            Json::from(9_007_199_254_740_992u64).render(),
            "9007199254740992\n"
        );
    }
}
