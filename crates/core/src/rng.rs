//! Counter-based deterministic random numbers.
//!
//! All SIMCoV stochasticity is produced by stateless hashing of
//! `(seed, stream, step, id, draw#)`. Unlike a sequential PRNG, the value of
//! any draw is independent of *which rank or device computes it* and of the
//! order in which voxels are processed — the property the SIMCoV-GPU paper
//! needed for its staged, deterministic T-cell movement (§4.1) and for the
//! one-wave bid tiebreak (§3.1). This lets two devices independently compute
//! identical tiebreak outcomes for a shared boundary voxel.
//!
//! The mixer is the 64-bit finalizer from SplitMix64 / MurmurHash3 applied to
//! a multi-word key folded with distinct odd constants; it passes the usual
//! per-bit avalanche smoke tests (see the tests below) and is far cheaper
//! than cryptographic counters, matching the paper's "large range of
//! integers" bid generation where genuine ties are negligibly unlikely.

/// Independent named stochastic streams. Using distinct streams for distinct
/// model decisions guarantees that, e.g., an infection draw can never be
/// correlated with a movement draw at the same `(step, voxel)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Stream {
    /// Which voxel an extravasation trial lands on.
    ExtravVoxel = 1,
    /// Whether the trial succeeds given the local chemokine level.
    ExtravProb = 2,
    /// Tissue-residence lifetime of a newly extravasated T cell.
    TCellLife = 3,
    /// T-cell action selection (bind-candidate choice, move direction).
    TCellAction = 4,
    /// The 64-bit movement/binding bid ("large range of integers", §3.1).
    TCellBid = 5,
    /// Healthy→incubating infection draw.
    Infection = 6,
    /// Poisson incubation period at infection time.
    IncubationPeriod = 7,
    /// Poisson expressing period at expression time.
    ExpressingPeriod = 8,
    /// Poisson apoptosis period at binding time.
    ApoptosisPeriod = 9,
    /// Binding probability draw.
    BindProb = 10,
    /// FOI placement (random / CT-lesion seeding).
    FoiPlacement = 11,
}

#[inline(always)]
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

/// A stateless counter RNG keyed on `(seed, stream, step, id)`. Multiple
/// draws under one key are obtained by bumping an internal draw counter, so
/// a `CounterRng` value is cheap and `Copy`-free but fully deterministic.
#[derive(Debug, Clone)]
pub struct CounterRng {
    base: u64,
    draw: u64,
}

impl CounterRng {
    /// Key a stream for a given simulation step and entity id (global voxel
    /// index, trial index, ...).
    #[inline]
    pub fn new(seed: u64, stream: Stream, step: u64, id: u64) -> Self {
        // Fold the key words through the mixer with distinct odd constants so
        // no two (stream, step, id) triples collide in practice.
        let mut h = splitmix(seed ^ 0x9e3779b97f4a7c15);
        h = splitmix(h ^ (stream as u64).wrapping_mul(0xd1b54a32d192ed03));
        h = splitmix(h ^ step.wrapping_mul(0x8cb92ba72f3d8dd7));
        h = splitmix(h ^ id.wrapping_mul(0xaef17502108ef2d9));
        CounterRng { base: h, draw: 0 }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let v = splitmix(self.base ^ self.draw.wrapping_mul(0x2545f4914f6cdd1d));
        self.draw = self.draw.wrapping_add(1);
        v
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via Lemire's widening-multiply method
    /// (without the rejection step: the bias for n ≪ 2⁶⁴ is < n/2⁶⁴ and
    /// irrelevant for simulation purposes, while keeping the draw count
    /// fixed — important for reproducibility across executors).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Poisson-distributed sample with the given mean, by Knuth's product
    /// method for small means and a clamped Gaussian approximation (via
    /// Box–Muller) for large means. SIMCoV draws epithelial state periods
    /// (means of order 10²–10³ steps) from Poisson distributions; the
    /// Gaussian tail behaviour is indistinguishable at those means. Always
    /// returns at least 1 so a state never lasts zero steps.
    pub fn poisson(&mut self, mean: f64) -> u32 {
        debug_assert!(mean >= 0.0);
        if mean <= 0.0 {
            return 1;
        }
        if mean < 30.0 {
            // Knuth: multiply uniforms until below e^-mean.
            let l = (-mean).exp();
            let mut k = 0u32;
            let mut p = 1.0f64;
            loop {
                p *= self.next_f64();
                if p <= l || k > 10_000 {
                    break;
                }
                k += 1;
            }
            k.max(1)
        } else {
            // Gaussian approximation: N(mean, mean), rounded, clamped at 1.
            let u1 = self.next_f64().max(f64::MIN_POSITIVE);
            let u2 = self.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = mean + mean.sqrt() * z;
            v.round().max(1.0) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = CounterRng::new(42, Stream::TCellBid, 7, 1234);
        let mut b = CounterRng::new(42, Stream::TCellBid, 7, 1234);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = CounterRng::new(42, Stream::TCellBid, 7, 1234);
        let mut b = CounterRng::new(42, Stream::TCellAction, 7, 1234);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_ids_and_steps_differ() {
        let mut a = CounterRng::new(42, Stream::Infection, 7, 1);
        let mut b = CounterRng::new(42, Stream::Infection, 7, 2);
        let mut c = CounterRng::new(42, Stream::Infection, 8, 1);
        let x = a.next_u64();
        assert_ne!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = CounterRng::new(1, Stream::ExtravProb, 0, 0);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_in_range_and_roughly_uniform() {
        let mut r = CounterRng::new(3, Stream::ExtravVoxel, 0, 0);
        let n = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            let v = r.below(n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Expected 1000 ± a few sigma.
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn poisson_mean_small() {
        let mut r = CounterRng::new(5, Stream::IncubationPeriod, 0, 0);
        let mean = 8.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.poisson(mean) as u64).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - mean).abs() < 0.2, "empirical mean {emp}");
    }

    #[test]
    fn poisson_mean_large() {
        let mut r = CounterRng::new(5, Stream::ExpressingPeriod, 0, 0);
        let mean = 900.0;
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| r.poisson(mean) as u64).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - mean).abs() < 5.0, "empirical mean {emp}");
    }

    #[test]
    fn poisson_never_zero() {
        let mut r = CounterRng::new(5, Stream::ApoptosisPeriod, 0, 0);
        for _ in 0..1000 {
            assert!(r.poisson(0.5) >= 1);
            assert!(r.poisson(100.0) >= 1);
        }
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one bit of the id should flip ~half the output bits.
        let mut total = 0u32;
        let samples = 256;
        for i in 0..samples {
            let a = CounterRng::new(9, Stream::TCellBid, 3, i).next_u64();
            let b = CounterRng::new(9, Stream::TCellBid, 3, i ^ 1).next_u64();
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = CounterRng::new(11, Stream::BindProb, 0, 0);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0 + 1e-9));
        }
    }
}
