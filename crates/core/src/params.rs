//! Model parameters with the published SIMCoV SARS-CoV-2 defaults.
//!
//! The defaults follow the "default COVID-19 parameters from Moses et
//! al. \[25\]" that the paper's evaluation uses. One simulation timestep is one
//! minute of simulated time (33,120 steps ≈ 23 days, §4.1); one voxel is
//! 5 µm³. Rates are per-voxel/per-step and therefore independent of grid
//! size, except the T-cell generation rate, which is a whole-lung quantity —
//! [`SimParams::scaled_to`] rescales it by grid area when running the paper's
//! scenarios on reduced grids.

use crate::grid::GridDims;

/// Steps per simulated day (1-minute timesteps).
pub const STEPS_PER_DAY: u64 = 1440;

/// Full model parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Grid dimensions in voxels.
    pub dims: GridDims,
    /// Number of timesteps to run.
    pub steps: u64,
    /// Master seed; every stochastic stream is derived from it.
    pub seed: u64,

    // --- infection dynamics ---
    /// Probability per virion per step that a healthy cell becomes infected
    /// (`p = min(1, infectivity * virions)`).
    pub infectivity: f64,
    /// Virions produced per producing epithelial cell per step.
    pub virion_production: f32,
    /// Fraction of virions cleared per step.
    pub virion_clearance: f32,
    /// Virion diffusion coefficient (fraction of the neighbor-mean gap moved
    /// per step; `0 ≤ D ≤ 1`).
    pub virion_diffusion: f32,
    /// Virion concentrations below this are flushed to zero to bound the
    /// active region.
    pub min_virions: f32,

    // --- inflammatory signal (chemokine) ---
    /// Chemokine produced per expressing/apoptotic cell per step (the
    /// concentration is capped at 1).
    pub chemokine_production: f32,
    /// Fraction of chemokine decaying per step.
    pub chemokine_decay: f32,
    /// Chemokine diffusion coefficient.
    pub chemokine_diffusion: f32,
    /// Chemokine below this is flushed to zero; also the extravasation
    /// detection threshold.
    pub min_chemokine: f32,

    // --- epithelial state periods (means of per-cell Poisson draws) ---
    /// Mean steps from infection to virion expression (8 h).
    pub incubation_period: f64,
    /// Mean steps a cell expresses virions before dying (15 h).
    pub expressing_period: f64,
    /// Mean steps from T-cell-induced apoptosis to death (3 h).
    pub apoptosis_period: f64,

    // --- T cells ---
    /// New T cells entering the vasculature per step once generation starts.
    /// This is a whole-tissue rate; see [`SimParams::scaled_to`].
    pub tcell_generation_rate: f64,
    /// Delay before T-cell generation begins (7 days).
    pub tcell_initial_delay: u64,
    /// Mean steps a T cell survives in the vasculature (4 days).
    pub tcell_vascular_period: f64,
    /// Mean steps a T cell survives in tissue (1 day).
    pub tcell_tissue_period: f64,
    /// Steps a T cell stays bound to an epithelial cell it is killing.
    pub tcell_binding_period: u32,
    /// Probability a T cell binds an expressing neighbor it has selected.
    pub max_binding_prob: f64,

    // --- initial conditions ---
    /// Initial virion load placed at each focus of infection.
    pub initial_infection: f32,
    /// Number of foci of infection (FOI). Placement is controlled by the
    /// seeding strategy in [`crate::foi`].
    pub num_foi: u32,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            dims: GridDims::new2d(128, 128),
            steps: 1000,
            seed: 1,

            infectivity: 0.001,
            virion_production: 1.1,
            virion_clearance: 0.004,
            virion_diffusion: 0.15,
            min_virions: 1e-10,

            chemokine_production: 1.0,
            chemokine_decay: 0.01,
            chemokine_diffusion: 1.0,
            min_chemokine: 1e-6,

            incubation_period: 480.0,
            expressing_period: 900.0,
            apoptosis_period: 180.0,

            tcell_generation_rate: 105_000.0,
            tcell_initial_delay: 7 * STEPS_PER_DAY,
            tcell_vascular_period: 4.0 * STEPS_PER_DAY as f64,
            tcell_tissue_period: STEPS_PER_DAY as f64,
            tcell_binding_period: 10,
            max_binding_prob: 1.0,

            initial_infection: 1000.0,
            num_foi: 1,
        }
    }
}

/// The grid the whole-lung default T-cell generation rate refers to: the
/// paper's 10,000 × 10,000 2D slice.
pub const REFERENCE_DIMS: GridDims = GridDims::new2d(10_000, 10_000);

impl SimParams {
    /// Paper-default parameters rescaled to a reduced grid and a
    /// time-compressed run, preserving the *dimensionless* disease dynamics
    /// (DESIGN.md's scale-similarity argument):
    ///
    /// With linear scale `s = 33,120 / steps` (one scaled step represents
    /// `s` paper steps), durations divide by `s`, per-step rates (virion
    /// production, clearance, signal decay, infectivity) multiply by `s`,
    /// and diffusion coefficients *divide* by `s`. This keeps both the
    /// diffusion length `√(2DT)` and the reaction–diffusion (Fisher) front
    /// speed `∝ √(D·rate)` a fixed fraction of the grid per run, so the
    /// active-region trajectory — which drives all the performance
    /// experiments — matches the paper's at every `t/T`.
    ///
    /// The whole-tissue T-cell generation rate additionally rescales by the
    /// voxel-count ratio to the paper's 10,000² reference slice.
    pub fn scaled_to(dims: GridDims, steps: u64, num_foi: u32, seed: u64) -> Self {
        let mut p = SimParams {
            dims,
            steps,
            num_foi,
            seed,
            ..SimParams::default()
        };
        let area_ratio = dims.nvoxels() as f64 / REFERENCE_DIMS.nvoxels() as f64;
        let step_ratio = steps as f64 / 33_120.0; // < 1 for compressed runs
        let s = 1.0 / step_ratio;

        // Whole-tissue rate: per-voxel density, then per-step compression.
        p.tcell_generation_rate = (p.tcell_generation_rate * area_ratio * s).max(1.0);

        // Durations compress.
        p.tcell_initial_delay = ((p.tcell_initial_delay as f64) * step_ratio).round() as u64;
        p.tcell_vascular_period = (p.tcell_vascular_period * step_ratio).max(10.0);
        p.tcell_tissue_period = (p.tcell_tissue_period * step_ratio).max(10.0);
        p.incubation_period = (p.incubation_period * step_ratio).max(2.0);
        p.expressing_period = (p.expressing_period * step_ratio).max(2.0);
        p.apoptosis_period = (p.apoptosis_period * step_ratio).max(2.0);

        // Per-step rates scale up (capped inside [0,1] where they are
        // probabilities/fractions)...
        p.virion_production = (p.virion_production as f64 * s) as f32;
        p.chemokine_production = (p.chemokine_production as f64 * s) as f32;
        p.virion_clearance = ((p.virion_clearance as f64 * s).min(0.9)) as f32;
        p.chemokine_decay = ((p.chemokine_decay as f64 * s).min(0.9)) as f32;
        p.infectivity *= s;

        // ...and diffusion coefficients scale down, preserving front speed.
        p.virion_diffusion = ((p.virion_diffusion as f64 * step_ratio).max(1e-6)) as f32;
        p.chemokine_diffusion = ((p.chemokine_diffusion as f64 * step_ratio).max(1e-6)) as f32;
        p
    }

    /// A small, fast configuration for unit/integration tests: dense enough
    /// dynamics that every code path (infection, expression, T-cell entry,
    /// binding, death) is exercised within `steps`. Unlike
    /// [`SimParams::scaled_to`] this does not aim for paper-similar
    /// trajectories — just full code-path coverage in few steps.
    pub fn test_config(dims: GridDims, steps: u64, num_foi: u32, seed: u64) -> Self {
        let mut p = SimParams {
            dims,
            steps,
            num_foi,
            seed,
            ..SimParams::default()
        };
        p.infectivity = 0.002;
        p.tcell_initial_delay = steps / 10;
        p.tcell_generation_rate = (dims.nvoxels() as f64 / 200.0).max(2.0);
        p.incubation_period = (steps as f64 / 20.0).max(2.0);
        p.expressing_period = (steps as f64 / 10.0).max(2.0);
        p.apoptosis_period = (steps as f64 / 20.0).max(2.0);
        p.tcell_tissue_period = (steps as f64 / 4.0).max(4.0);
        p.tcell_vascular_period = (steps as f64 / 2.0).max(4.0);
        p
    }

    /// Virion diffusion/clearance/flush constants bundled for kernel call
    /// sites (see [`crate::lanes`]).
    #[inline]
    pub fn virion_coeffs(&self) -> crate::diffusion::DiffuseCoeffs {
        crate::diffusion::DiffuseCoeffs {
            d: self.virion_diffusion,
            decay: self.virion_clearance,
            min: self.min_virions,
        }
    }

    /// Chemokine diffusion/decay/flush constants bundled for kernel call
    /// sites.
    #[inline]
    pub fn chemokine_coeffs(&self) -> crate::diffusion::DiffuseCoeffs {
        crate::diffusion::DiffuseCoeffs {
            d: self.chemokine_diffusion,
            decay: self.chemokine_decay,
            min: self.min_chemokine,
        }
    }

    /// Validate parameter ranges; returns a human-readable description of the
    /// first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.dims.nvoxels() == 0 {
            return Err("grid has zero voxels".into());
        }
        for (name, v) in [
            ("virion_diffusion", self.virion_diffusion),
            ("chemokine_diffusion", self.chemokine_diffusion),
            ("virion_clearance", self.virion_clearance),
            ("chemokine_decay", self.chemokine_decay),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} outside [0, 1]"));
            }
        }
        if !(0.0..=1.0).contains(&self.max_binding_prob) {
            return Err(format!(
                "max_binding_prob = {} outside [0, 1]",
                self.max_binding_prob
            ));
        }
        if self.infectivity < 0.0 {
            return Err(format!("infectivity = {} negative", self.infectivity));
        }
        for (name, v) in [
            ("incubation_period", self.incubation_period),
            ("expressing_period", self.expressing_period),
            ("apoptosis_period", self.apoptosis_period),
            ("tcell_vascular_period", self.tcell_vascular_period),
            ("tcell_tissue_period", self.tcell_tissue_period),
        ] {
            if v < 1.0 {
                return Err(format!("{name} = {v} below one step"));
            }
        }
        if self.num_foi as usize > self.dims.nvoxels() {
            return Err(format!(
                "num_foi = {} exceeds voxel count {}",
                self.num_foi,
                self.dims.nvoxels()
            ));
        }
        if self.tcell_binding_period == 0 {
            return Err("tcell_binding_period must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimParams::default().validate().unwrap();
    }

    #[test]
    fn scaled_config_validates_and_scales_generation() {
        let p = SimParams::scaled_to(GridDims::new2d(312, 312), 1035, 16, 7);
        p.validate().unwrap();
        // Area ratio (312/10000)² ≈ 1/1027, time compression s = 32:
        // 105000 / 1027 × 32 ≈ 3270 T cells per scaled step.
        assert!(
            p.tcell_generation_rate > 2000.0 && p.tcell_generation_rate < 5000.0,
            "rate {}",
            p.tcell_generation_rate
        );
        assert!(p.tcell_initial_delay < 1035);
        // Time compression: rates up, durations and diffusion down.
        let d = SimParams::default();
        assert!(p.virion_production > d.virion_production);
        assert!(p.virion_clearance > d.virion_clearance);
        assert!(p.virion_diffusion < d.virion_diffusion);
        assert!(p.incubation_period < d.incubation_period);
        assert!(p.infectivity > d.infectivity);
    }

    #[test]
    fn scaled_preserves_dimensionless_front_numbers() {
        // √(2DT)/L and the Fisher-speed proxy √(D·rate)·T/L must be
        // scale-invariant (DESIGN.md) — compare two different scales.
        let num = |p: &SimParams| {
            let d = p.virion_diffusion as f64;
            let t = p.steps as f64;
            let l = p.dims.x as f64;
            let rate = 1.0 / p.incubation_period;
            ((2.0 * d * t).sqrt() / l, (d * rate).sqrt() * t / l)
        };
        let a = num(&SimParams::scaled_to(
            GridDims::new2d(312, 312),
            1035,
            16,
            1,
        ));
        let b = num(&SimParams::scaled_to(GridDims::new2d(156, 156), 518, 16, 1));
        assert!((a.0 - b.0).abs() / a.0 < 0.05, "{a:?} vs {b:?}");
        assert!((a.1 - b.1).abs() / a.1 < 0.05, "{a:?} vs {b:?}");
    }

    #[test]
    fn test_config_validates() {
        let p = SimParams::test_config(GridDims::new2d(32, 32), 200, 2, 3);
        p.validate().unwrap();
        assert!(p.tcell_initial_delay <= 20);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let p = SimParams {
            virion_diffusion: 1.5,
            ..SimParams::default()
        };
        assert!(p.validate().is_err());

        let p = SimParams {
            num_foi: u32::MAX,
            ..SimParams::default()
        };
        assert!(p.validate().is_err());

        let p = SimParams {
            tcell_binding_period: 0,
            ..SimParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let p = SimParams::default();
        let s = serde_json_like(&p);
        assert!(s.contains("infectivity"));
    }

    // serde_json is not a dependency; smoke-test Serialize via the debug
    // representation of the serde data model using a tiny in-house writer.
    fn serde_json_like(p: &SimParams) -> String {
        format!("{p:?}")
    }
}
