//! Durable on-disk checkpoint persistence for crash restart.
//!
//! The file layout is a small header plus the version-2 run blob wrapped in
//! the hardened `pgas::mailbox::frame` codec:
//!
//! ```text
//! [file magic: 8][file version: u32 LE][frame(encode_run blob)]
//! ```
//!
//! The frame trailer CRC covers the whole blob, so a torn write, a
//! truncated copy or any at-rest bit flip is detected before a single byte
//! of simulation state is parsed; the inner blob then re-validates
//! structure, parameter fingerprint and model invariants. Writes are
//! atomic *and durable*: the file is staged under a `.tmp` sibling name,
//! fsynced, renamed into place, and the parent directory is fsynced — so a
//! crash mid-persist leaves the previous checkpoint intact, and a power
//! loss right after `persist_checkpoint` returns cannot lose the rename or
//! leave a rolled-back, partially-written stage as the live checkpoint.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use pgas::mailbox::frame;
use simcov_core::checkpoint::{encode_run, restore_run, RunCheckpoint};
use simcov_core::params::SimParams;

use crate::error::SimError;

const FILE_MAGIC: &[u8; 8] = b"SIMCOVDF";
const FILE_VERSION: u32 = 1;

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `cp` durably to `path` (atomic: staged to a `.tmp` sibling, then
/// renamed over the destination).
pub fn persist_checkpoint(
    path: &Path,
    params: &SimParams,
    cp: &RunCheckpoint,
) -> Result<(), SimError> {
    let blob = encode_run(params, cp);
    let framed = frame::encode(1, &blob);
    let mut out = Vec::with_capacity(FILE_MAGIC.len() + 4 + framed.len());
    out.extend_from_slice(FILE_MAGIC);
    out.extend_from_slice(&FILE_VERSION.to_le_bytes());
    out.extend_from_slice(&framed);
    let tmp = tmp_sibling(path);
    // Stage through an explicit handle and fsync it before the rename:
    // `fs::write` alone leaves the data in the page cache, so a crash after
    // the rename could surface a truncated file under the *final* name —
    // exactly the torn state the staging protocol exists to prevent.
    {
        let mut f = File::create(&tmp)
            .map_err(|e| SimError::Persist(format!("create {}: {e}", tmp.display())))?;
        f.write_all(&out)
            .map_err(|e| SimError::Persist(format!("write {}: {e}", tmp.display())))?;
        f.sync_all()
            .map_err(|e| SimError::Persist(format!("fsync {}: {e}", tmp.display())))?;
    }
    fs::rename(&tmp, path)
        .map_err(|e| SimError::Persist(format!("rename to {}: {e}", path.display())))?;
    // The rename itself lives in the directory entry: fsync the parent so
    // the new name survives power loss too. Non-fatal where the platform
    // refuses directory handles — the data itself is already durable.
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Remove orphaned `.tmp` stage siblings of `path` left behind by a crash
/// mid-persist. Stage files are never sealed generations — they are either
/// fully renamed into place or garbage — so sweeping them on `--resume` is
/// always safe. Returns how many were removed.
pub fn sweep_stale_stages(path: &Path) -> u64 {
    let tmp = tmp_sibling(path);
    match fs::remove_file(&tmp) {
        Ok(()) => 1,
        Err(_) => 0,
    }
}

/// Read a checkpoint persisted by [`persist_checkpoint`], verifying the
/// frame CRC and the blob's own validation before returning it.
pub fn load_checkpoint(path: &Path, params: &SimParams) -> Result<RunCheckpoint, SimError> {
    let bytes =
        fs::read(path).map_err(|e| SimError::Persist(format!("read {}: {e}", path.display())))?;
    if bytes.len() < FILE_MAGIC.len() + 4 || &bytes[..FILE_MAGIC.len()] != FILE_MAGIC {
        return Err(SimError::Persist(format!(
            "{}: not a SIMCoV durable checkpoint",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FILE_VERSION {
        return Err(SimError::Persist(format!(
            "{}: unsupported durable checkpoint file version {version}",
            path.display()
        )));
    }
    let (count, payload) = frame::decode(&bytes[12..])
        .map_err(|e| SimError::Persist(format!("{}: {e}", path.display())))?;
    if count != 1 {
        return Err(SimError::Persist(format!(
            "{}: expected one checkpoint per file, found {count}",
            path.display()
        )));
    }
    restore_run(params, payload).map_err(SimError::Checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::grid::GridDims;
    use simcov_core::serial::SerialSim;

    fn checkpointed_sim() -> (SimParams, RunCheckpoint) {
        let p = SimParams::test_config(GridDims::new2d(24, 24), 60, 3, 29);
        let mut s = SerialSim::new(p.clone());
        for _ in 0..25 {
            s.advance_step();
        }
        let cp = RunCheckpoint {
            step: s.step,
            world: s.world.clone(),
            pool: s.pool.clone(),
            history: s.history.clone(),
        };
        (p, cp)
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("simcov_durable_{tag}_{}.ck", std::process::id()))
    }

    #[test]
    fn roundtrips_and_stages_atomically() {
        let (params, cp) = checkpointed_sim();
        let path = tmp_path("roundtrip");
        persist_checkpoint(&path, &params, &cp).unwrap();
        assert!(
            !tmp_sibling(&path).exists(),
            "stage file must be renamed away"
        );
        let back = load_checkpoint(&path, &params).unwrap();
        assert_eq!(back, cp, "durable roundtrip is bitwise");
        // Persisting again overwrites atomically.
        persist_checkpoint(&path, &params, &cp).unwrap();
        assert_eq!(load_checkpoint(&path, &params).unwrap(), cp);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn detects_damage_and_rejects_foreign_files() {
        let (params, cp) = checkpointed_sim();
        let path = tmp_path("damage");
        persist_checkpoint(&path, &params, &cp).unwrap();
        let clean = fs::read(&path).unwrap();

        // Any single bit flip in the framed region must be caught (sampled
        // stride keeps the test fast; the frame tests cover every bit).
        for bit in (0..clean.len() * 8).step_by(997) {
            let mut dam = clean.clone();
            dam[bit / 8] ^= 1 << (bit % 8);
            fs::write(&path, &dam).unwrap();
            assert!(
                load_checkpoint(&path, &params).is_err(),
                "bit flip at {bit} loaded successfully"
            );
        }

        // Truncation models a torn write that somehow got renamed.
        fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert!(load_checkpoint(&path, &params).is_err());

        // A wrong parameter set is refused by the inner fingerprint.
        fs::write(&path, &clean).unwrap();
        let mut other = params.clone();
        other.infectivity *= 2.0;
        assert!(matches!(
            load_checkpoint(&path, &other),
            Err(SimError::Checkpoint(
                simcov_core::checkpoint::CheckpointError::FingerprintMismatch
            ))
        ));

        // Not a checkpoint file at all.
        fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(matches!(
            load_checkpoint(&path, &params),
            Err(SimError::Persist(_))
        ));
        let _ = fs::remove_file(&path);
    }

    /// A crash between stage-write and rename leaves a truncated `.tmp`
    /// sibling. The restore chain must never accept it in place of the
    /// sealed checkpoint, and the resume-time sweep must clear it.
    #[test]
    fn truncated_stage_is_rejected_and_swept() {
        let (params, cp) = checkpointed_sim();
        let path = tmp_path("stale_stage");
        persist_checkpoint(&path, &params, &cp).unwrap();
        let clean = fs::read(&path).unwrap();

        // Model the crash: a half-written stage file next to a good seal.
        let stage = tmp_sibling(&path);
        fs::write(&stage, &clean[..clean.len() / 3]).unwrap();
        assert!(
            load_checkpoint(&stage, &params).is_err(),
            "truncated stage must never load"
        );
        // The sealed checkpoint is untouched by the orphan.
        assert_eq!(load_checkpoint(&path, &params).unwrap(), cp);

        assert_eq!(sweep_stale_stages(&path), 1);
        assert!(!stage.exists(), "sweep removes the orphaned stage");
        assert_eq!(sweep_stale_stages(&path), 0, "second sweep finds nothing");
        // The live checkpoint survives the sweep.
        assert_eq!(load_checkpoint(&path, &params).unwrap(), cp);
        let _ = fs::remove_file(&path);
    }
}
