//! Control-plane events: everything the outside world can tell the pure
//! driver core.
//!
//! An [`Event`] is plain data — no handles, no clocks, no file descriptors.
//! The effect shell observes the impure world (a superstep failed, a scrub
//! mismatched, the checkpoint store answered a rollback query) and reduces
//! each observation to one of these values before feeding it to
//! [`DriverState::apply`](crate::state::DriverState::apply). Because events
//! carry every input a control decision needs, the recorded event log of a
//! run replays deterministically with zero filesystem or executor access.

use pgas::fault::{IntegrityDetector, IntegrityRecord, SuperstepError};
use simcov_core::integrity::IntegrityViolation;

/// Outcome of the step-prologue seal scrub (and, when due, the invariant
/// audit) over the assembled canonical state.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubVerdict {
    /// The violation the detector surfaced.
    pub violation: IntegrityViolation,
    /// Which detector fired ([`IntegrityDetector::SealScrub`] or
    /// [`IntegrityDetector::InvariantAudit`]).
    pub detector: IntegrityDetector,
}

/// One observation fed to the pure driver core.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `advance_step` was entered: the retry counter rearms.
    AdvanceRequested,
    /// The step-prologue scrub/audit ran over the canonical state.
    /// `verdict: None` means the state verified clean.
    Scrubbed { verdict: Option<ScrubVerdict> },
    /// An in-memory checkpoint generation was sealed at `step`.
    CheckpointSaved { step: u64 },
    /// `compute_step(step)` completed; the trajectory advances to `step+1`.
    StepComputed { step: u64 },
    /// `compute_step` failed (fail-stop or unhealed in-flight corruption).
    ComputeFailed { error: SuperstepError },
    /// In-barrier retransmit heal records drained from the BSP layer after
    /// computing `step` (raw — the core stamps their step fields).
    BarrierHeals {
        step: u64,
        records: Vec<IntegrityRecord>,
    },
    /// One scheduled silent state corruption was applied to unit-resident
    /// state after computing (and resealing) `step`. The core remembers it
    /// so a later detection is attributed to its injection step.
    CorruptionApplied { step: u64, superstep: u64 },
    /// The checkpoint store answered a
    /// [`Effect::FetchRollbackTarget`](crate::state::Effect::FetchRollbackTarget)
    /// query: the newest (verified) generation's step, and how many corrupt
    /// generations were quarantined finding it.
    RollbackTargetFetched { step: Option<u64>, quarantined: u64 },
    /// The embedder restored a whole-run checkpoint
    /// ([`Simulation::restore`](crate::Simulation::restore)): a new
    /// timeline starts at `step` and nothing from the old one — retries,
    /// sealed generations, outstanding corruption attributions — survives.
    ExternalRestore { step: u64 },
}
