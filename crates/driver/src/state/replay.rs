//! Deterministic replay of a recorded control-plane event log.
//!
//! Folding the log through [`DriverState::apply`] reproduces the live
//! run's state trajectory, effect sequence, and recovery/integrity record
//! streams exactly — with zero filesystem, checkpoint-store, or executor
//! access. The `replay_check` binary and the cascade property suite are
//! built on this.

use super::{DriverState, Effect, Event, StopCause};

/// The result of folding an event log through the pure core.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// State after each event, in order (`trajectory.len() == events.len()`).
    pub trajectory: Vec<DriverState>,
    /// The state after the final event (initial state for an empty log).
    pub final_state: DriverState,
    /// Every effect the core requested, in execution order.
    pub effects: Vec<Effect>,
    /// The halt cause, if the core stopped the run.
    pub halt: Option<StopCause>,
}

/// Fold `events` through the pure transition function from `initial`.
pub fn replay(initial: DriverState, events: &[Event]) -> Replay {
    let mut state = initial;
    let mut trajectory = Vec::with_capacity(events.len());
    let mut all_effects = Vec::new();
    for ev in events {
        let (next, effects) = state.apply(ev.clone());
        all_effects.extend(effects);
        trajectory.push(next.clone());
        state = next;
    }
    let halt = state.halted.clone();
    Replay {
        trajectory,
        final_state: state,
        effects: all_effects,
        halt,
    }
}
