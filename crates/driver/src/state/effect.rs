//! Control-plane effects: everything the pure driver core can ask the
//! effect shell to do.
//!
//! A transition returns effects instead of performing them; the shell
//! executes them in order. Every effect is plain data, so a replayed event
//! log produces the exact effect sequence of the live run without touching
//! the checkpoint store, the executors, or the disk.

use pgas::fault::{IntegrityRecord, RecoveryRecord, SuperstepError};
use simcov_core::integrity::IntegrityViolation;

/// Why the pure core halted the run. The shell maps each cause onto the
/// matching [`SimError`](crate::SimError) variant.
#[derive(Debug, Clone, PartialEq)]
pub enum StopCause {
    /// A superstep failed with no recovery manager engaged, or nothing
    /// (trustworthy) to roll back to.
    Unrecoverable(SuperstepError),
    /// Consecutive failures at one step exhausted the retry budget.
    RetriesExhausted { last: SuperstepError, attempts: u32 },
    /// Detected state corruption with no recovery engaged, the retry budget
    /// spent, or every checkpoint generation quarantined.
    Integrity {
        step: u64,
        violation: IntegrityViolation,
    },
}

/// One action the shell performs on the pure core's behalf.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Ask the checkpoint store for a rollback target: the newest
    /// generation, or — when `verified_only` — the newest whose CRC seal
    /// still verifies (quarantining corrupt ones). The shell stages the
    /// chosen checkpoint and answers with
    /// [`Event::RollbackTargetFetched`](crate::state::Event::RollbackTargetFetched).
    FetchRollbackTarget { verified_only: bool },
    /// Restore the staged rollback checkpoint: retire live work counters,
    /// rebuild the unit collection over `survivors` units, swap in the
    /// checkpointed pool/history/step, and reseal.
    Rollback { survivors: usize },
    /// Append one completed recovery to the recovery log and the pending
    /// metrics stream.
    EmitRecovery(RecoveryRecord),
    /// Append one integrity event to the integrity log and the pending
    /// metrics stream.
    EmitIntegrity(IntegrityRecord),
    /// Stop the run: the shell surfaces the matching typed error.
    Halt(StopCause),
}
