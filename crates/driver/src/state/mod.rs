//! The pure driver control plane: an explicit [`DriverState`] advanced by a
//! total transition function `(DriverState, Event) -> (DriverState,
//! Vec<Effect>)`.
//!
//! Every control decision the driver makes — which rung of the recovery
//! ladder to take (in-barrier retransmit → checkpoint rollback → corrupt-
//! generation quarantine → fail-stop), when a checkpoint is due, how many
//! survivors to re-partition across, what `RecoveryRecord`s and
//! `IntegrityRecord`s a failure produces — is computed here, over plain
//! data, with no I/O, clocks, or executor access. The effect shell (the
//! blanket `impl Simulation` in [`crate::simulation`]) observes the impure
//! world, reduces each observation to an [`Event`], applies it, and
//! executes the returned [`Effect`]s in order.
//!
//! The split buys two things the interleaved version could not offer:
//!
//! - **Deterministic replay**: the event log of a run (including every
//!   rollback-target answer from the checkpoint store) replays through
//!   [`replay::replay`] to the bit-identical `DriverState` trajectory and
//!   record sequence, with zero filesystem or executor access.
//! - **Cascade property tests**: a rank death during a rollback during a
//!   corruption quarantine is just an event sequence — no threads, no
//!   disk, no fault-plan plumbing needed to exercise it.

pub mod effect;
pub mod event;
pub mod replay;
mod transition;

pub use effect::{Effect, StopCause};
pub use event::{Event, ScrubVerdict};
pub use replay::{replay, Replay};

use pgas::fault::{IntegrityDetector, IntegrityRecord, RecoveryRecord, SuperstepError};
use simcov_core::integrity::IntegrityViolation;

use crate::core::RecoveryPolicy;

/// A silent state corruption applied to unit state whose detection is still
/// outstanding; a later scrub/audit detection is attributed back to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutstandingCorruption {
    /// Global superstep index at which the flip was scheduled.
    pub superstep: u64,
    /// Simulation step after which the flip was applied.
    pub injected_step: u64,
}

/// The in-flight rollback: what failure triggered the
/// [`Effect::FetchRollbackTarget`] query whose answer is still pending.
#[derive(Debug, Clone, PartialEq)]
pub enum PendingRollback {
    /// A superstep failed (fail-stop or unhealed in-flight corruption).
    Failure {
        error: SuperstepError,
        failed_step: u64,
    },
    /// The step-prologue scrub/audit detected state corruption.
    Integrity {
        failed_step: u64,
        violation: IntegrityViolation,
        detector: IntegrityDetector,
    },
}

/// The complete control-plane state of one driver run. Everything a
/// recovery decision reads or writes lives here; the data plane (worlds,
/// rank states, the checkpoint store's actual generations) stays in the
/// shell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriverState {
    /// Next step to compute (= steps completed on the current timeline).
    pub step: u64,
    /// Consecutive failed attempts at the current position; rearmed by
    /// [`Event::AdvanceRequested`] and every completed step.
    pub attempt: u32,
    /// Live execution units (ranks/devices); shrinks when recovery
    /// re-partitions around dead ranks.
    pub units: usize,
    /// Engaged recovery policy (`None`: failures are fatal).
    pub policy: Option<RecoveryPolicy>,
    /// Whether the SDC defense (scrub/audit prologue, verified-only
    /// rollback targets) is engaged.
    pub integrity_on: bool,
    /// Step of the newest in-memory checkpoint generation (`None`: nothing
    /// to roll back to — mirrors the store on the current timeline).
    pub last_checkpoint_step: Option<u64>,
    /// Applied-but-undetected state corruptions, oldest first.
    pub outstanding: Vec<OutstandingCorruption>,
    /// Rollback awaiting the checkpoint store's answer.
    pub pending: Option<PendingRollback>,
    /// Every recovery decided on this run, in order (the pure twin of the
    /// shell's `RecoveryManager::log`).
    pub recovery_log: Vec<RecoveryRecord>,
    /// Every integrity event decided on this run, in order (the pure twin
    /// of the shell's `DriverCore::integrity_log`).
    pub integrity_log: Vec<IntegrityRecord>,
    /// Terminal cause once the core has halted the run; a halted state
    /// absorbs every event except [`Event::ExternalRestore`].
    pub halted: Option<StopCause>,
}

impl DriverState {
    /// The state of a freshly constructed driver.
    pub fn initial(units: usize, policy: Option<RecoveryPolicy>, integrity_on: bool) -> Self {
        DriverState {
            units,
            policy,
            integrity_on,
            ..Default::default()
        }
    }

    /// Is an in-memory checkpoint due before computing the current step?
    /// (Pure twin of the store consultation: a checkpoint is always due
    /// before the first step of a timeline, then every
    /// `checkpoint_period` steps.)
    pub fn checkpoint_due(&self) -> bool {
        match self.policy {
            None => false,
            Some(p) => match self.last_checkpoint_step {
                None => true,
                Some(s) => self.step >= s + p.checkpoint_period.max(1),
            },
        }
    }
}
