//! The transition function: the single place control decisions are made.
//!
//! [`DriverState::apply`] is total and pure — same state, same event, same
//! successor and effects, every time. It is a faithful port of the logic
//! that used to be interleaved with I/O in the blanket `Simulation` impl
//! (`recover`, `integrity_rollback`, the prologue/epilogue bookkeeping),
//! preserving record contents and ordering exactly.

use pgas::fault::{
    CorruptionKind, IntegrityAction, IntegrityDetector, IntegrityRecord, RecoveryRecord,
    SuperstepError,
};

use super::{DriverState, Effect, Event, PendingRollback, StopCause};

impl DriverState {
    /// Advance the control plane by one event, returning the successor
    /// state and the effects the shell must perform, in order.
    ///
    /// A halted state absorbs every event except
    /// [`Event::ExternalRestore`], which starts a fresh timeline.
    pub fn apply(mut self, event: Event) -> (Self, Vec<Effect>) {
        if self.halted.is_some() && !matches!(event, Event::ExternalRestore { .. }) {
            return (self, Vec::new());
        }
        let mut effects = Vec::new();
        match event {
            Event::AdvanceRequested => {
                self.attempt = 0;
            }
            Event::Scrubbed { verdict: None } => {}
            Event::Scrubbed {
                verdict: Some(verdict),
            } => {
                let failed_step = self.step;
                self.attempt += 1;
                let fatal = StopCause::Integrity {
                    step: failed_step,
                    violation: verdict.violation.clone(),
                };
                match self.policy {
                    None => self.halt(fatal, &mut effects),
                    Some(policy) if self.attempt > policy.max_retries => {
                        self.halt(fatal, &mut effects)
                    }
                    Some(_) => {
                        self.pending = Some(PendingRollback::Integrity {
                            failed_step,
                            violation: verdict.violation,
                            detector: verdict.detector,
                        });
                        effects.push(Effect::FetchRollbackTarget {
                            verified_only: true,
                        });
                    }
                }
            }
            Event::CheckpointSaved { step } => {
                self.last_checkpoint_step = Some(step);
            }
            Event::StepComputed { step } => {
                self.attempt = 0;
                self.step = step + 1;
            }
            Event::ComputeFailed { error } => {
                self.attempt += 1;
                match self.policy {
                    // No recovery engaged, or nothing to roll back to:
                    // the failure is fatal as-is.
                    None => self.halt(StopCause::Unrecoverable(error), &mut effects),
                    Some(_) if self.last_checkpoint_step.is_none() => {
                        self.halt(StopCause::Unrecoverable(error), &mut effects)
                    }
                    Some(policy) if self.attempt > policy.max_retries => self.halt(
                        StopCause::RetriesExhausted {
                            last: error,
                            attempts: self.attempt,
                        },
                        &mut effects,
                    ),
                    Some(_) => {
                        // With the SDC defense engaged, never roll back onto
                        // a generation whose seal no longer verifies;
                        // without it, the newest generation is trusted
                        // (fail-stop faults cannot corrupt it).
                        let verified_only = self.integrity_on;
                        self.pending = Some(PendingRollback::Failure {
                            failed_step: self.step,
                            error,
                        });
                        effects.push(Effect::FetchRollbackTarget { verified_only });
                    }
                }
            }
            Event::BarrierHeals { step, records } => {
                for mut r in records {
                    r.step = step;
                    r.injected_step = step;
                    self.push_integrity(r, &mut effects);
                }
            }
            Event::CorruptionApplied { step, superstep } => {
                self.outstanding.push(super::OutstandingCorruption {
                    superstep,
                    injected_step: step,
                });
            }
            Event::RollbackTargetFetched { step, quarantined } => {
                self.rollback_target_fetched(step, quarantined, &mut effects);
            }
            Event::ExternalRestore { step } => {
                // A restored checkpoint starts a new timeline: recovery
                // must never roll back across it, retries rearm, and any
                // outstanding corruption attribution died with the old
                // state.
                self.step = step;
                self.attempt = 0;
                self.last_checkpoint_step = None;
                self.outstanding.clear();
                self.pending = None;
                self.halted = None;
            }
        }
        (self, effects)
    }

    fn halt(&mut self, cause: StopCause, effects: &mut Vec<Effect>) {
        self.pending = None;
        self.halted = Some(cause.clone());
        effects.push(Effect::Halt(cause));
    }

    fn push_integrity(&mut self, rec: IntegrityRecord, effects: &mut Vec<Effect>) {
        self.integrity_log.push(rec.clone());
        effects.push(Effect::EmitIntegrity(rec));
    }

    /// The checkpoint store answered a rollback query: decide the rollback
    /// (or the fail-stop), producing the exact record sequence the
    /// interleaved implementation produced.
    fn rollback_target_fetched(
        &mut self,
        target: Option<u64>,
        quarantined: u64,
        effects: &mut Vec<Effect>,
    ) {
        let Some(pending) = self.pending.take() else {
            // Defensive: an unsolicited store answer changes nothing.
            return;
        };
        let failed_step = match &pending {
            PendingRollback::Failure { failed_step, .. } => *failed_step,
            PendingRollback::Integrity { failed_step, .. } => *failed_step,
        };
        // Every generation quarantined finding the target is an integrity
        // event — logged even when the rollback then turns out impossible.
        for _ in 0..quarantined {
            self.push_integrity(
                IntegrityRecord {
                    step: failed_step,
                    injected_step: failed_step,
                    superstep: 0,
                    injected_superstep: 0,
                    kind: CorruptionKind::Checkpoint,
                    detector: IntegrityDetector::CheckpointSeal,
                    action: IntegrityAction::Quarantine,
                },
                effects,
            );
        }
        let policy = self
            .policy
            .expect("a rollback is only requested with recovery engaged");
        let (superstep, dead_ranks, dropped_messages) = match pending {
            PendingRollback::Integrity {
                failed_step,
                violation,
                detector,
            } => {
                // Attribute the detection to every outstanding injected
                // corruption (a scrub fires once however many flips landed
                // since the seal).
                let injected = std::mem::take(&mut self.outstanding);
                if injected.is_empty() {
                    self.push_integrity(
                        IntegrityRecord {
                            step: failed_step,
                            injected_step: failed_step,
                            superstep: 0,
                            injected_superstep: 0,
                            kind: CorruptionKind::State,
                            detector,
                            action: IntegrityAction::Rollback,
                        },
                        effects,
                    );
                }
                for o in injected {
                    self.push_integrity(
                        IntegrityRecord {
                            step: failed_step,
                            injected_step: o.injected_step,
                            superstep: 0,
                            injected_superstep: o.superstep,
                            kind: CorruptionKind::State,
                            detector,
                            action: IntegrityAction::Rollback,
                        },
                        effects,
                    );
                }
                if target.is_none() {
                    // Every generation was corrupt: nothing trustworthy to
                    // roll to.
                    self.halt(
                        StopCause::Integrity {
                            step: failed_step,
                            violation,
                        },
                        effects,
                    );
                    return;
                }
                (0, Vec::new(), 0)
            }
            PendingRollback::Failure { error, failed_step } => {
                if target.is_none() {
                    self.halt(StopCause::Unrecoverable(error), effects);
                    return;
                }
                // An unhealed in-flight corruption that forced this
                // rollback is a detected-and-healed event for the
                // integrity stream.
                if let SuperstepError::Integrity(ref i) = error {
                    for _ in 0..i.unhealed.max(1) {
                        self.push_integrity(
                            IntegrityRecord {
                                step: failed_step,
                                injected_step: failed_step,
                                superstep: i.superstep,
                                injected_superstep: i.superstep,
                                kind: CorruptionKind::Payload,
                                detector: IntegrityDetector::BatchCrc,
                                action: IntegrityAction::Rollback,
                            },
                            effects,
                        );
                    }
                }
                match error {
                    SuperstepError::Failure(f) => (f.superstep, f.dead_ranks, f.dropped_messages),
                    SuperstepError::Integrity(i) => (i.superstep, Vec::new(), 0),
                }
            }
        };
        let rollback_step = target.expect("checked above");
        let survivors = if dead_ranks.is_empty() {
            self.units
        } else {
            self.units.saturating_sub(dead_ranks.len()).max(1)
        };
        let record = RecoveryRecord {
            failed_step,
            superstep,
            dead_ranks,
            dropped_messages,
            rollback_step,
            replayed_steps: failed_step - rollback_step,
            survivors,
            attempt: self.attempt,
            // Simulated exponential backoff — metered, never slept.
            backoff_ns: policy.backoff_ns(self.attempt),
        };
        self.units = survivors;
        self.step = rollback_step;
        self.last_checkpoint_step = Some(rollback_step);
        // The rollback replaces the state wholesale: any applied-but-
        // undetected corruption is wiped with it.
        self.outstanding.clear();
        self.recovery_log.push(record.clone());
        effects.push(Effect::Rollback { survivors });
        effects.push(Effect::EmitRecovery(record));
    }
}
