//! Typed errors for driver construction and execution.
//!
//! Construction used to panic (`expect("invalid parameters")`,
//! `assert_eq!` on dims); embedders of a production system need to handle
//! bad input as data, so every invalid configuration maps to a
//! [`ConfigError`] variant and every runtime failure to a [`SimError`].

use pgas::fault::SuperstepError;
use simcov_core::checkpoint::CheckpointError;
use simcov_core::grid::GridDims;
use simcov_core::integrity::IntegrityViolation;
use std::fmt;

/// Why a simulation could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `SimParams::validate` rejected the parameter set.
    InvalidParams(String),
    /// An explicit initial world does not match the configured grid.
    DimsMismatch { expected: GridDims, got: GridDims },
    /// Zero ranks/devices requested.
    ZeroUnits,
    /// Memory tiling needs a positive tile side.
    ZeroTileSide,
    /// The active-tile check period can at most equal the tile side: a
    /// tile's halo buffer is outrun after `tile_side` unchecked steps
    /// (paper §3.2).
    CheckPeriodOutOfRange { check_period: u64, tile_side: usize },
    /// NVLink domains need at least one device per node.
    ZeroDevicesPerNode,
    /// The grid cannot be partitioned as requested.
    Partition(String),
    /// The process transport could not be brought up (socket bind, worker
    /// spawn or handshake failure).
    Transport(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidParams(why) => write!(f, "invalid parameters: {why}"),
            ConfigError::DimsMismatch { expected, got } => {
                write!(f, "world dims {got:?} do not match configured {expected:?}")
            }
            ConfigError::ZeroUnits => write!(f, "need at least one rank/device"),
            ConfigError::ZeroTileSide => write!(f, "tile side must be positive"),
            ConfigError::CheckPeriodOutOfRange {
                check_period,
                tile_side,
            } => write!(
                f,
                "check period {check_period} exceeds tile side {tile_side} \
                 (halo buffer would be outrun)"
            ),
            ConfigError::ZeroDevicesPerNode => write!(f, "need at least one device per node"),
            ConfigError::Partition(why) => write!(f, "cannot partition grid: {why}"),
            ConfigError::Transport(why) => write!(f, "cannot start process transport: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a simulation stopped making progress.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Construction-grade error surfaced at runtime (e.g. a rebuild after
    /// recovery could not re-partition the grid).
    Config(ConfigError),
    /// A superstep failed (fail-stop or unhealed corruption) and no
    /// recovery is possible: either no recovery manager is engaged or no
    /// checkpoint exists to roll back to.
    Unrecoverable(SuperstepError),
    /// Recovery was attempted but failures kept recurring past the retry
    /// budget.
    RetriesExhausted { last: SuperstepError, attempts: u32 },
    /// Silent state corruption was detected but no *verified* checkpoint
    /// generation remained to roll back to.
    Integrity {
        step: u64,
        violation: IntegrityViolation,
    },
    /// A checkpoint blob could not be parsed (durable restart path).
    Checkpoint(CheckpointError),
    /// A checkpoint could not be restored into this simulation.
    Restore(String),
    /// A durable checkpoint file could not be written or read.
    Persist(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Unrecoverable(failure) => {
                write!(
                    f,
                    "unrecoverable failure (no checkpoint to roll back to): {failure}"
                )
            }
            SimError::RetriesExhausted { last, attempts } => {
                write!(
                    f,
                    "recovery retries exhausted after {attempts} attempts: {last}"
                )
            }
            SimError::Integrity { step, violation } => {
                write!(f, "state integrity violation at step {step}: {violation}")
            }
            SimError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            SimError::Restore(why) => write!(f, "cannot restore checkpoint: {why}"),
            SimError::Persist(why) => write!(f, "cannot persist checkpoint: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        SimError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ConfigError::CheckPeriodOutOfRange {
            check_period: 9,
            tile_side: 8,
        };
        assert!(format!("{e}").contains("9"));
        assert!(format!("{e}").contains("8"));
        let s = SimError::RetriesExhausted {
            last: pgas::fault::SuperstepFailure {
                superstep: 4,
                dead_ranks: vec![0],
                dropped_messages: 0,
            }
            .into(),
            attempts: 8,
        };
        assert!(format!("{s}").contains("8 attempts"));
        let via: SimError = ConfigError::ZeroUnits.into();
        assert!(matches!(via, SimError::Config(ConfigError::ZeroUnits)));
        let iv = SimError::Integrity {
            step: 12,
            violation: IntegrityViolation::BadCarry,
        };
        assert!(format!("{iv}").contains("step 12"));
        let ce: SimError = CheckpointError::BadMagic.into();
        assert!(format!("{ce}").contains("bad magic"));
    }
}
