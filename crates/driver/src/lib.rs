//! `simcov-driver`: the unified driver layer over the SIMCoV executors.
//!
//! This crate owns everything the serial, CPU and GPU executors used to
//! duplicate or lack:
//!
//! - [`Simulation`] — the object-safe driver API (`Box<dyn Simulation>`)
//!   the CLI, benches and tests program against;
//! - [`Executor`] — the small executor-specific contract; the step loop,
//!   checkpointing, recovery and metrics emission are implemented once in
//!   the blanket `impl<E: Executor> Simulation for E`;
//! - [`DriverCore`] — the shared per-run state both executors embed;
//! - [`RecoveryPolicy`] / [`RecoveryManager`] — checkpoint-based rollback
//!   and elastic re-partitioning around injected or detected faults;
//! - [`ConfigError`] / [`SimError`] — typed errors replacing the panicking
//!   construction paths;
//! - [`state`] — the pure control-plane core: every recovery, retry,
//!   quarantine and checkpoint-scheduling decision as a total function
//!   `(DriverState, Event) -> (DriverState, Vec<Effect>)`, deterministically
//!   replayable from a recorded event log with zero I/O;
//! - [`durable`] — CRC-guarded on-disk checkpoint persistence for crash
//!   restart (`--resume` in the CLI).

pub mod core;
pub mod durable;
pub mod error;
pub mod simulation;
pub mod state;

pub use crate::core::{DriverCore, RecoveryManager, RecoveryPolicy};
pub use durable::{load_checkpoint, persist_checkpoint, sweep_stale_stages};
pub use error::{ConfigError, SimError};
pub use simulation::{CheckpointStats, Executor, IntegrityStats, SerialDriver, Simulation};
pub use state::{replay, DriverState, Effect, Event, Replay, StopCause};
