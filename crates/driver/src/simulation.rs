//! The unified [`Simulation`] driver API and the [`Executor`] contract the
//! CPU and GPU executors implement.
//!
//! `Simulation` is the object-safe surface embedders program against
//! (`Box<dyn Simulation>` in the CLI and benches); `Executor` is the small
//! set of executor-specific hooks — everything else (the per-step loop,
//! checkpointing, fault recovery, metrics emission) is implemented once in
//! the blanket `impl<E: Executor> Simulation for E`.

use std::time::Instant;

use gpusim::metrics::{MetricsSink, StepRecord};
use gpusim::{CostModel, DeviceCounters, HwProfile};
use pgas::fault::{
    CorruptionKind, IntegrityAction, IntegrityDetector, IntegrityRecord, PendingStateCorruption,
    RecoveryRecord, SuperstepError,
};
use pgas::{CommCounters, Trace};
use simcov_core::checkpoint::RunCheckpoint;
use simcov_core::extrav::TrialTable;
use simcov_core::foi::FoiPattern;
use simcov_core::integrity::IntegrityViolation;
use simcov_core::params::SimParams;
use simcov_core::serial::SerialSim;
use simcov_core::stats::{StatsPartial, StepStats, TimeSeries};
use simcov_core::world::World;
use simcov_telemetry::{HealthConfig, HealthMonitor, HealthRecord, RankWalls, SpanKind, Telemetry};

use crate::core::DriverCore;
use crate::error::{ConfigError, SimError};

/// Executor-specific hooks. Implementations own a [`DriverCore`] plus their
/// rank/device collection and BSP mailboxes; the step loop, checkpointing
/// and recovery live in the blanket [`Simulation`] impl.
///
/// Method names are deliberately distinct from [`Simulation`]'s so that a
/// concrete executor never has two candidate methods for one call.
pub trait Executor {
    fn core(&self) -> &DriverCore;
    fn core_mut(&mut self) -> &mut DriverCore;

    /// Stable executor name (`"cpu"`, `"gpu"`), used in structured output.
    fn exec_name(&self) -> &'static str;

    /// Number of live execution units (ranks or devices).
    fn unit_count(&self) -> usize;

    /// Active work units right now: active-list voxels (CPU) or active
    /// tiles (GPU), summed over units.
    fn live_active_units(&self) -> u64;

    /// Aggregate work counters of the live units (excludes generations
    /// retired by recovery — see [`DriverCore::retired_counters`]).
    fn live_counters(&self) -> DeviceCounters;

    /// The hardware profile this executor is costed under.
    fn hw_profile<'a>(&self, model: &'a CostModel) -> &'a HwProfile;

    fn bsp_counters(&self) -> CommCounters;
    fn bsp_trace(&self) -> &Trace;
    fn bsp_enable_trace(&mut self);

    /// Hand the telemetry handle down to the BSP runtime (and, for the GPU
    /// executor, to every device) so supersteps, rank phases and kernel
    /// phases record spans. Called by [`Simulation::enable_telemetry`] after
    /// [`DriverCore::telemetry`] is set; `rebuild` implementations must
    /// re-attach from the core so telemetry survives elastic shrinks.
    fn attach_unit_telemetry(&mut self) {}

    /// Drain the per-superstep rank wall-clock samples the BSP layer
    /// accumulated (empty when telemetry is off). The driver feeds these to
    /// the health monitor after every completed step.
    fn take_rank_walls(&mut self) -> Vec<RankWalls> {
        Vec::new()
    }

    /// Active work units per execution unit (active-list voxels per rank /
    /// active tiles per device) — the health monitor's load-imbalance input.
    fn per_unit_active(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Compute step `t`: run the executor's supersteps and return the
    /// globally-reduced statistics partial. On `Err` the unit states are
    /// not trustworthy; the driver rolls back and rebuilds. The error
    /// distinguishes fail-stop failures from unhealed in-flight corruption
    /// ([`SuperstepError::Integrity`]); both take the rollback tier.
    fn compute_step(&mut self, t: u64, trials: &TrialTable)
        -> Result<StatsPartial, SuperstepError>;

    /// Drain the state-corruption events the fault plan scheduled during
    /// the last `compute_step`. The driver applies them *after* resealing,
    /// so the next prologue scrub is guaranteed to detect them.
    fn take_pending_state_corruptions(&mut self) -> Vec<PendingStateCorruption> {
        Vec::new()
    }

    /// Flip one seeded bit in unit `unit`'s resident model state (the SDC
    /// injection the driver performs on behalf of the fault plan).
    fn corrupt_unit_state(&mut self, _unit: usize, _seed: u64) {}

    /// Drain integrity records accumulated by the BSP layer (in-barrier
    /// retransmit heals); the driver stamps them with the simulation step.
    fn take_bsp_integrity_records(&mut self) -> Vec<IntegrityRecord> {
        Vec::new()
    }

    /// Tear down the unit collection and rebuild it over `n_units` units
    /// from `world` (re-partitioning the grid — the elastic shrink after a
    /// rank death). Must update [`DriverCore::partition`] and carry the BSP
    /// runtime forward via [`pgas::Bsp::rebuilt`] so cumulative counters,
    /// the trace and the remaining fault plan survive.
    fn rebuild(&mut self, world: &World, n_units: usize) -> Result<(), ConfigError>;

    /// Assemble the full world from the distributed subdomains.
    fn assemble_world(&self) -> World;
}

/// The unified driver API: one object-safe surface over the serial, CPU and
/// GPU executors. Obtain one from `CpuSim`, `GpuSim` or [`SerialDriver`];
/// everything downstream (CLI, benches, tests) programs against
/// `&mut dyn Simulation`.
pub trait Simulation {
    /// Stable executor name (`"serial"`, `"cpu"`, `"gpu"`).
    fn name(&self) -> &'static str;

    fn params(&self) -> &SimParams;

    /// Next step to compute (= steps completed so far).
    fn step(&self) -> u64;

    /// Advance one timestep. With recovery engaged, detected failures roll
    /// back to the last checkpoint, re-partition across survivors and
    /// replay — so one call may compute several steps, and `Ok` means the
    /// trajectory has advanced by exactly one step beyond where it was.
    fn advance_step(&mut self) -> Result<(), SimError>;

    /// Run all configured steps.
    fn run(&mut self) -> Result<(), SimError> {
        while self.step() < self.params().steps {
            self.advance_step()?;
        }
        Ok(())
    }

    fn history(&self) -> &TimeSeries;

    fn last_stats(&self) -> Option<StepStats> {
        self.history().steps.last().copied()
    }

    /// Assemble the full world (gathered from subdomains where distributed).
    fn gather_world(&self) -> World;

    /// Number of execution units (1 for serial, ranks for CPU, devices for
    /// GPU). May shrink after a recovery from rank death.
    fn n_units(&self) -> usize;

    /// Active work units right now (executor-specific granularity).
    fn active_units(&self) -> u64;

    /// Install a per-step metrics consumer; records flow from the next step.
    fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink<StepRecord>>);

    /// Attach a telemetry handle: driver steps, BSP supersteps, rank phases
    /// and (on the GPU executor) kernel phases record spans on it from the
    /// next step. Telemetry is pure observation — an attached handle never
    /// changes the trajectory.
    fn enable_telemetry(&mut self, tel: Telemetry);

    /// The attached telemetry handle (disabled handle when none was attached).
    fn telemetry_handle(&self) -> Telemetry;

    /// Engage online health monitoring (stragglers, load imbalance, comm
    /// spikes). Straggler detection needs per-rank walls, so attach
    /// telemetry first; no-op on the serial executor.
    fn enable_health(&mut self, cfg: HealthConfig);

    /// Every health finding so far, in detection order.
    fn health_records(&self) -> &[HealthRecord];

    /// Start recording runtime trace events (no-op for serial).
    fn enable_trace(&mut self);

    fn trace(&self) -> &Trace;

    /// Cumulative communication counters (zeros for serial).
    fn comm_counters(&self) -> CommCounters;

    /// Cumulative work counters, including generations retired by recovery.
    fn total_counters(&self) -> DeviceCounters;

    /// Snapshot the full model state for later [`Simulation::restore`].
    fn checkpoint(&self) -> RunCheckpoint;

    /// Restore a [`Simulation::checkpoint`] — the world, vascular pool,
    /// history and step counter are replaced wholesale.
    fn restore(&mut self, cp: &RunCheckpoint) -> Result<(), SimError>;

    /// Every fault recovery performed so far, in order.
    fn recovery_log(&self) -> &[RecoveryRecord];
}

impl<E: Executor> Simulation for E {
    fn name(&self) -> &'static str {
        self.exec_name()
    }

    fn params(&self) -> &SimParams {
        &self.core().params
    }

    fn step(&self) -> u64 {
        self.core().step
    }

    fn advance_step(&mut self) -> Result<(), SimError> {
        let target = self.core().step + 1;
        let mut attempt: u32 = 0;
        let tel = self.core().telemetry.clone();
        // After a rollback `core.step` drops below `target`; the loop
        // replays the intermediate steps until the trajectory is one step
        // further than when we were called.
        while self.core().step < target {
            // Prologue: verify the canonical state *before* compute consumes
            // it and before a checkpoint could capture it. On a violation
            // this rolls the run back to the newest verified generation.
            if self.core().integrity.is_some() {
                prologue_verify(self, &mut attempt)?;
            }
            if self.core().checkpoint_due() {
                let world = self.assemble_world();
                let core = self.core_mut();
                let rm = core
                    .recovery
                    .as_mut()
                    .expect("checkpoint_due implies a recovery manager");
                rm.store
                    .save(core.step, &world, &core.vascular, &core.history);
            }
            let t = self.core().step;
            // Root of this step's span tree: supersteps parent to it via the
            // published step-parent slot.
            let step_open = tel.open();
            if tel.is_enabled() {
                tel.set_step_parent(step_open.id);
            }
            let start = self.core().metrics.as_ref().map(|_| Instant::now());
            let trials =
                TrialTable::build(&self.core().params, t, self.core().vascular.circulating());
            match self.compute_step(t, &trials) {
                Ok(partial) => {
                    attempt = 0;
                    finish_step(self, t, partial, start);
                    epilogue_integrity(self, t);
                    if tel.is_enabled() {
                        observe_health(self, t, &tel);
                        tel.close(0, "step", SpanKind::Step, 0, step_open, t, 0);
                        if let Some(h) = self.core().step_hist.as_ref() {
                            h.observe(tel.now_ns().saturating_sub(step_open.start_ns));
                        }
                    }
                }
                Err(failure) => {
                    attempt += 1;
                    if tel.is_enabled() {
                        tel.instant(0, "recovery", step_open.id, t, attempt as u64);
                        tel.close(0, "step", SpanKind::Step, 0, step_open, t, attempt as u64);
                    }
                    recover(self, failure, attempt)?;
                }
            }
        }
        Ok(())
    }

    fn history(&self) -> &TimeSeries {
        &self.core().history
    }

    fn gather_world(&self) -> World {
        self.assemble_world()
    }

    fn n_units(&self) -> usize {
        self.unit_count()
    }

    fn active_units(&self) -> u64 {
        self.live_active_units()
    }

    fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink<StepRecord>>) {
        self.core_mut().metrics = Some(sink);
    }

    fn enable_telemetry(&mut self, tel: Telemetry) {
        self.core_mut().step_hist = tel.registry().map(|r| {
            r.histogram(
                "simcov_step_wall_ns",
                "Wall-clock nanoseconds per whole driver step",
            )
        });
        self.core_mut().telemetry = tel;
        self.attach_unit_telemetry();
    }

    fn telemetry_handle(&self) -> Telemetry {
        self.core().telemetry.clone()
    }

    fn enable_health(&mut self, cfg: HealthConfig) {
        let core = self.core_mut();
        core.health = Some(HealthMonitor::with_config(cfg));
        core.health_prev_comm = CommCounters::default();
    }

    fn health_records(&self) -> &[HealthRecord] {
        self.core()
            .health
            .as_ref()
            .map(|m| m.records())
            .unwrap_or(&[])
    }

    fn enable_trace(&mut self) {
        self.bsp_enable_trace();
    }

    fn trace(&self) -> &Trace {
        self.bsp_trace()
    }

    fn comm_counters(&self) -> CommCounters {
        self.bsp_counters()
    }

    fn total_counters(&self) -> DeviceCounters {
        let mut total = self.core().retired_counters;
        total.merge(&self.live_counters());
        total
    }

    fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            step: self.core().step,
            world: self.assemble_world(),
            pool: self.core().vascular.clone(),
            history: self.core().history.clone(),
        }
    }

    fn restore(&mut self, cp: &RunCheckpoint) -> Result<(), SimError> {
        if cp.world.dims != self.core().params.dims {
            return Err(SimError::Restore(format!(
                "checkpoint dims {:?} do not match configured {:?}",
                cp.world.dims,
                self.core().params.dims
            )));
        }
        let n = self.unit_count();
        self.rebuild(&cp.world, n).map_err(SimError::Config)?;
        let core = self.core_mut();
        core.vascular = cp.pool.clone();
        core.history = cp.history.clone();
        core.step = cp.step;
        // The restored state starts a new timeline: recovery must never
        // roll back across it to a checkpoint from the old one.
        if let Some(rm) = core.recovery.as_mut() {
            rm.store = simcov_core::checkpoint::CheckpointStore::new();
        }
        // Likewise the seal: the old one described the replaced state.
        core.outstanding_corruptions.clear();
        core.outstanding_steps.clear();
        if let Some(mon) = core.integrity.as_mut() {
            mon.reseal(&cp.world, &cp.pool);
        }
        Ok(())
    }

    fn recovery_log(&self) -> &[RecoveryRecord] {
        self.core()
            .recovery
            .as_ref()
            .map(|rm| rm.log.as_slice())
            .unwrap_or(&[])
    }
}

/// Post-step health observation: drain the BSP layer's per-superstep rank
/// walls (always, so the buffer never grows unboundedly), then — when a
/// monitor is engaged — feed walls, per-unit active counts and the step's
/// comm-byte delta through it, and stamp any fresh finding onto the trace
/// timeline as an instant marker under the current step span.
fn observe_health<E: Executor + ?Sized>(exec: &mut E, t: u64, tel: &Telemetry) {
    let walls = exec.take_rank_walls();
    if exec.core().health.is_none() {
        return;
    }
    let active = exec.per_unit_active();
    let comm = exec.bsp_counters();
    let now = tel.now_ns();
    let step_span = tel.step_parent();
    let core = exec.core_mut();
    let delta_bytes = (comm.bytes + comm.bulk_bytes)
        .saturating_sub(core.health_prev_comm.bytes + core.health_prev_comm.bulk_bytes);
    core.health_prev_comm = comm;
    let mon = core.health.as_mut().expect("checked above");
    let mut fresh = Vec::new();
    for w in &walls {
        fresh.extend(mon.observe_superstep(t, w.superstep, now, &w.walls));
    }
    fresh.extend(mon.observe_step(t, now, &active, delta_bytes));
    for r in &fresh {
        tel.instant(0, r.kind.label(), step_span, r.superstep, 0);
    }
}

/// Fold a completed step into the shared state and emit its record.
fn finish_step<E: Executor + ?Sized>(
    exec: &mut E,
    t: u64,
    partial: StatsPartial,
    start: Option<Instant>,
) {
    let mut stats = partial.finalize();
    {
        let core = exec.core_mut();
        let (rate, delay, period) = (
            core.params.tcell_generation_rate,
            core.params.tcell_initial_delay,
            core.params.tcell_vascular_period,
        );
        core.vascular
            .advance(t, rate, delay, period, stats.extravasated);
        stats.tcells_vasculature = core.vascular.circulating();
        stats.step = t;
        core.history.push(stats);
        core.step = t + 1;
    }
    if exec.core().metrics.is_some() {
        emit_step_record(exec, t, stats, start);
    }
}

/// Publish one [`StepRecord`]. Replayed steps (after a rollback) emit again
/// under the same step number — replay cost is visible in the stream, and
/// the recoveries that triggered it ride on the first record emitted after
/// them.
fn emit_step_record<E: Executor + ?Sized>(
    exec: &mut E,
    step: u64,
    stats: StepStats,
    start: Option<Instant>,
) {
    let comm = exec.bsp_counters();
    let active_units = exec.live_active_units();
    let units = exec.unit_count().max(1) as f64;
    let model = CostModel::default();
    let mut total = exec.core().retired_counters;
    total.merge(&exec.live_counters());
    let hw = exec.hw_profile(&model);
    let core = exec.core_mut();
    let snap = core.snapshots.take(step, &total, &model, hw);
    let prev = core.prev_comm;
    let rec = StepRecord {
        step,
        agents: stats.tcells_tissue,
        virions: stats.virions,
        chemokine: stats.chemokine,
        active_units,
        comm_messages: (comm.messages + comm.bulk_messages) - (prev.messages + prev.bulk_messages),
        comm_bytes: (comm.bytes + comm.bulk_bytes) - (prev.bytes + prev.bulk_bytes),
        sim_seconds: snap.cost.total() / units,
        real_seconds: start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0),
        phases: snap,
        recoveries: std::mem::take(&mut core.pending_recoveries),
        integrity: std::mem::take(&mut core.pending_integrity),
    };
    core.prev_comm = comm;
    if let Some(sink) = core.metrics.as_mut() {
        sink.record(rec);
    }
}

/// Prologue of every step while the SDC defense is engaged: scrub the
/// canonical state against last step's seal, and run the invariant audit
/// when due. A violation takes the rollback tier of the healing ladder.
fn prologue_verify<E: Executor + ?Sized>(exec: &mut E, attempt: &mut u32) -> Result<(), SimError> {
    let step = exec.core().step;
    let audit_due = exec
        .core()
        .integrity
        .as_ref()
        .is_some_and(|mon| mon.audit_due(step));
    let world = exec.assemble_world();
    let core = exec.core_mut();
    let Some(mon) = core.integrity.as_mut() else {
        return Ok(());
    };
    let verdict = match mon.scrub(&world, &core.vascular) {
        Err(v) => Some((v, IntegrityDetector::SealScrub)),
        Ok(()) if audit_due => mon
            .audit(&world, &core.vascular)
            .err()
            .map(|v| (v, IntegrityDetector::InvariantAudit)),
        Ok(()) => None,
    };
    if let Some((violation, detector)) = verdict {
        *attempt += 1;
        integrity_rollback(exec, step, violation, detector, *attempt)?;
    }
    Ok(())
}

/// Epilogue of every completed step: stamp and publish the BSP layer's
/// in-barrier heal records, reseal the post-step state, then apply any
/// scheduled state corruption *after* the seal — so the flip lands on
/// sealed state and the next prologue scrub is guaranteed to catch it.
fn epilogue_integrity<E: Executor + ?Sized>(exec: &mut E, t: u64) {
    let mut heals = exec.take_bsp_integrity_records();
    if !heals.is_empty() {
        let core = exec.core_mut();
        for mut r in heals.drain(..) {
            r.step = t;
            r.injected_step = t;
            core.push_integrity(r);
        }
    }
    if exec.core().integrity.is_some() {
        let world = exec.assemble_world();
        let core = exec.core_mut();
        if let Some(mon) = core.integrity.as_mut() {
            mon.reseal(&world, &core.vascular);
        }
    }
    let pending = exec.take_pending_state_corruptions();
    for p in pending {
        let unit = p.rank % exec.unit_count().max(1);
        exec.corrupt_unit_state(unit, p.seed);
        let core = exec.core_mut();
        core.outstanding_corruptions.push(p);
        core.outstanding_steps.push(t);
    }
}

/// The rollback tier for *detected state corruption*: quarantine any
/// checkpoint generation whose seal no longer verifies, restore the newest
/// clean one, and reseal. Unlike fail-stop recovery no ranks died, so the
/// partition geometry is kept.
fn integrity_rollback<E: Executor + ?Sized>(
    exec: &mut E,
    failed_step: u64,
    violation: IntegrityViolation,
    detector: IntegrityDetector,
    attempt: u32,
) -> Result<(), SimError> {
    let fatal = |step: u64, violation: IntegrityViolation| SimError::Integrity { step, violation };
    let policy = match exec.core().recovery.as_ref() {
        None => return Err(fatal(failed_step, violation)),
        Some(rm) => rm.policy,
    };
    if attempt > policy.max_retries {
        return Err(fatal(failed_step, violation));
    }
    // Quarantine corrupt generations; count how many fell.
    let (cp, quarantined) = {
        let rm = exec.core_mut().recovery.as_mut().expect("checked above");
        let before = rm.store.quarantined;
        let cp = rm.store.latest_verified().cloned();
        (cp, rm.store.quarantined - before)
    };
    let core = exec.core_mut();
    for _ in 0..quarantined {
        core.push_integrity(IntegrityRecord {
            step: failed_step,
            injected_step: failed_step,
            superstep: 0,
            injected_superstep: 0,
            kind: CorruptionKind::Checkpoint,
            detector: IntegrityDetector::CheckpointSeal,
            action: IntegrityAction::Quarantine,
        });
    }
    // Attribute the detection to every outstanding injected corruption (a
    // scrub fires once however many flips landed since the seal).
    let injected: Vec<(PendingStateCorruption, u64)> = core
        .outstanding_corruptions
        .drain(..)
        .zip(core.outstanding_steps.drain(..))
        .collect();
    if injected.is_empty() {
        core.push_integrity(IntegrityRecord {
            step: failed_step,
            injected_step: failed_step,
            superstep: 0,
            injected_superstep: 0,
            kind: CorruptionKind::State,
            detector,
            action: IntegrityAction::Rollback,
        });
    }
    for (p, injected_step) in injected {
        core.push_integrity(IntegrityRecord {
            step: failed_step,
            injected_step,
            superstep: 0,
            injected_superstep: p.superstep,
            kind: CorruptionKind::State,
            detector,
            action: IntegrityAction::Rollback,
        });
    }
    let Some(cp) = cp else {
        // Every generation was corrupt: nothing trustworthy to roll to.
        return Err(fatal(failed_step, violation));
    };

    let live = exec.live_counters();
    exec.core_mut().retired_counters.merge(&live);
    let survivors = exec.unit_count();
    exec.rebuild(&cp.world, survivors)
        .map_err(SimError::Config)?;

    let record = RecoveryRecord {
        failed_step,
        superstep: 0,
        dead_ranks: Vec::new(),
        dropped_messages: 0,
        rollback_step: cp.step,
        replayed_steps: failed_step - cp.step,
        survivors,
        attempt,
        backoff_ns: policy.backoff_ns(attempt),
    };
    let core = exec.core_mut();
    core.vascular = cp.pool;
    core.history = cp.history;
    core.step = cp.step;
    if let Some(mon) = core.integrity.as_mut() {
        mon.reseal(&cp.world, &core.vascular);
    }
    let rm = core.recovery.as_mut().expect("checked above");
    rm.log.push(record.clone());
    core.pending_recoveries.push(record);
    Ok(())
}

/// Roll back to the last checkpoint, re-partition across survivors and
/// prime the replay. `attempt` counts consecutive failures at the current
/// position (resets on any completed step).
fn recover<E: Executor + ?Sized>(
    exec: &mut E,
    failure: SuperstepError,
    attempt: u32,
) -> Result<(), SimError> {
    let failed_step = exec.core().step;
    let verify = exec.core().integrity.is_some();
    let policy = match exec.core().recovery.as_ref() {
        None => return Err(SimError::Unrecoverable(failure)),
        Some(rm) if rm.store.latest().is_none() => return Err(SimError::Unrecoverable(failure)),
        Some(rm) => rm.policy,
    };
    if attempt > policy.max_retries {
        return Err(SimError::RetriesExhausted {
            last: failure,
            attempts: attempt,
        });
    }
    // With the SDC defense engaged, never roll back onto a generation whose
    // seal no longer verifies; without it, `latest` is trusted (fail-stop).
    let (cp, quarantined) = {
        let rm = exec.core_mut().recovery.as_mut().expect("checked above");
        if verify {
            let before = rm.store.quarantined;
            let cp = rm.store.latest_verified().cloned();
            (cp, rm.store.quarantined - before)
        } else {
            (rm.store.latest().cloned(), 0)
        }
    };
    for _ in 0..quarantined {
        exec.core_mut().push_integrity(IntegrityRecord {
            step: failed_step,
            injected_step: failed_step,
            superstep: 0,
            injected_superstep: 0,
            kind: CorruptionKind::Checkpoint,
            detector: IntegrityDetector::CheckpointSeal,
            action: IntegrityAction::Quarantine,
        });
    }
    let Some(cp) = cp else {
        return Err(SimError::Unrecoverable(failure));
    };
    // An unhealed in-flight corruption that forced this rollback is a
    // detected-and-healed event for the integrity stream.
    if let SuperstepError::Integrity(ref i) = failure {
        for _ in 0..i.unhealed.max(1) {
            exec.core_mut().push_integrity(IntegrityRecord {
                step: failed_step,
                injected_step: failed_step,
                superstep: i.superstep,
                injected_superstep: i.superstep,
                kind: CorruptionKind::Payload,
                detector: IntegrityDetector::BatchCrc,
                action: IntegrityAction::Rollback,
            });
        }
    }

    // Retire the live work counters before the unit collection is torn
    // down, so totals never lose the failed epoch's work.
    let live = exec.live_counters();
    exec.core_mut().retired_counters.merge(&live);

    let (superstep, dead_ranks, dropped_messages) = match &failure {
        SuperstepError::Failure(f) => (f.superstep, f.dead_ranks.clone(), f.dropped_messages),
        SuperstepError::Integrity(i) => (i.superstep, Vec::new(), 0),
    };
    let survivors = if dead_ranks.is_empty() {
        exec.unit_count()
    } else {
        exec.unit_count().saturating_sub(dead_ranks.len()).max(1)
    };
    exec.rebuild(&cp.world, survivors)
        .map_err(SimError::Config)?;

    // Simulated exponential backoff — metered in the record, never slept.
    let backoff_ns = policy.backoff_ns(attempt);
    let record = RecoveryRecord {
        failed_step,
        superstep,
        dead_ranks,
        dropped_messages,
        rollback_step: cp.step,
        replayed_steps: failed_step - cp.step,
        survivors,
        attempt,
        backoff_ns,
    };
    let core = exec.core_mut();
    core.vascular = cp.pool;
    core.history = cp.history;
    core.step = cp.step;
    // The rollback replaced the state wholesale: any applied-but-undetected
    // corruption was wiped with it, so forget the attributions.
    core.outstanding_corruptions.clear();
    core.outstanding_steps.clear();
    if let Some(mon) = core.integrity.as_mut() {
        mon.reseal(&cp.world, &core.vascular);
    }
    let rm = core.recovery.as_mut().expect("checked above");
    rm.log.push(record.clone());
    core.pending_recoveries.push(record);
    Ok(())
}

/// The serial reference executor behind the unified driver API.
///
/// [`SerialSim`] has no runtime (no ranks, no mailboxes, no fault surface),
/// so it implements [`Simulation`] directly rather than through
/// [`Executor`]: traces and communication counters are empty, recovery is
/// unavailable, and checkpoint/restore operate on the whole world.
pub struct SerialDriver {
    sim: SerialSim,
    metrics: Option<Box<dyn MetricsSink<StepRecord>>>,
    /// Permanently-disabled trace handed out by [`Simulation::trace`].
    empty_trace: Trace,
    /// Attached telemetry: serial steps record flat `step` spans (no
    /// supersteps or ranks exist to nest under them).
    telemetry: Telemetry,
}

impl SerialDriver {
    pub fn new(params: SimParams) -> Result<Self, ConfigError> {
        Self::with_pattern(params, FoiPattern::UniformLattice)
    }

    pub fn with_pattern(params: SimParams, pattern: FoiPattern) -> Result<Self, ConfigError> {
        params.validate().map_err(ConfigError::InvalidParams)?;
        Ok(SerialDriver {
            sim: SerialSim::with_pattern(params, pattern),
            metrics: None,
            empty_trace: Trace::disabled(),
            telemetry: Telemetry::disabled(),
        })
    }

    pub fn from_world(params: SimParams, world: World) -> Result<Self, ConfigError> {
        params.validate().map_err(ConfigError::InvalidParams)?;
        if world.dims != params.dims {
            return Err(ConfigError::DimsMismatch {
                expected: params.dims,
                got: world.dims,
            });
        }
        Ok(SerialDriver {
            sim: SerialSim::from_world(params, world),
            metrics: None,
            empty_trace: Trace::disabled(),
            telemetry: Telemetry::disabled(),
        })
    }

    pub fn inner(&self) -> &SerialSim {
        &self.sim
    }

    pub fn inner_mut(&mut self) -> &mut SerialSim {
        &mut self.sim
    }
}

impl Simulation for SerialDriver {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn params(&self) -> &SimParams {
        &self.sim.params
    }

    fn step(&self) -> u64 {
        self.sim.step
    }

    fn advance_step(&mut self) -> Result<(), SimError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let t = self.sim.step;
        let step_open = self.telemetry.open();
        self.sim.advance_step();
        self.telemetry
            .close(0, "step", SpanKind::Step, 0, step_open, t, 0);
        if let Some(sink) = self.metrics.as_mut() {
            let s = self.sim.last_stats().copied().unwrap_or_default();
            sink.record(StepRecord {
                step: t,
                agents: s.tcells_tissue,
                virions: s.virions,
                chemokine: s.chemokine,
                active_units: self.sim.world.nvoxels() as u64,
                real_seconds: start.map(|i| i.elapsed().as_secs_f64()).unwrap_or(0.0),
                ..Default::default()
            });
        }
        Ok(())
    }

    fn history(&self) -> &TimeSeries {
        &self.sim.history
    }

    fn gather_world(&self) -> World {
        self.sim.world.clone()
    }

    fn n_units(&self) -> usize {
        1
    }

    /// The serial executor sweeps every voxel every step.
    fn active_units(&self) -> u64 {
        self.sim.world.nvoxels() as u64
    }

    fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink<StepRecord>>) {
        self.metrics = Some(sink);
    }

    fn enable_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = tel;
    }

    fn telemetry_handle(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// No ranks, no supersteps: there is nothing for the monitor to watch.
    fn enable_health(&mut self, _cfg: HealthConfig) {}

    fn health_records(&self) -> &[HealthRecord] {
        &[]
    }

    fn enable_trace(&mut self) {}

    fn trace(&self) -> &Trace {
        &self.empty_trace
    }

    fn comm_counters(&self) -> CommCounters {
        CommCounters::new()
    }

    fn total_counters(&self) -> DeviceCounters {
        DeviceCounters::new()
    }

    fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            step: self.sim.step,
            world: self.sim.world.clone(),
            pool: self.sim.pool.clone(),
            history: self.sim.history.clone(),
        }
    }

    fn restore(&mut self, cp: &RunCheckpoint) -> Result<(), SimError> {
        if cp.world.dims != self.sim.params.dims {
            return Err(SimError::Restore(format!(
                "checkpoint dims {:?} do not match configured {:?}",
                cp.world.dims, self.sim.params.dims
            )));
        }
        self.sim.world = cp.world.clone();
        self.sim.pool = cp.pool.clone();
        self.sim.history = cp.history.clone();
        self.sim.step = cp.step;
        Ok(())
    }

    fn recovery_log(&self) -> &[RecoveryRecord] {
        &[]
    }
}
