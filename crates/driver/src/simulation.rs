//! The unified [`Simulation`] driver API and the [`Executor`] contract the
//! CPU and GPU executors implement — the *effect shell* over the pure
//! control-plane core in [`crate::state`].
//!
//! `Simulation` is the object-safe surface embedders program against
//! (`Box<dyn Simulation>` in the CLI and benches); `Executor` is the small
//! set of executor-specific hooks. The step loop here owns only the impure
//! world — disk persistence, clocks, pool dispatch, telemetry emission,
//! the checkpoint store's actual generations — and reduces every
//! observation to an [`Event`] fed to [`DriverState::apply`]; the returned
//! [`Effect`]s are executed in order by the shell's dispatch loop. No recovery, retry,
//! quarantine or checkpoint-scheduling *decision* is made in this file.

use std::collections::VecDeque;
use std::time::Instant;

use gpusim::metrics::{MetricsSink, StepRecord};
use gpusim::{CostModel, DeviceCounters, HwProfile};
use pgas::fault::{
    IntegrityDetector, IntegrityRecord, PendingStateCorruption, RecoveryRecord, SuperstepError,
};
use pgas::{CommCounters, Trace};
use simcov_core::checkpoint::RunCheckpoint;
use simcov_core::extrav::TrialTable;
use simcov_core::foi::FoiPattern;
use simcov_core::params::SimParams;
use simcov_core::serial::SerialSim;
use simcov_core::stats::{StatsPartial, StepStats, TimeSeries};
use simcov_core::world::World;
use simcov_telemetry::{HealthConfig, HealthMonitor, HealthRecord, RankWalls, SpanKind, Telemetry};

use crate::core::DriverCore;
use crate::error::{ConfigError, SimError};
use crate::state::{DriverState, Effect, Event, ScrubVerdict, StopCause};

/// Aggregate counters of the in-memory incremental checkpoint store, for
/// structured reporting through `dyn Simulation` (the sweep server and the
/// fault/SDC sweeps read these without downcasting to an executor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints taken this run.
    pub saves: u64,
    /// Bytes a dense (full-world) encoding of every save would have cost.
    pub full_bytes: u64,
    /// Bytes the incremental (delta) encoding actually cost.
    pub delta_bytes: u64,
    /// Generations quarantined by verified-rollback queries.
    pub quarantined: u64,
}

/// Aggregate counters of the SDC defense, for structured reporting through
/// `dyn Simulation`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Prologue seal scrubs performed.
    pub scrubs_run: u64,
    /// Invariant audits performed.
    pub audits_run: u64,
}

/// Executor-specific hooks. Implementations own a [`DriverCore`] plus their
/// rank/device collection and BSP mailboxes; the step loop, checkpointing
/// and recovery live in the blanket [`Simulation`] impl.
///
/// Method names are deliberately distinct from [`Simulation`]'s so that a
/// concrete executor never has two candidate methods for one call.
pub trait Executor {
    fn core(&self) -> &DriverCore;
    fn core_mut(&mut self) -> &mut DriverCore;

    /// Stable executor name (`"cpu"`, `"gpu"`), used in structured output.
    fn exec_name(&self) -> &'static str;

    /// Number of live execution units (ranks or devices).
    fn unit_count(&self) -> usize;

    /// Active work units right now: active-list voxels (CPU) or active
    /// tiles (GPU), summed over units.
    fn live_active_units(&self) -> u64;

    /// Aggregate work counters of the live units (excludes generations
    /// retired by recovery — see [`DriverCore::retired_counters`]).
    fn live_counters(&self) -> DeviceCounters;

    /// The hardware profile this executor is costed under.
    fn hw_profile<'a>(&self, model: &'a CostModel) -> &'a HwProfile;

    fn bsp_counters(&self) -> CommCounters;
    fn bsp_trace(&self) -> &Trace;
    fn bsp_enable_trace(&mut self);

    /// Wire-side counters of the socket transport (`None` while the
    /// in-process mailboxes carry the exchange). Strictly overhead
    /// accounting — [`Executor::bsp_counters`] stays transport-invariant.
    fn wire_counters(&self) -> Option<pgas::TransportCounters> {
        None
    }

    /// Hand the telemetry handle down to the BSP runtime (and, for the GPU
    /// executor, to every device) so supersteps, rank phases and kernel
    /// phases record spans. Called by [`Simulation::enable_telemetry`] after
    /// [`DriverCore::telemetry`] is set; `rebuild` implementations must
    /// re-attach from the core so telemetry survives elastic shrinks.
    fn attach_unit_telemetry(&mut self) {}

    /// Drain the per-superstep rank wall-clock samples the BSP layer
    /// accumulated (empty when telemetry is off). The driver feeds these to
    /// the health monitor after every completed step.
    fn take_rank_walls(&mut self) -> Vec<RankWalls> {
        Vec::new()
    }

    /// Active work units per execution unit (active-list voxels per rank /
    /// active tiles per device) — the health monitor's load-imbalance input.
    fn per_unit_active(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Compute step `t`: run the executor's supersteps and return the
    /// globally-reduced statistics partial. On `Err` the unit states are
    /// not trustworthy; the driver rolls back and rebuilds. The error
    /// distinguishes fail-stop failures from unhealed in-flight corruption
    /// ([`SuperstepError::Integrity`]); both take the rollback tier.
    fn compute_step(&mut self, t: u64, trials: &TrialTable)
        -> Result<StatsPartial, SuperstepError>;

    /// Drain the state-corruption events the fault plan scheduled during
    /// the last `compute_step`. The driver applies them *after* resealing,
    /// so the next prologue scrub is guaranteed to detect them.
    fn take_pending_state_corruptions(&mut self) -> Vec<PendingStateCorruption> {
        Vec::new()
    }

    /// Flip one seeded bit in unit `unit`'s resident model state (the SDC
    /// injection the driver performs on behalf of the fault plan).
    fn corrupt_unit_state(&mut self, _unit: usize, _seed: u64) {}

    /// Drain integrity records accumulated by the BSP layer (in-barrier
    /// retransmit heals); the driver stamps them with the simulation step.
    fn take_bsp_integrity_records(&mut self) -> Vec<IntegrityRecord> {
        Vec::new()
    }

    /// Tear down the unit collection and rebuild it over `n_units` units
    /// from `world` (re-partitioning the grid — the elastic shrink after a
    /// rank death). Must update [`DriverCore::partition`] and carry the BSP
    /// runtime forward via [`pgas::Bsp::rebuilt`] so cumulative counters,
    /// the trace and the remaining fault plan survive.
    fn rebuild(&mut self, world: &World, n_units: usize) -> Result<(), ConfigError>;

    /// Assemble the full world from the distributed subdomains.
    fn assemble_world(&self) -> World;
}

/// The unified driver API: one object-safe surface over the serial, CPU and
/// GPU executors. Obtain one from `CpuSim`, `GpuSim` or [`SerialDriver`];
/// everything downstream (CLI, benches, tests) programs against
/// `&mut dyn Simulation`.
pub trait Simulation {
    /// Stable executor name (`"serial"`, `"cpu"`, `"gpu"`).
    fn name(&self) -> &'static str;

    fn params(&self) -> &SimParams;

    /// Next step to compute (= steps completed so far).
    fn step(&self) -> u64;

    /// Advance one timestep. With recovery engaged, detected failures roll
    /// back to the last checkpoint, re-partition across survivors and
    /// replay — so one call may compute several steps, and `Ok` means the
    /// trajectory has advanced by exactly one step beyond where it was.
    fn advance_step(&mut self) -> Result<(), SimError>;

    /// Run all configured steps.
    fn run(&mut self) -> Result<(), SimError> {
        while self.step() < self.params().steps {
            self.advance_step()?;
        }
        Ok(())
    }

    fn history(&self) -> &TimeSeries;

    fn last_stats(&self) -> Option<StepStats> {
        self.history().steps.last().copied()
    }

    /// Assemble the full world (gathered from subdomains where distributed).
    fn gather_world(&self) -> World;

    /// Number of execution units (1 for serial, ranks for CPU, devices for
    /// GPU). May shrink after a recovery from rank death.
    fn n_units(&self) -> usize;

    /// Active work units right now (executor-specific granularity).
    fn active_units(&self) -> u64;

    /// Install a per-step metrics consumer; records flow from the next step.
    fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink<StepRecord>>);

    /// Attach a telemetry handle: driver steps, BSP supersteps, rank phases
    /// and (on the GPU executor) kernel phases record spans on it from the
    /// next step. Telemetry is pure observation — an attached handle never
    /// changes the trajectory.
    fn enable_telemetry(&mut self, tel: Telemetry);

    /// The attached telemetry handle (disabled handle when none was attached).
    fn telemetry_handle(&self) -> Telemetry;

    /// Engage online health monitoring (stragglers, load imbalance, comm
    /// spikes). Straggler detection needs per-rank walls, so attach
    /// telemetry first; no-op on the serial executor.
    fn enable_health(&mut self, cfg: HealthConfig);

    /// Every health finding so far, in detection order.
    fn health_records(&self) -> &[HealthRecord];

    /// Start recording runtime trace events (no-op for serial).
    fn enable_trace(&mut self);

    fn trace(&self) -> &Trace;

    /// Cumulative communication counters (zeros for serial).
    fn comm_counters(&self) -> CommCounters;

    /// Wire-side counters of the socket transport (`None` on the in-process
    /// mailbox path and on the serial executor).
    fn transport_counters(&self) -> Option<pgas::TransportCounters> {
        None
    }

    /// Cumulative work counters, including generations retired by recovery.
    fn total_counters(&self) -> DeviceCounters;

    /// Snapshot the full model state for later [`Simulation::restore`].
    fn checkpoint(&self) -> RunCheckpoint;

    /// Restore a [`Simulation::checkpoint`] — the world, vascular pool,
    /// history and step counter are replaced wholesale.
    fn restore(&mut self, cp: &RunCheckpoint) -> Result<(), SimError>;

    /// Every fault recovery performed so far, in order.
    fn recovery_log(&self) -> &[RecoveryRecord];

    /// Every integrity event detected so far, in order (empty on executors
    /// without an SDC defense).
    fn integrity_log(&self) -> &[IntegrityRecord] {
        &[]
    }

    /// Counters of the in-memory checkpoint store (zeros when recovery is
    /// not engaged).
    fn checkpoint_stats(&self) -> CheckpointStats {
        CheckpointStats::default()
    }

    /// Counters of the SDC defense (zeros when it is not engaged).
    fn integrity_stats(&self) -> IntegrityStats {
        IntegrityStats::default()
    }

    /// Point this simulation's intra-step parallelism at a shared pool (a
    /// batch scheduler running many simulations at once shares one). No-op
    /// on the serial executor. Never changes results — only which threads
    /// run the work.
    fn share_pool(&mut self, _pool: std::sync::Arc<pgas::WorkPool>) {}

    /// Start recording control-plane events for deterministic replay. The
    /// current control state becomes the replay starting point. No-op on
    /// executors without a control plane.
    fn enable_event_recording(&mut self) {}

    /// The recorded control-plane event log (empty when recording is off).
    fn event_log(&self) -> &[Event] {
        &[]
    }

    /// The live pure control-plane state (`None` where no state machine
    /// drives the executor).
    fn control_state(&self) -> Option<&DriverState> {
        None
    }

    /// The control-state snapshot event recording started from.
    fn replay_initial_state(&self) -> Option<&DriverState> {
        None
    }
}

impl<E: Executor> Simulation for E {
    fn name(&self) -> &'static str {
        self.exec_name()
    }

    fn params(&self) -> &SimParams {
        &self.core().params
    }

    fn step(&self) -> u64 {
        self.core().step
    }

    fn advance_step(&mut self) -> Result<(), SimError> {
        let target = self.core().step + 1;
        let tel = self.core().telemetry.clone();
        dispatch(self, Event::AdvanceRequested)?;
        // After a rollback `core.step` drops below `target`; the loop
        // replays the intermediate steps until the trajectory is one step
        // further than when we were called.
        while self.core().step < target {
            // Prologue: verify the canonical state *before* compute consumes
            // it and before a checkpoint could capture it. On a violation
            // the core rolls the run back to the newest verified generation.
            if self.core().integrity.is_some() {
                let verdict = scrub_verdict(self);
                dispatch(self, Event::Scrubbed { verdict })?;
            }
            if self.core().state.checkpoint_due() {
                let world = self.assemble_world();
                let core = self.core_mut();
                let step = core.step;
                let rm = core
                    .recovery
                    .as_mut()
                    .expect("checkpoint_due implies a recovery manager");
                rm.store.save(step, &world, &core.vascular, &core.history);
                dispatch(self, Event::CheckpointSaved { step })?;
            }
            let t = self.core().step;
            // Root of this step's span tree: supersteps parent to it via the
            // published step-parent slot.
            let step_open = tel.open();
            if tel.is_enabled() {
                tel.set_step_parent(step_open.id);
            }
            let start = self.core().metrics.as_ref().map(|_| Instant::now());
            let trials =
                TrialTable::build(&self.core().params, t, self.core().vascular.circulating());
            match self.compute_step(t, &trials) {
                Ok(partial) => {
                    dispatch(self, Event::StepComputed { step: t })?;
                    finish_step(self, t, partial, start);
                    epilogue_integrity(self, t)?;
                    if tel.is_enabled() {
                        observe_health(self, t, &tel);
                        tel.close(0, "step", SpanKind::Step, 0, step_open, t, 0);
                        if let Some(h) = self.core().step_hist.as_ref() {
                            h.observe(tel.now_ns().saturating_sub(step_open.start_ns));
                        }
                    }
                }
                Err(failure) => {
                    let attempt = self.core().state.attempt + 1;
                    if tel.is_enabled() {
                        tel.instant(0, "recovery", step_open.id, t, attempt as u64);
                        tel.close(0, "step", SpanKind::Step, 0, step_open, t, attempt as u64);
                    }
                    dispatch(self, Event::ComputeFailed { error: failure })?;
                }
            }
        }
        Ok(())
    }

    fn history(&self) -> &TimeSeries {
        &self.core().history
    }

    fn gather_world(&self) -> World {
        self.assemble_world()
    }

    fn n_units(&self) -> usize {
        self.unit_count()
    }

    fn active_units(&self) -> u64 {
        self.live_active_units()
    }

    fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink<StepRecord>>) {
        self.core_mut().metrics = Some(sink);
    }

    fn enable_telemetry(&mut self, tel: Telemetry) {
        self.core_mut().step_hist = tel.registry().map(|r| {
            r.histogram(
                "simcov_step_wall_ns",
                "Wall-clock nanoseconds per whole driver step",
            )
        });
        self.core_mut().telemetry = tel;
        self.attach_unit_telemetry();
    }

    fn telemetry_handle(&self) -> Telemetry {
        self.core().telemetry.clone()
    }

    fn enable_health(&mut self, cfg: HealthConfig) {
        let core = self.core_mut();
        core.health = Some(HealthMonitor::with_config(cfg));
        core.health_prev_comm = CommCounters::default();
    }

    fn health_records(&self) -> &[HealthRecord] {
        self.core()
            .health
            .as_ref()
            .map(|m| m.records())
            .unwrap_or(&[])
    }

    fn enable_trace(&mut self) {
        self.bsp_enable_trace();
    }

    fn trace(&self) -> &Trace {
        self.bsp_trace()
    }

    fn comm_counters(&self) -> CommCounters {
        self.bsp_counters()
    }

    fn transport_counters(&self) -> Option<pgas::TransportCounters> {
        self.wire_counters()
    }

    fn total_counters(&self) -> DeviceCounters {
        let mut total = self.core().retired_counters;
        total.merge(&self.live_counters());
        total
    }

    fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            step: self.core().step,
            world: self.assemble_world(),
            pool: self.core().vascular.clone(),
            history: self.core().history.clone(),
        }
    }

    fn restore(&mut self, cp: &RunCheckpoint) -> Result<(), SimError> {
        if cp.world.dims != self.core().params.dims {
            return Err(SimError::Restore(format!(
                "checkpoint dims {:?} do not match configured {:?}",
                cp.world.dims,
                self.core().params.dims
            )));
        }
        let n = self.unit_count();
        self.rebuild(&cp.world, n).map_err(SimError::Config)?;
        let core = self.core_mut();
        core.vascular = cp.pool.clone();
        core.history = cp.history.clone();
        core.step = cp.step;
        // The restored state starts a new timeline: recovery must never
        // roll back across it to a checkpoint from the old one.
        if let Some(rm) = core.recovery.as_mut() {
            rm.store = simcov_core::checkpoint::CheckpointStore::new();
        }
        // Likewise the seal: the old one described the replaced state.
        if let Some(mon) = core.integrity.as_mut() {
            mon.reseal(&cp.world, &cp.pool);
        }
        dispatch(self, Event::ExternalRestore { step: cp.step })?;
        Ok(())
    }

    fn recovery_log(&self) -> &[RecoveryRecord] {
        self.core()
            .recovery
            .as_ref()
            .map(|rm| rm.log.as_slice())
            .unwrap_or(&[])
    }

    fn integrity_log(&self) -> &[IntegrityRecord] {
        &self.core().integrity_log
    }

    fn checkpoint_stats(&self) -> CheckpointStats {
        self.core()
            .recovery
            .as_ref()
            .map(|rm| CheckpointStats {
                saves: rm.store.saves,
                full_bytes: rm.store.full_bytes,
                delta_bytes: rm.store.delta_bytes,
                quarantined: rm.store.quarantined,
            })
            .unwrap_or_default()
    }

    fn integrity_stats(&self) -> IntegrityStats {
        self.core()
            .integrity
            .as_ref()
            .map(|mon| IntegrityStats {
                scrubs_run: mon.scrubs_run,
                audits_run: mon.audits_run,
            })
            .unwrap_or_default()
    }

    fn share_pool(&mut self, pool: std::sync::Arc<pgas::WorkPool>) {
        self.core_mut().share_pool(pool);
    }

    fn enable_event_recording(&mut self) {
        self.core_mut().enable_event_recording();
    }

    fn event_log(&self) -> &[Event] {
        self.core().event_log.as_deref().unwrap_or(&[])
    }

    fn control_state(&self) -> Option<&DriverState> {
        Some(&self.core().state)
    }

    fn replay_initial_state(&self) -> Option<&DriverState> {
        Some(&self.core().initial_state)
    }
}

/// Post-step health observation: drain the BSP layer's per-superstep rank
/// walls (always, so the buffer never grows unboundedly), then — when a
/// monitor is engaged — feed walls, per-unit active counts and the step's
/// comm-byte delta through it, and stamp any fresh finding onto the trace
/// timeline as an instant marker under the current step span.
fn observe_health<E: Executor + ?Sized>(exec: &mut E, t: u64, tel: &Telemetry) {
    let walls = exec.take_rank_walls();
    if exec.core().health.is_none() {
        return;
    }
    let active = exec.per_unit_active();
    let comm = exec.bsp_counters();
    let now = tel.now_ns();
    let step_span = tel.step_parent();
    let core = exec.core_mut();
    let delta_bytes = (comm.bytes + comm.bulk_bytes)
        .saturating_sub(core.health_prev_comm.bytes + core.health_prev_comm.bulk_bytes);
    core.health_prev_comm = comm;
    let mon = core.health.as_mut().expect("checked above");
    let mut fresh = Vec::new();
    for w in &walls {
        fresh.extend(mon.observe_superstep(t, w.superstep, now, &w.walls));
    }
    fresh.extend(mon.observe_step(t, now, &active, delta_bytes));
    for r in &fresh {
        tel.instant(0, r.kind.label(), step_span, r.superstep, 0);
    }
}

/// Fold a completed step into the shared state and emit its record.
fn finish_step<E: Executor + ?Sized>(
    exec: &mut E,
    t: u64,
    partial: StatsPartial,
    start: Option<Instant>,
) {
    let mut stats = partial.finalize();
    {
        let core = exec.core_mut();
        let (rate, delay, period) = (
            core.params.tcell_generation_rate,
            core.params.tcell_initial_delay,
            core.params.tcell_vascular_period,
        );
        core.vascular
            .advance(t, rate, delay, period, stats.extravasated);
        stats.tcells_vasculature = core.vascular.circulating();
        stats.step = t;
        core.history.push(stats);
        core.step = t + 1;
    }
    if exec.core().metrics.is_some() {
        emit_step_record(exec, t, stats, start);
    }
}

/// Publish one [`StepRecord`]. Replayed steps (after a rollback) emit again
/// under the same step number — replay cost is visible in the stream, and
/// the recoveries that triggered it ride on the first record emitted after
/// them.
fn emit_step_record<E: Executor + ?Sized>(
    exec: &mut E,
    step: u64,
    stats: StepStats,
    start: Option<Instant>,
) {
    let comm = exec.bsp_counters();
    let active_units = exec.live_active_units();
    let units = exec.unit_count().max(1) as f64;
    let model = CostModel::default();
    let mut total = exec.core().retired_counters;
    total.merge(&exec.live_counters());
    let hw = exec.hw_profile(&model);
    let core = exec.core_mut();
    let snap = core.snapshots.take(step, &total, &model, hw);
    let prev = core.prev_comm;
    let rec = StepRecord {
        step,
        agents: stats.tcells_tissue,
        virions: stats.virions,
        chemokine: stats.chemokine,
        active_units,
        comm_messages: (comm.messages + comm.bulk_messages) - (prev.messages + prev.bulk_messages),
        comm_bytes: (comm.bytes + comm.bulk_bytes) - (prev.bytes + prev.bulk_bytes),
        sim_seconds: snap.cost.total() / units,
        real_seconds: start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0),
        phases: snap,
        recoveries: std::mem::take(&mut core.pending_recoveries),
        integrity: std::mem::take(&mut core.pending_integrity),
    };
    core.prev_comm = comm;
    if let Some(sink) = core.metrics.as_mut() {
        sink.record(rec);
    }
}

/// Feed one observation into the pure core and execute every effect it
/// requests, in order. The store's answer to a rollback query is itself an
/// observation, so [`Effect::FetchRollbackTarget`] enqueues a follow-up
/// [`Event::RollbackTargetFetched`] — the queue drains until the core is
/// quiescent. When event recording is on, every applied event (including
/// the store answers) lands in the log, so a replay needs no store.
fn dispatch<E: Executor + ?Sized>(exec: &mut E, event: Event) -> Result<(), SimError> {
    let mut queue = VecDeque::new();
    queue.push_back(event);
    while let Some(ev) = queue.pop_front() {
        if let Some(log) = exec.core_mut().event_log.as_mut() {
            log.push(ev.clone());
        }
        let state = std::mem::take(&mut exec.core_mut().state);
        let (next, effects) = state.apply(ev);
        exec.core_mut().state = next;
        for eff in effects {
            match eff {
                Effect::EmitIntegrity(rec) => exec.core_mut().push_integrity(rec),
                Effect::EmitRecovery(rec) => {
                    let core = exec.core_mut();
                    if let Some(rm) = core.recovery.as_mut() {
                        rm.log.push(rec.clone());
                    }
                    core.pending_recoveries.push(rec);
                }
                Effect::FetchRollbackTarget { verified_only } => {
                    let (cp, quarantined) = {
                        let rm = exec
                            .core_mut()
                            .recovery
                            .as_mut()
                            .expect("a rollback query implies a recovery manager");
                        if verified_only {
                            let before = rm.store.quarantined;
                            let cp = rm.store.latest_verified().cloned();
                            (cp, rm.store.quarantined - before)
                        } else {
                            (rm.store.latest().cloned(), 0)
                        }
                    };
                    let step = cp.as_ref().map(|c| c.step);
                    exec.core_mut().staged_rollback = cp;
                    queue.push_back(Event::RollbackTargetFetched { step, quarantined });
                }
                Effect::Rollback { survivors } => perform_rollback(exec, survivors)?,
                Effect::Halt(cause) => return Err(cause_to_error(cause)),
            }
        }
    }
    Ok(())
}

/// Map a terminal [`StopCause`] onto the public error surface.
fn cause_to_error(cause: StopCause) -> SimError {
    match cause {
        StopCause::Unrecoverable(e) => SimError::Unrecoverable(e),
        StopCause::RetriesExhausted { last, attempts } => {
            SimError::RetriesExhausted { last, attempts }
        }
        StopCause::Integrity { step, violation } => SimError::Integrity { step, violation },
    }
}

/// Prologue observation while the SDC defense is engaged: scrub the
/// canonical state against last step's seal, and run the invariant audit
/// when due. Pure detection only — what happens on a violation is the
/// core's decision.
fn scrub_verdict<E: Executor + ?Sized>(exec: &mut E) -> Option<ScrubVerdict> {
    let step = exec.core().step;
    let audit_due = exec
        .core()
        .integrity
        .as_ref()
        .is_some_and(|mon| mon.audit_due(step));
    let world = exec.assemble_world();
    let core = exec.core_mut();
    let mon = core.integrity.as_mut()?;
    match mon.scrub(&world, &core.vascular) {
        Err(v) => Some(ScrubVerdict {
            violation: v,
            detector: IntegrityDetector::SealScrub,
        }),
        Ok(()) if audit_due => mon
            .audit(&world, &core.vascular)
            .err()
            .map(|v| ScrubVerdict {
                violation: v,
                detector: IntegrityDetector::InvariantAudit,
            }),
        Ok(()) => None,
    }
}

/// Execute a decided rollback: retire the live work counters before the
/// unit collection is torn down (so totals never lose the failed epoch's
/// work), re-partition over the staged checkpoint's world, swap in its
/// pool/history/step, and reseal.
fn perform_rollback<E: Executor + ?Sized>(exec: &mut E, survivors: usize) -> Result<(), SimError> {
    let cp = exec
        .core_mut()
        .staged_rollback
        .take()
        .expect("a Rollback effect follows a successful target fetch");
    let live = exec.live_counters();
    exec.core_mut().retired_counters.merge(&live);
    exec.rebuild(&cp.world, survivors)
        .map_err(SimError::Config)?;
    let core = exec.core_mut();
    core.vascular = cp.pool;
    core.history = cp.history;
    core.step = cp.step;
    if let Some(mon) = core.integrity.as_mut() {
        mon.reseal(&cp.world, &core.vascular);
    }
    Ok(())
}

/// Epilogue of every completed step: report the BSP layer's in-barrier heal
/// records to the core, reseal the post-step state, then apply any
/// scheduled state corruption *after* the seal — so the flip lands on
/// sealed state and the next prologue scrub is guaranteed to catch it.
fn epilogue_integrity<E: Executor + ?Sized>(exec: &mut E, t: u64) -> Result<(), SimError> {
    let heals = exec.take_bsp_integrity_records();
    if !heals.is_empty() {
        dispatch(
            exec,
            Event::BarrierHeals {
                step: t,
                records: heals,
            },
        )?;
    }
    if exec.core().integrity.is_some() {
        let world = exec.assemble_world();
        let core = exec.core_mut();
        if let Some(mon) = core.integrity.as_mut() {
            mon.reseal(&world, &core.vascular);
        }
    }
    let pending = exec.take_pending_state_corruptions();
    for p in pending {
        let unit = p.rank % exec.unit_count().max(1);
        exec.corrupt_unit_state(unit, p.seed);
        dispatch(
            exec,
            Event::CorruptionApplied {
                step: t,
                superstep: p.superstep,
            },
        )?;
    }
    Ok(())
}

/// The serial reference executor behind the unified driver API.
///
/// [`SerialSim`] has no runtime (no ranks, no mailboxes, no fault surface),
/// so it implements [`Simulation`] directly rather than through
/// [`Executor`]: traces and communication counters are empty, recovery is
/// unavailable, and checkpoint/restore operate on the whole world.
pub struct SerialDriver {
    sim: SerialSim,
    metrics: Option<Box<dyn MetricsSink<StepRecord>>>,
    /// Permanently-disabled trace handed out by [`Simulation::trace`].
    empty_trace: Trace,
    /// Attached telemetry: serial steps record flat `step` spans (no
    /// supersteps or ranks exist to nest under them).
    telemetry: Telemetry,
    /// Pure control state: the serial executor has no fault surface, so
    /// this only tracks the step counter — but it keeps the replay
    /// machinery uniform across all three executors.
    state: DriverState,
    /// Snapshot the event log replays from (see `enable_event_recording`).
    initial_state: DriverState,
    event_log: Option<Vec<Event>>,
}

impl SerialDriver {
    pub fn new(params: SimParams) -> Result<Self, ConfigError> {
        Self::with_pattern(params, FoiPattern::UniformLattice)
    }

    pub fn with_pattern(params: SimParams, pattern: FoiPattern) -> Result<Self, ConfigError> {
        params.validate().map_err(ConfigError::InvalidParams)?;
        Ok(SerialDriver {
            sim: SerialSim::with_pattern(params, pattern),
            metrics: None,
            empty_trace: Trace::disabled(),
            telemetry: Telemetry::disabled(),
            state: DriverState::initial(1, None, false),
            initial_state: DriverState::initial(1, None, false),
            event_log: None,
        })
    }

    pub fn from_world(params: SimParams, world: World) -> Result<Self, ConfigError> {
        params.validate().map_err(ConfigError::InvalidParams)?;
        if world.dims != params.dims {
            return Err(ConfigError::DimsMismatch {
                expected: params.dims,
                got: world.dims,
            });
        }
        Ok(SerialDriver {
            sim: SerialSim::from_world(params, world),
            metrics: None,
            empty_trace: Trace::disabled(),
            telemetry: Telemetry::disabled(),
            state: DriverState::initial(1, None, false),
            initial_state: DriverState::initial(1, None, false),
            event_log: None,
        })
    }

    pub fn inner(&self) -> &SerialSim {
        &self.sim
    }

    pub fn inner_mut(&mut self) -> &mut SerialSim {
        &mut self.sim
    }

    /// Apply one control event to the serial executor's pure state. The
    /// serial core never requests effects (no recovery, no integrity),
    /// which the debug assertion pins down.
    fn record(&mut self, ev: Event) {
        if let Some(log) = self.event_log.as_mut() {
            log.push(ev.clone());
        }
        let state = std::mem::take(&mut self.state);
        let (next, effects) = state.apply(ev);
        debug_assert!(effects.is_empty(), "serial control plane is effect-free");
        self.state = next;
    }
}

impl Simulation for SerialDriver {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn params(&self) -> &SimParams {
        &self.sim.params
    }

    fn step(&self) -> u64 {
        self.sim.step
    }

    fn advance_step(&mut self) -> Result<(), SimError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let t = self.sim.step;
        self.record(Event::AdvanceRequested);
        let step_open = self.telemetry.open();
        self.sim.advance_step();
        self.record(Event::StepComputed { step: t });
        self.telemetry
            .close(0, "step", SpanKind::Step, 0, step_open, t, 0);
        if let Some(sink) = self.metrics.as_mut() {
            let s = self.sim.last_stats().copied().unwrap_or_default();
            sink.record(StepRecord {
                step: t,
                agents: s.tcells_tissue,
                virions: s.virions,
                chemokine: s.chemokine,
                active_units: self.sim.world.nvoxels() as u64,
                real_seconds: start.map(|i| i.elapsed().as_secs_f64()).unwrap_or(0.0),
                ..Default::default()
            });
        }
        Ok(())
    }

    fn history(&self) -> &TimeSeries {
        &self.sim.history
    }

    fn gather_world(&self) -> World {
        self.sim.world.clone()
    }

    fn n_units(&self) -> usize {
        1
    }

    /// The serial executor sweeps every voxel every step.
    fn active_units(&self) -> u64 {
        self.sim.world.nvoxels() as u64
    }

    fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink<StepRecord>>) {
        self.metrics = Some(sink);
    }

    fn enable_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = tel;
    }

    fn telemetry_handle(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// No ranks, no supersteps: there is nothing for the monitor to watch.
    fn enable_health(&mut self, _cfg: HealthConfig) {}

    fn health_records(&self) -> &[HealthRecord] {
        &[]
    }

    fn enable_trace(&mut self) {}

    fn trace(&self) -> &Trace {
        &self.empty_trace
    }

    fn comm_counters(&self) -> CommCounters {
        CommCounters::new()
    }

    fn total_counters(&self) -> DeviceCounters {
        DeviceCounters::new()
    }

    fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            step: self.sim.step,
            world: self.sim.world.clone(),
            pool: self.sim.pool.clone(),
            history: self.sim.history.clone(),
        }
    }

    fn restore(&mut self, cp: &RunCheckpoint) -> Result<(), SimError> {
        if cp.world.dims != self.sim.params.dims {
            return Err(SimError::Restore(format!(
                "checkpoint dims {:?} do not match configured {:?}",
                cp.world.dims, self.sim.params.dims
            )));
        }
        self.sim.world = cp.world.clone();
        self.sim.pool = cp.pool.clone();
        self.sim.history = cp.history.clone();
        self.sim.step = cp.step;
        self.record(Event::ExternalRestore { step: cp.step });
        Ok(())
    }

    fn recovery_log(&self) -> &[RecoveryRecord] {
        &[]
    }

    fn enable_event_recording(&mut self) {
        self.initial_state = self.state.clone();
        self.event_log = Some(Vec::new());
    }

    fn event_log(&self) -> &[Event] {
        self.event_log.as_deref().unwrap_or(&[])
    }

    fn control_state(&self) -> Option<&DriverState> {
        Some(&self.state)
    }

    fn replay_initial_state(&self) -> Option<&DriverState> {
        Some(&self.initial_state)
    }
}
