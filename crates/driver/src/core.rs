//! The shared driver core: state and bookkeeping common to every executor.
//!
//! `CpuSim` and `GpuSim` were ~300-line near-duplicates; everything that is
//! not executor-specific (parameters, partition, vascular pool, history,
//! metrics plumbing, comm-delta bookkeeping, recovery state) now lives here
//! once, embedded by both.

use gpusim::metrics::{MetricsSink, SnapshotTaker, StepRecord};
use gpusim::DeviceCounters;
use pgas::fault::{FaultPlan, IntegrityRecord, RecoveryRecord};
use pgas::{CommCounters, WorkPool};
use simcov_core::checkpoint::CheckpointStore;
use simcov_core::checkpoint::RunCheckpoint;
use simcov_core::decomp::{Partition, Strategy};
use simcov_core::integrity::{IntegrityMonitor, DEFAULT_AUDIT_PERIOD};
use simcov_core::params::SimParams;
use simcov_core::stats::TimeSeries;
use simcov_core::tcell::VascularPool;
use simcov_core::world::World;
use simcov_telemetry::{HealthMonitor, Histogram, Telemetry};
use std::sync::Arc;

use crate::error::ConfigError;
use crate::state::{DriverState, Event};

/// How the driver checkpoints and retries around injected/detected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Steps between in-memory incremental checkpoints. A checkpoint is
    /// always taken before the first step; shorter periods bound replay
    /// cost at the price of more frequent snapshots.
    pub checkpoint_period: u64,
    /// Consecutive failed attempts at one step before giving up.
    pub max_retries: u32,
    /// Simulated exponential backoff base before retry `k`
    /// (`base << (k-1)` ns) — metered, never slept.
    pub backoff_base_ns: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_period: 16,
            max_retries: 8,
            backoff_base_ns: 1_000_000,
        }
    }
}

impl RecoveryPolicy {
    /// Simulated backoff before retry `attempt` (1-based): `base << (attempt-1)`,
    /// saturating at `u64::MAX` instead of overflowing once the shift would
    /// push bits off the top — a hostile or runaway retry count must not
    /// wrap the meter back to small values.
    ///
    /// Saturation is decided by round-tripping the shift (`checked_shl`
    /// then shift back) rather than comparing against `leading_zeros`, so
    /// the result is provably exact for every base, including multi-bit
    /// bases sitting right at the boundary.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        if self.backoff_base_ns == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1);
        match self.backoff_base_ns.checked_shl(shift) {
            Some(v) if v >> shift == self.backoff_base_ns => v,
            _ => u64::MAX,
        }
    }
}

/// Recovery state for one run: the policy, the incremental checkpoint
/// store, and the log of every recovery performed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryManager {
    pub policy: RecoveryPolicy,
    pub store: CheckpointStore,
    pub log: Vec<RecoveryRecord>,
}

impl RecoveryManager {
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryManager {
            policy,
            store: CheckpointStore::new(),
            log: Vec::new(),
        }
    }
}

/// State shared by every executor: everything a driver owns that is not the
/// rank/device collection or the typed BSP mailboxes.
pub struct DriverCore {
    pub params: SimParams,
    pub strategy: Strategy,
    pub partition: Partition,
    /// Thread pool for intra-step parallelism. Shared (`Arc`) so a batch
    /// scheduler can point many concurrent simulations at one pool instead
    /// of oversubscribing the host with a per-job pool each.
    pub pool: Arc<WorkPool>,
    pub vascular: VascularPool,
    pub step: u64,
    pub history: TimeSeries,
    /// Installed per-step metrics consumer (None: metrics are off and the
    /// step loop takes no clock readings).
    pub metrics: Option<Box<dyn MetricsSink<StepRecord>>>,
    pub snapshots: SnapshotTaker,
    pub prev_comm: CommCounters,
    /// Cross-layer telemetry handle (disabled by default: every span site
    /// reduces to one branch and no clock reads).
    pub telemetry: Telemetry,
    /// Wall-clock histogram of whole driver steps, registered on the
    /// telemetry registry when telemetry is attached.
    pub step_hist: Option<Histogram>,
    /// Online health monitor (None: no straggler / imbalance / comm-spike
    /// detection). Requires telemetry for per-rank superstep walls.
    pub health: Option<HealthMonitor>,
    /// Comm counters at the last health observation, for per-step deltas
    /// (independent of the metrics sink's own `prev_comm` bookkeeping).
    pub health_prev_comm: CommCounters,
    /// Work counters of unit generations destroyed by recovery rebuilds;
    /// totals are `retired + live` so recovered work is never lost.
    pub retired_counters: DeviceCounters,
    /// Engaged recovery machinery (None: failures are fatal).
    pub recovery: Option<RecoveryManager>,
    /// Recoveries completed since the last emitted step record.
    pub pending_recoveries: Vec<RecoveryRecord>,
    /// Engaged SDC defense (None: no scrubbing or auditing).
    pub integrity: Option<IntegrityMonitor>,
    /// Integrity events detected since the last emitted step record.
    pub pending_integrity: Vec<IntegrityRecord>,
    /// Every integrity event of the run, in detection order (the SDC sweep
    /// reads this even when no metrics sink is installed).
    pub integrity_log: Vec<IntegrityRecord>,
    /// The pure control-plane state; every recovery/checkpoint/quarantine
    /// decision is made by `state.apply(event)` — the shell only executes
    /// the returned effects.
    pub state: DriverState,
    /// Snapshot of `state` taken when event recording was enabled — the
    /// starting point a recorded log replays from.
    pub initial_state: DriverState,
    /// Recorded control-plane events (`None`: recording off).
    pub event_log: Option<Vec<Event>>,
    /// Rollback checkpoint staged by a `FetchRollbackTarget` effect,
    /// consumed by the following `Rollback` effect.
    pub staged_rollback: Option<RunCheckpoint>,
}

impl DriverCore {
    /// Validate shared configuration and build the core. `fault_plan`
    /// non-empty or an explicit `policy` engages recovery.
    pub fn new(
        params: SimParams,
        n_units: usize,
        strategy: Strategy,
        fault_plan: &FaultPlan,
        policy: Option<RecoveryPolicy>,
    ) -> Result<Self, ConfigError> {
        params.validate().map_err(ConfigError::InvalidParams)?;
        if n_units == 0 {
            return Err(ConfigError::ZeroUnits);
        }
        let partition =
            Partition::try_new(params.dims, n_units, strategy).map_err(ConfigError::Partition)?;
        let recovery = match (policy, fault_plan.is_exhausted()) {
            (Some(p), _) => Some(RecoveryManager::new(p)),
            (None, false) => Some(RecoveryManager::new(RecoveryPolicy::default())),
            (None, true) => None,
        };
        // A plan that can corrupt silently engages the SDC defense at the
        // default audit cadence; executors can tighten it via their configs.
        let integrity = fault_plan
            .has_corruption()
            .then(|| IntegrityMonitor::new(DEFAULT_AUDIT_PERIOD));
        let state = DriverState::initial(
            n_units,
            recovery.as_ref().map(|rm| rm.policy),
            integrity.is_some(),
        );
        Ok(DriverCore {
            params,
            strategy,
            partition,
            pool: Arc::new(WorkPool::host_sized()),
            vascular: VascularPool::new(),
            step: 0,
            history: TimeSeries::default(),
            metrics: None,
            snapshots: SnapshotTaker::new(),
            prev_comm: CommCounters::default(),
            telemetry: Telemetry::disabled(),
            step_hist: None,
            health: None,
            health_prev_comm: CommCounters::default(),
            retired_counters: DeviceCounters::new(),
            recovery: None,
            pending_recoveries: Vec::new(),
            integrity,
            pending_integrity: Vec::new(),
            integrity_log: Vec::new(),
            initial_state: state.clone(),
            state,
            event_log: None,
            staged_rollback: None,
        }
        .with_recovery_manager(recovery))
    }

    fn with_recovery_manager(mut self, recovery: Option<RecoveryManager>) -> Self {
        self.recovery = recovery;
        self
    }

    /// Replace the private host-sized pool with a shared one. Scheduling is
    /// dynamic self-claiming, so swapping pools never changes results —
    /// only which threads execute the work items.
    pub fn share_pool(&mut self, pool: Arc<WorkPool>) {
        self.pool = pool;
    }

    /// Check an explicit initial world against the configured grid.
    pub fn check_world(&self, world: &World) -> Result<(), ConfigError> {
        if world.dims != self.params.dims {
            return Err(ConfigError::DimsMismatch {
                expected: self.params.dims,
                got: world.dims,
            });
        }
        Ok(())
    }

    /// Engage (or retune) the SDC defense: scrub every step, audit every
    /// `audit_period` steps (0 = scrub only).
    pub fn enable_integrity(&mut self, audit_period: u64) {
        match self.integrity.as_mut() {
            Some(mon) => mon.audit_period = audit_period,
            None => self.integrity = Some(IntegrityMonitor::new(audit_period)),
        }
        // Configuration-time change: both the live control state and the
        // replay starting point see the defense engaged.
        self.state.integrity_on = true;
        self.initial_state.integrity_on = true;
    }

    /// Start recording control-plane events for deterministic replay. The
    /// current control state becomes the replay starting point.
    pub fn enable_event_recording(&mut self) {
        self.initial_state = self.state.clone();
        self.event_log = Some(Vec::new());
    }

    /// Record one integrity event on the log and (when a metrics sink is
    /// installed) the pending stream the next step record drains.
    pub fn push_integrity(&mut self, rec: IntegrityRecord) {
        if self.metrics.is_some() {
            self.pending_integrity.push(rec.clone());
        }
        self.integrity_log.push(rec);
    }

    /// Is a checkpoint due before computing the current step? Delegates to
    /// the pure control state, which mirrors the store's newest generation
    /// on the current timeline.
    pub fn checkpoint_due(&self) -> bool {
        self.state.checkpoint_due()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_saturates_instead_of_wrapping() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.backoff_ns(0), policy.backoff_base_ns);
        assert_eq!(policy.backoff_ns(1), policy.backoff_base_ns);
        assert_eq!(policy.backoff_ns(2), policy.backoff_base_ns * 2);
        assert_eq!(policy.backoff_ns(5), policy.backoff_base_ns * 16);
        // 1_000_000 ≈ 2^20: shift 44 is the last that fits, 45 saturates.
        assert_eq!(policy.backoff_ns(45), 1_000_000u64 << 44);
        assert_eq!(policy.backoff_ns(46), u64::MAX);
        assert_eq!(policy.backoff_ns(u32::MAX), u64::MAX);
        // Exactly at the boundary: the largest shift that still fits.
        let p1 = RecoveryPolicy {
            backoff_base_ns: 1,
            ..policy
        };
        assert_eq!(p1.backoff_ns(64), 1u64 << 63);
        assert_eq!(p1.backoff_ns(65), u64::MAX);
        let p0 = RecoveryPolicy {
            backoff_base_ns: 0,
            ..policy
        };
        assert_eq!(p0.backoff_ns(u32::MAX), 0);
    }

    /// Regression: multi-bit bases at the shift boundary. A base with more
    /// than one significant bit (3 = 0b11) still fits when its top bit
    /// lands exactly on bit 63 and must saturate one attempt later — the
    /// round-trip check cannot silently drop high bits the way a mistuned
    /// `leading_zeros` comparison could.
    #[test]
    fn backoff_multi_bit_base_boundary_is_exact() {
        let base = |b: u64| RecoveryPolicy {
            backoff_base_ns: b,
            ..RecoveryPolicy::default()
        };
        // base 3: top bit at 1, so shift 62 (attempt 63) is the last exact
        // value and shift 63 (attempt 64) saturates.
        assert_eq!(base(3).backoff_ns(63), 3u64 << 62);
        assert_eq!(base(3).backoff_ns(64), u64::MAX);
        // base 5 (0b101): same boundary, different low bits.
        assert_eq!(base(5).backoff_ns(62), 5u64 << 61);
        assert_eq!(base(5).backoff_ns(63), u64::MAX);
        // All-ones base: any shift at all drops bits.
        assert_eq!(base(u64::MAX).backoff_ns(1), u64::MAX);
        assert_eq!(base(u64::MAX).backoff_ns(2), u64::MAX);
        // Exactness everywhere below the boundary, for every bit position.
        for top in 0..64u32 {
            let b = 1u64 << top;
            let last_exact = 64 - top; // attempt whose shift puts the top bit at 63
            assert_eq!(base(b).backoff_ns(last_exact), b << (last_exact - 1));
            assert_eq!(base(b).backoff_ns(last_exact + 1), u64::MAX);
        }
        // Monotone non-decreasing in attempt for a handful of bases.
        for b in [1u64, 2, 3, 5, 7, 1_000_000, u64::MAX / 3] {
            let p = base(b);
            let mut prev = 0;
            for attempt in 0..200 {
                let v = p.backoff_ns(attempt);
                assert!(
                    v >= prev,
                    "backoff regressed at attempt {attempt} (base {b})"
                );
                prev = v;
            }
        }
    }
}
