//! The shared driver core: state and bookkeeping common to every executor.
//!
//! `CpuSim` and `GpuSim` were ~300-line near-duplicates; everything that is
//! not executor-specific (parameters, partition, vascular pool, history,
//! metrics plumbing, comm-delta bookkeeping, recovery state) now lives here
//! once, embedded by both.

use gpusim::metrics::{MetricsSink, SnapshotTaker, StepRecord};
use gpusim::DeviceCounters;
use pgas::fault::{FaultPlan, IntegrityRecord, PendingStateCorruption, RecoveryRecord};
use pgas::{CommCounters, WorkPool};
use simcov_core::checkpoint::CheckpointStore;
use simcov_core::decomp::{Partition, Strategy};
use simcov_core::integrity::{IntegrityMonitor, DEFAULT_AUDIT_PERIOD};
use simcov_core::params::SimParams;
use simcov_core::stats::TimeSeries;
use simcov_core::tcell::VascularPool;
use simcov_core::world::World;
use simcov_telemetry::{HealthMonitor, Histogram, Telemetry};

use crate::error::ConfigError;

/// How the driver checkpoints and retries around injected/detected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Steps between in-memory incremental checkpoints. A checkpoint is
    /// always taken before the first step; shorter periods bound replay
    /// cost at the price of more frequent snapshots.
    pub checkpoint_period: u64,
    /// Consecutive failed attempts at one step before giving up.
    pub max_retries: u32,
    /// Simulated exponential backoff base before retry `k`
    /// (`base << (k-1)` ns) — metered, never slept.
    pub backoff_base_ns: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_period: 16,
            max_retries: 8,
            backoff_base_ns: 1_000_000,
        }
    }
}

impl RecoveryPolicy {
    /// Simulated backoff before retry `attempt` (1-based): `base << (attempt-1)`,
    /// saturating at `u64::MAX` instead of overflowing once the shift would
    /// push bits off the top — a hostile or runaway retry count must not
    /// wrap the meter back to small values.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        if self.backoff_base_ns == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1);
        if shift > self.backoff_base_ns.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base_ns << shift
        }
    }
}

/// Recovery state for one run: the policy, the incremental checkpoint
/// store, and the log of every recovery performed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryManager {
    pub policy: RecoveryPolicy,
    pub store: CheckpointStore,
    pub log: Vec<RecoveryRecord>,
}

impl RecoveryManager {
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryManager {
            policy,
            store: CheckpointStore::new(),
            log: Vec::new(),
        }
    }
}

/// State shared by every executor: everything a driver owns that is not the
/// rank/device collection or the typed BSP mailboxes.
pub struct DriverCore {
    pub params: SimParams,
    pub strategy: Strategy,
    pub partition: Partition,
    pub pool: WorkPool,
    pub vascular: VascularPool,
    pub step: u64,
    pub history: TimeSeries,
    /// Installed per-step metrics consumer (None: metrics are off and the
    /// step loop takes no clock readings).
    pub metrics: Option<Box<dyn MetricsSink<StepRecord>>>,
    pub snapshots: SnapshotTaker,
    pub prev_comm: CommCounters,
    /// Cross-layer telemetry handle (disabled by default: every span site
    /// reduces to one branch and no clock reads).
    pub telemetry: Telemetry,
    /// Wall-clock histogram of whole driver steps, registered on the
    /// telemetry registry when telemetry is attached.
    pub step_hist: Option<Histogram>,
    /// Online health monitor (None: no straggler / imbalance / comm-spike
    /// detection). Requires telemetry for per-rank superstep walls.
    pub health: Option<HealthMonitor>,
    /// Comm counters at the last health observation, for per-step deltas
    /// (independent of the metrics sink's own `prev_comm` bookkeeping).
    pub health_prev_comm: CommCounters,
    /// Work counters of unit generations destroyed by recovery rebuilds;
    /// totals are `retired + live` so recovered work is never lost.
    pub retired_counters: DeviceCounters,
    /// Engaged recovery machinery (None: failures are fatal).
    pub recovery: Option<RecoveryManager>,
    /// Recoveries completed since the last emitted step record.
    pub pending_recoveries: Vec<RecoveryRecord>,
    /// Engaged SDC defense (None: no scrubbing or auditing).
    pub integrity: Option<IntegrityMonitor>,
    /// Integrity events detected since the last emitted step record.
    pub pending_integrity: Vec<IntegrityRecord>,
    /// Every integrity event of the run, in detection order (the SDC sweep
    /// reads this even when no metrics sink is installed).
    pub integrity_log: Vec<IntegrityRecord>,
    /// State corruptions applied to unit state whose detection is still
    /// outstanding — consumed (oldest first) when a scrub or audit fires to
    /// attribute the detection to its injection step.
    pub outstanding_corruptions: Vec<PendingStateCorruption>,
    /// Simulation step at which each outstanding corruption was applied,
    /// parallel to `outstanding_corruptions`.
    pub outstanding_steps: Vec<u64>,
}

impl DriverCore {
    /// Validate shared configuration and build the core. `fault_plan`
    /// non-empty or an explicit `policy` engages recovery.
    pub fn new(
        params: SimParams,
        n_units: usize,
        strategy: Strategy,
        fault_plan: &FaultPlan,
        policy: Option<RecoveryPolicy>,
    ) -> Result<Self, ConfigError> {
        params.validate().map_err(ConfigError::InvalidParams)?;
        if n_units == 0 {
            return Err(ConfigError::ZeroUnits);
        }
        let partition =
            Partition::try_new(params.dims, n_units, strategy).map_err(ConfigError::Partition)?;
        let recovery = match (policy, fault_plan.is_exhausted()) {
            (Some(p), _) => Some(RecoveryManager::new(p)),
            (None, false) => Some(RecoveryManager::new(RecoveryPolicy::default())),
            (None, true) => None,
        };
        // A plan that can corrupt silently engages the SDC defense at the
        // default audit cadence; executors can tighten it via their configs.
        let integrity = fault_plan
            .has_corruption()
            .then(|| IntegrityMonitor::new(DEFAULT_AUDIT_PERIOD));
        Ok(DriverCore {
            params,
            strategy,
            partition,
            pool: WorkPool::host_sized(),
            vascular: VascularPool::new(),
            step: 0,
            history: TimeSeries::default(),
            metrics: None,
            snapshots: SnapshotTaker::new(),
            prev_comm: CommCounters::default(),
            telemetry: Telemetry::disabled(),
            step_hist: None,
            health: None,
            health_prev_comm: CommCounters::default(),
            retired_counters: DeviceCounters::new(),
            recovery: None,
            pending_recoveries: Vec::new(),
            integrity,
            pending_integrity: Vec::new(),
            integrity_log: Vec::new(),
            outstanding_corruptions: Vec::new(),
            outstanding_steps: Vec::new(),
        }
        .with_recovery_manager(recovery))
    }

    fn with_recovery_manager(mut self, recovery: Option<RecoveryManager>) -> Self {
        self.recovery = recovery;
        self
    }

    /// Check an explicit initial world against the configured grid.
    pub fn check_world(&self, world: &World) -> Result<(), ConfigError> {
        if world.dims != self.params.dims {
            return Err(ConfigError::DimsMismatch {
                expected: self.params.dims,
                got: world.dims,
            });
        }
        Ok(())
    }

    /// Engage (or retune) the SDC defense: scrub every step, audit every
    /// `audit_period` steps (0 = scrub only).
    pub fn enable_integrity(&mut self, audit_period: u64) {
        match self.integrity.as_mut() {
            Some(mon) => mon.audit_period = audit_period,
            None => self.integrity = Some(IntegrityMonitor::new(audit_period)),
        }
    }

    /// Record one integrity event on the log and (when a metrics sink is
    /// installed) the pending stream the next step record drains.
    pub fn push_integrity(&mut self, rec: IntegrityRecord) {
        if self.metrics.is_some() {
            self.pending_integrity.push(rec.clone());
        }
        self.integrity_log.push(rec);
    }

    /// Is a checkpoint due before computing the current step?
    pub fn checkpoint_due(&self) -> bool {
        match &self.recovery {
            None => false,
            Some(rm) => match rm.store.latest() {
                None => true,
                Some(cp) => self.step >= cp.step + rm.policy.checkpoint_period.max(1),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_saturates_instead_of_wrapping() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.backoff_ns(0), policy.backoff_base_ns);
        assert_eq!(policy.backoff_ns(1), policy.backoff_base_ns);
        assert_eq!(policy.backoff_ns(2), policy.backoff_base_ns * 2);
        assert_eq!(policy.backoff_ns(5), policy.backoff_base_ns * 16);
        // 1_000_000 ≈ 2^20: shift 44 is the last that fits, 45 saturates.
        assert_eq!(policy.backoff_ns(45), 1_000_000u64 << 44);
        assert_eq!(policy.backoff_ns(46), u64::MAX);
        assert_eq!(policy.backoff_ns(u32::MAX), u64::MAX);
        // Exactly at the boundary: the largest shift that still fits.
        let p1 = RecoveryPolicy {
            backoff_base_ns: 1,
            ..policy
        };
        assert_eq!(p1.backoff_ns(64), 1u64 << 63);
        assert_eq!(p1.backoff_ns(65), u64::MAX);
        let p0 = RecoveryPolicy {
            backoff_base_ns: 0,
            ..policy
        };
        assert_eq!(p0.backoff_ns(u32::MAX), 0);
    }
}
