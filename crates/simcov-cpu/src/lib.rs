//! # simcov-cpu — the SIMCoV-CPU baseline executor
//!
//! The paper's "competitive baseline" (§2.2, §4): the simulation domain is
//! distributed across CPU ranks (linear or block decomposition), each rank
//! tracks an **active list** of voxels that can possibly change, and
//! cross-boundary interactions are handled with **RPCs** — including the
//! second communication wave (intent → result) that SIMCoV-GPU's bid
//! algorithm eliminates. The §4.1 determinism fix (staged T-cell movement)
//! is built in: planning, resolution and application are separate phases.
//!
//! Each timestep runs three BSP supersteps on the `pgas` runtime:
//!
//! 1. **plan** — drain neighbor state updates, apply extravasation trials,
//!    plan T-cell actions; cross-boundary intents are RPC'd to the owner;
//! 2. **resolve** — owners resolve contested targets (max-bid), apply
//!    target-side effects, RPC results back; epithelial FSM + production;
//!    boundary concentrations are RPC'd to neighbors;
//! 3. **finish** — sources apply results, diffusion over active voxels,
//!    statistics partials; boundary agent state is RPC'd to neighbors;
//!    a UPC++-style allreduce combines the per-step statistics.
//!
//! The executor produces **bitwise identical** trajectories to
//! [`simcov_core::serial::SerialSim`] for any rank count (workspace
//! integration tests enforce this).

pub mod active;
pub mod msg;
pub mod rank;
pub mod sim;

pub use msg::CpuMsg;
pub use rank::CpuRank;
pub use sim::{CpuSim, CpuSimConfig};
