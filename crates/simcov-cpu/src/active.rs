//! The per-rank active list (§2.2, §3.2).
//!
//! SIMCoV-CPU's key optimization: track which voxels can possibly change and
//! skip the rest. Processing the 1-dilation of active voxels is *exact*
//! (see `simcov_core::rules` module docs). The set is a bitmask plus an
//! insertion list; iteration is over the sorted, deduplicated list so
//! processing order is deterministic.

/// A set of local voxel indices with O(1) insert/test and deterministic
/// sorted iteration.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    bits: Vec<u64>,
    list: Vec<u32>,
    sorted: bool,
}

impl ActiveSet {
    pub fn new(capacity: usize) -> Self {
        ActiveSet {
            bits: vec![0; capacity.div_ceil(64)],
            list: Vec::new(),
            sorted: true,
        }
    }

    #[inline]
    pub fn insert(&mut self, idx: u32) {
        let w = (idx / 64) as usize;
        let b = 1u64 << (idx % 64);
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.list.push(idx);
            self.sorted = false;
        }
    }

    #[inline]
    pub fn contains(&self, idx: u32) -> bool {
        let w = (idx / 64) as usize;
        self.bits[w] & (1u64 << (idx % 64)) != 0
    }

    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Sorted, deduplicated members.
    pub fn sorted(&mut self) -> &[u32] {
        if !self.sorted {
            self.list.sort_unstable();
            self.sorted = true;
        }
        &self.list
    }

    pub fn clear(&mut self) {
        for &i in &self.list {
            self.bits[(i / 64) as usize] = 0;
        }
        // Word-granular clearing may miss shared words already zeroed; be
        // exact instead:
        for w in &mut self.bits {
            *w = 0;
        }
        self.list.clear();
        self.sorted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedup_and_sorted_iteration() {
        let mut s = ActiveSet::new(200);
        for &i in &[5u32, 3, 5, 100, 3, 0, 199] {
            s.insert(i);
        }
        assert_eq!(s.len(), 5);
        assert!(s.contains(100));
        assert!(!s.contains(101));
        assert_eq!(s.sorted(), &[0, 3, 5, 100, 199]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = ActiveSet::new(128);
        s.insert(7);
        s.insert(127);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(7));
        s.insert(7);
        assert_eq!(s.sorted(), &[7]);
    }

    #[test]
    fn boundary_indices() {
        let mut s = ActiveSet::new(65);
        s.insert(63);
        s.insert(64);
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert_eq!(s.sorted(), &[63, 64]);
    }
}
