//! Per-rank state and the three per-step supersteps of the CPU baseline.

use std::collections::HashMap;

use gpusim::DeviceCounters;
use pgas::fault::SplitMix64;
use pgas::Outbox;
use simcov_core::decomp::{Partition, Subdomain};
use simcov_core::epithelial::EpiState;
use simcov_core::exact::ExactSum;
use simcov_core::extrav::TrialTable;
use simcov_core::grid::{Coord, GridDims};
use simcov_core::halo::HaloBox;
use simcov_core::lanes::{self, KernelMode};
use simcov_core::params::SimParams;
use simcov_core::rules::{
    self, epi_update, extrav_lifetime, extrav_succeeds, plan_tcell, voxel_active, Bid,
    EpiTransition, RuleView, TCellAction,
};
use simcov_core::soa::{StencilDeltas, VoxelSoA};
use simcov_core::stats::StatsPartial;
use simcov_core::tcell::TCellSlot;
use simcov_core::world::World;

use crate::active::ActiveSet;
use crate::msg::CpuMsg;

/// One CPU rank: a subdomain plus ghost ring, an active list, and the
/// step-scoped plan/resolve bookkeeping.
pub struct CpuRank {
    pub rank: usize,
    pub hb: HaloBox,
    dims: GridDims,
    /// Neighbor ranks and their subdomains, for ghost routing.
    neighbors: Vec<(usize, Subdomain)>,

    /// Local SoA voxel state over the halo box.
    pub soa: VoxelSoA,
    /// Constant stencil deltas for the halo box's row-major strides.
    stencil: StencilDeltas,
    /// Which diffusion kernel this rank runs (bitwise identical either way).
    kernel: KernelMode,

    /// Voxels processed this step (core, local indices).
    processed: ActiveSet,
    /// Activity found this step → seeds next step's processed set.
    marks: ActiveSet,

    // Step-scoped plan data.
    local_actions: Vec<(u32, TCellAction)>,
    pending_remote: Vec<(u32, bool)>, // (src local idx, is_bind)
    fresh_placed: Vec<u32>,
    move_bids: HashMap<u32, Bid>,
    bind_bids: HashMap<u32, Bid>,
    remote_intents: Vec<(usize, CpuMsg)>, // (sender rank, intent)
    extravasated: u64,
    /// Diffusion write-back staging: (local idx, new virions, new chem).
    diffuse_out: Vec<(u32, f32, f32)>,

    // Persistent per-rank statistics (core region only).
    stat_healthy: u64,
    stat_incubating: u64,
    stat_expressing: u64,
    stat_apoptotic: u64,
    stat_dead: u64,
    stat_tcells: u64,

    pub counters: DeviceCounters,
}

/// Read view over the rank's halo box implementing the shared rule trait.
struct LocalView<'a> {
    dims: GridDims,
    hb: &'a HaloBox,
    soa: &'a VoxelSoA,
}

impl RuleView for LocalView<'_> {
    #[inline]
    fn dims(&self) -> GridDims {
        self.dims
    }
    #[inline]
    fn epi_state(&self, c: Coord) -> EpiState {
        self.soa.epi.get(self.hb.local(c))
    }
    #[inline]
    fn tcell(&self, c: Coord) -> TCellSlot {
        self.soa.tcells[self.hb.local(c)]
    }
    #[inline]
    fn virions(&self, c: Coord) -> f32 {
        self.soa.virions.get(self.hb.local(c))
    }
    #[inline]
    fn chemokine(&self, c: Coord) -> f32 {
        self.soa.chem.get(self.hb.local(c))
    }
}

impl CpuRank {
    /// Build rank-local state from the initial world.
    pub fn new(rank: usize, partition: &Partition, world: &World, kernel: KernelMode) -> Self {
        let dims = partition.dims;
        let sub = *partition.sub(rank);
        let hb = HaloBox::new(dims, sub);
        let n = hb.len();
        let mut soa = VoxelSoA::airway(n);
        let (sx, sy, _) = hb.size();
        let stencil = StencilDeltas::for_strides(dims, sx, sy);

        let mut marks = ActiveSet::new(n);
        let (mut h, mut inc, mut exp, mut apo, mut dead, mut tct) = (0, 0, 0, 0, 0, 0);
        for li in 0..n {
            let c = hb.global(li);
            if !dims.in_bounds(c) {
                continue;
            }
            let gi = dims.index(c);
            soa.epi.state[li] = world.epi.state[gi];
            soa.epi.timer[li] = world.epi.timer[gi];
            soa.tcells[li] = world.tcells[gi];
            soa.virions.set(li, world.virions.get(gi));
            soa.chem.set(li, world.chemokine.get(gi));
            let active = voxel_active(
                soa.epi.get(li),
                soa.tcells[li],
                soa.virions.get(li),
                soa.chem.get(li),
            );
            if hb.is_core(c) {
                match soa.epi.get(li) {
                    EpiState::Healthy => h += 1,
                    EpiState::Incubating => inc += 1,
                    EpiState::Expressing => exp += 1,
                    EpiState::Apoptotic => apo += 1,
                    EpiState::Dead => dead += 1,
                    EpiState::Airway => {}
                }
                if soa.tcells[li].occupied() {
                    tct += 1;
                }
                if active {
                    marks.insert(li as u32);
                }
            } else if active {
                // Active ghost: its core neighbors must be processed.
                for &(dx, dy, dz) in dims.neighbor_offsets() {
                    let q = c.offset(dx, dy, dz);
                    if dims.in_bounds(q) && hb.is_core(q) {
                        marks.insert(hb.local(q) as u32);
                    }
                }
            }
        }

        let neighbors = partition
            .neighbor_ranks(rank)
            .into_iter()
            .map(|r| (r, *partition.sub(r)))
            .collect();

        CpuRank {
            rank,
            hb,
            dims,
            neighbors,
            soa,
            stencil,
            kernel,
            processed: ActiveSet::new(n),
            marks,
            local_actions: Vec::new(),
            pending_remote: Vec::new(),
            fresh_placed: Vec::new(),
            move_bids: HashMap::new(),
            bind_bids: HashMap::new(),
            remote_intents: Vec::new(),
            extravasated: 0,
            diffuse_out: Vec::new(),
            stat_healthy: h,
            stat_incubating: inc,
            stat_expressing: exp,
            stat_apoptotic: apo,
            stat_dead: dead,
            stat_tcells: tct,
            counters: DeviceCounters::new(),
        }
    }

    #[inline]
    fn view(&self) -> LocalView<'_> {
        LocalView {
            dims: self.dims,
            hb: &self.hb,
            soa: &self.soa,
        }
    }

    /// Voxels on this rank's active list for the current step (the
    /// processed set rebuilt in `plan`).
    pub fn n_active(&self) -> usize {
        self.processed.len()
    }

    /// Mark a core coordinate (by local index) as active now → processed
    /// next step.
    #[inline]
    fn mark(&mut self, li: usize) {
        self.marks.insert(li as u32);
    }

    /// Insert a core voxel and its in-core neighbors into the processed set.
    fn dilate_into_processed(&mut self, c: Coord) {
        if self.hb.is_core(c) {
            let li = self.hb.local(c) as u32;
            self.processed.insert(li);
        }
        for &(dx, dy, dz) in self.dims.neighbor_offsets() {
            let q = c.offset(dx, dy, dz);
            if self.dims.in_bounds(q) && self.hb.is_core(q) {
                self.processed.insert(self.hb.local(q) as u32);
            }
        }
    }

    /// Superstep 1: refresh ghosts, rebuild the active list, apply
    /// extravasation trials, plan T-cell actions and RPC cross-boundary
    /// intents. Returns this rank's extravasation count.
    pub fn plan(
        &mut self,
        p: &SimParams,
        t: u64,
        trials: &TrialTable,
        partition: &Partition,
        inbox: &[CpuMsg],
        out: &mut Outbox<CpuMsg>,
    ) -> u64 {
        // Rebuild the processed set from last step's activity marks.
        self.processed.clear();
        let marks: Vec<u32> = self.marks.sorted().to_vec();
        self.marks.clear();
        for m in marks {
            let c = self.hb.global(m as usize);
            self.dilate_into_processed(c);
        }
        // Drain ghost state updates (sent at the end of the previous step).
        for msg in inbox {
            if let CpuMsg::GhostState { agents, conc } = msg {
                for cell in agents {
                    let c = self.dims.coord(cell.gid as usize);
                    debug_assert!(self.hb.covers(c) && !self.hb.is_core(c));
                    let li = self.hb.local(c);
                    self.soa.epi.state[li] = cell.epi_state;
                    self.soa.tcells[li] = cell.tcell;
                    if cell.active {
                        self.dilate_into_processed(c);
                    }
                }
                for cell in conc {
                    // End-of-step concentration refresh for ghost cells
                    // (used by extravasation checks and as step-start state).
                    let c = self.dims.coord(cell.gid as usize);
                    let li = self.hb.local(c);
                    self.soa.virions.set(li, cell.virions);
                    self.soa.chem.set(li, cell.chem);
                }
            } else {
                unreachable!("unexpected message in plan superstep: {msg:?}");
            }
        }

        // Extravasation over the halo reach: core trials apply fully; ghost
        // trials are evaluated (identically to their owner) so fresh ghost
        // cells block this rank's movers.
        self.extravasated = 0;
        self.fresh_placed.clear();
        let (lo, hi) = (self.hb.lo, self.hb.hi);
        let mut core_trials = 0u64;
        for z in lo.z.max(0)..hi.z.min(self.dims.z as i64) {
            for y in lo.y.max(0)..hi.y.min(self.dims.y as i64) {
                let x0 = lo.x.max(0);
                let x1 = hi.x.min(self.dims.x as i64);
                if x0 >= x1 {
                    continue;
                }
                let g0 = self.dims.index(Coord::new(x0, y, z));
                let g1 = g0 + (x1 - x0) as usize;
                for &(gv, trial) in trials.in_gid_range(g0, g1) {
                    let c = self.dims.coord(gv);
                    let li = self.hb.local(c);
                    if self.soa.tcells[li].occupied() {
                        continue;
                    }
                    if extrav_succeeds(p, t, trial, self.soa.chem.get(li)) {
                        let life = extrav_lifetime(p, t, trial);
                        self.soa.tcells[li] = TCellSlot::fresh(life);
                        if self.hb.is_core(c) {
                            self.extravasated += 1;
                            self.stat_tcells += 1;
                            self.fresh_placed.push(li as u32);
                            self.mark(li);
                            core_trials += 1;
                        }
                    }
                }
            }
        }
        self.counters.update.elements += core_trials;

        // Plan established T cells over the processed set.
        self.local_actions.clear();
        self.pending_remote.clear();
        self.move_bids.clear();
        self.bind_bids.clear();
        self.remote_intents.clear();
        let processed: Vec<u32> = self.processed.sorted().to_vec();
        for &li in &processed {
            let slot = self.soa.tcells[li as usize];
            if !slot.occupied() || slot.is_fresh() {
                continue;
            }
            let c = self.hb.global(li as usize);
            let action = plan_tcell(&self.view(), p, t, c);
            match action {
                TCellAction::TryMove { target, bid } | TCellAction::TryBind { target, bid } => {
                    let is_bind = matches!(action, TCellAction::TryBind { .. });
                    if self.hb.is_core(target) {
                        let tl = self.hb.local(target) as u32;
                        let map = if is_bind {
                            &mut self.bind_bids
                        } else {
                            &mut self.move_bids
                        };
                        let e = map.entry(tl).or_insert(Bid::EMPTY);
                        *e = e.merge(bid);
                        self.local_actions.push((li, action));
                    } else {
                        let owner = partition.owner(target);
                        let src = self.dims.index(c) as u64;
                        let tgt = self.dims.index(target) as u64;
                        let msg = if is_bind {
                            CpuMsg::BindIntent {
                                src,
                                target: tgt,
                                bid: bid.0,
                            }
                        } else {
                            CpuMsg::MoveIntent {
                                src,
                                target: tgt,
                                bid: bid.0,
                                tissue_steps: slot.tissue_steps(),
                            }
                        };
                        out.send(owner, msg);
                        self.pending_remote.push((li, is_bind));
                    }
                }
                _ => self.local_actions.push((li, action)),
            }
        }
        self.extravasated
    }

    /// Superstep 2: resolve contested targets, apply local and target-side
    /// effects, RPC results back, run the epithelial FSM + production, and
    /// push boundary concentrations to neighbors.
    pub fn resolve(&mut self, p: &SimParams, t: u64, inbox: &[CpuMsg], out: &mut Outbox<CpuMsg>) {
        // Merge remote intents into the bid maps.
        for (sender_idx, msg) in inbox.iter().enumerate() {
            match msg {
                CpuMsg::MoveIntent { target, bid, .. } => {
                    let c = self.dims.coord(*target as usize);
                    let tl = self.hb.local(c) as u32;
                    let e = self.move_bids.entry(tl).or_insert(Bid::EMPTY);
                    *e = e.merge(Bid(*bid));
                    self.remote_intents.push((sender_idx, msg.clone()));
                }
                CpuMsg::BindIntent { target, bid, .. } => {
                    let c = self.dims.coord(*target as usize);
                    let tl = self.hb.local(c) as u32;
                    let e = self.bind_bids.entry(tl).or_insert(Bid::EMPTY);
                    *e = e.merge(Bid(*bid));
                    self.remote_intents.push((sender_idx, msg.clone()));
                }
                _ => unreachable!("unexpected message in resolve superstep: {msg:?}"),
            }
        }

        // Apply local actions.
        let actions = std::mem::take(&mut self.local_actions);
        for &(li, action) in &actions {
            let li = li as usize;
            let slot = self.soa.tcells[li];
            let ts = slot.tissue_steps();
            match action {
                TCellAction::Die => {
                    self.soa.tcells[li] = TCellSlot::EMPTY;
                    self.stat_tcells -= 1;
                }
                TCellAction::StayBound => {
                    self.soa.tcells[li] = TCellSlot::established(ts - 1, slot.bind_steps() - 1);
                    self.mark(li);
                }
                TCellAction::Stay => {
                    self.soa.tcells[li] = TCellSlot::established(ts - 1, 0);
                    self.mark(li);
                }
                TCellAction::TryBind { target, bid } => {
                    let tl = self.hb.local(target);
                    if self.bind_bids[&(tl as u32)] == bid {
                        self.apply_bind(p, t, target);
                        self.soa.tcells[li] =
                            TCellSlot::established(ts - 1, p.tcell_binding_period);
                    } else {
                        self.soa.tcells[li] = TCellSlot::established(ts - 1, 0);
                    }
                    self.mark(li);
                }
                TCellAction::TryMove { target, bid } => {
                    let tl = self.hb.local(target);
                    if self.move_bids[&(tl as u32)] == bid {
                        self.soa.tcells[tl] = TCellSlot::established(ts - 1, 0);
                        self.soa.tcells[li] = TCellSlot::EMPTY;
                        self.mark(tl);
                    } else {
                        self.soa.tcells[li] = TCellSlot::established(ts - 1, 0);
                        self.mark(li);
                    }
                }
            }
        }
        self.local_actions = actions;
        self.local_actions.clear();

        // Target-side effects of remote intents + result RPCs.
        let intents = std::mem::take(&mut self.remote_intents);
        for (_, msg) in &intents {
            match *msg {
                CpuMsg::MoveIntent {
                    src,
                    target,
                    bid,
                    tissue_steps,
                } => {
                    let c = self.dims.coord(target as usize);
                    let tl = self.hb.local(c);
                    let won = self.move_bids[&(tl as u32)] == Bid(bid);
                    if won {
                        self.soa.tcells[tl] = TCellSlot::established(tissue_steps - 1, 0);
                        self.stat_tcells += 1;
                        self.mark(tl);
                    }
                    let src_owner = self.owner_of_gid(src);
                    out.send(src_owner, CpuMsg::MoveResult { src, won });
                }
                CpuMsg::BindIntent { src, target, bid } => {
                    let c = self.dims.coord(target as usize);
                    let tl = self.hb.local(c);
                    let won = self.bind_bids[&(tl as u32)] == Bid(bid);
                    if won {
                        self.apply_bind(p, t, c);
                    }
                    let src_owner = self.owner_of_gid(src);
                    out.send(src_owner, CpuMsg::BindResult { src, won });
                }
                _ => unreachable!(),
            }
        }

        // Epithelial FSM + production over the processed set.
        let processed: Vec<u32> = self.processed.sorted().to_vec();
        for &li in &processed {
            let li = li as usize;
            let s = self.soa.epi.get(li);
            if s == EpiState::Airway || s == EpiState::Dead {
                continue;
            }
            let c = self.hb.global(li);
            let gid = self.dims.index(c) as u64;
            let u = epi_update(
                s,
                self.soa.epi.timer[li],
                self.soa.virions.get(li),
                p,
                t,
                gid,
            );
            self.soa.epi.set(li, u.state, u.timer);
            match u.transition {
                EpiTransition::Infected => {
                    self.stat_healthy -= 1;
                    self.stat_incubating += 1;
                }
                EpiTransition::StartedExpressing => {
                    self.stat_incubating -= 1;
                    self.stat_expressing += 1;
                }
                EpiTransition::Died => {
                    if s == EpiState::Expressing {
                        self.stat_expressing -= 1;
                    } else {
                        self.stat_apoptotic -= 1;
                    }
                    self.stat_dead += 1;
                }
                EpiTransition::None => {}
            }
            if u.state.produces_virions() {
                self.soa.virions.set(
                    li,
                    simcov_core::diffusion::produce_virions(
                        self.soa.virions.get(li),
                        p.virion_production,
                    ),
                );
            }
            if u.state.produces_chemokine() {
                self.soa.chem.set(
                    li,
                    simcov_core::diffusion::produce_chemokine(
                        self.soa.chem.get(li),
                        p.chemokine_production,
                    ),
                );
            }
            if u.state.is_transient() {
                self.mark(li);
            }
        }

        // Push post-production boundary concentrations to neighbors whose
        // diffusion stencils need them this step (one aggregated put per
        // neighbor).
        let mut per_neighbor: Vec<Vec<crate::msg::ConcCell>> =
            vec![Vec::new(); self.neighbors.len()];
        for &li in &processed {
            let c = self.hb.global(li as usize);
            if self.hb.is_boundary(c) {
                let cell = crate::msg::ConcCell {
                    gid: self.dims.index(c) as u64,
                    virions: self.soa.virions.get(li as usize),
                    chem: self.soa.chem.get(li as usize),
                };
                for (i, (_, nsub)) in self.neighbors.iter().enumerate() {
                    if nsub.in_halo_reach(c) {
                        per_neighbor[i].push(cell);
                    }
                }
            }
        }
        for (i, cells) in per_neighbor.into_iter().enumerate() {
            if !cells.is_empty() {
                out.send(self.neighbors[i].0, CpuMsg::GhostConc(cells));
            }
        }
    }

    fn apply_bind(&mut self, p: &SimParams, t: u64, target: Coord) {
        let tl = self.hb.local(target);
        debug_assert_eq!(self.soa.epi.get(tl), EpiState::Expressing);
        let gid = self.dims.index(target) as u64;
        self.soa
            .epi
            .set(tl, EpiState::Apoptotic, rules::apoptosis_timer(p, t, gid));
        self.stat_expressing -= 1;
        self.stat_apoptotic += 1;
        self.mark(tl);
    }

    fn owner_of_gid(&self, gid: u64) -> usize {
        // The source of a cross-boundary intent is always a neighbor.
        let c = self.dims.coord(gid as usize);
        for (nr, nsub) in &self.neighbors {
            if nsub.contains(c) {
                return *nr;
            }
        }
        panic!(
            "intent source {c:?} not owned by any neighbor of rank {}",
            self.rank
        );
    }

    /// Superstep 3: apply cross-boundary results, diffuse, produce the
    /// statistics partial, and push end-of-step boundary state.
    ///
    /// Concentration sums are accumulated into [`ExactSum`]s so the global
    /// reduction is independent of the partition — a recovery that shrinks
    /// the rank count reproduces the failure-free statistics bitwise.
    pub fn finish(
        &mut self,
        p: &SimParams,
        t: u64,
        inbox: &[CpuMsg],
        out: &mut Outbox<CpuMsg>,
    ) -> StatsPartial {
        // Ghost concentrations for the stencil: anything not refreshed below
        // was not processed by its owner this step, which (activity
        // exactness) implies its post-production value is zero.
        let n = self.hb.len();
        for li in 0..n {
            let c = self.hb.global(li);
            if !self.hb.is_core(c) {
                self.soa.virions.set(li, 0.0);
                self.soa.chem.set(li, 0.0);
            }
        }
        for msg in inbox {
            match *msg {
                CpuMsg::GhostConc(ref cells) => {
                    for cell in cells {
                        let c = self.dims.coord(cell.gid as usize);
                        let li = self.hb.local(c);
                        self.soa.virions.set(li, cell.virions);
                        self.soa.chem.set(li, cell.chem);
                    }
                }
                CpuMsg::MoveResult { src, won } => {
                    let c = self.dims.coord(src as usize);
                    let li = self.hb.local(c);
                    let slot = self.soa.tcells[li];
                    let ts = slot.tissue_steps();
                    if won {
                        self.soa.tcells[li] = TCellSlot::EMPTY;
                        self.stat_tcells -= 1;
                    } else {
                        self.soa.tcells[li] = TCellSlot::established(ts - 1, 0);
                        self.mark(li);
                    }
                }
                CpuMsg::BindResult { src, won } => {
                    let c = self.dims.coord(src as usize);
                    let li = self.hb.local(c);
                    let slot = self.soa.tcells[li];
                    let ts = slot.tissue_steps();
                    let bind = if won { p.tcell_binding_period } else { 0 };
                    self.soa.tcells[li] = TCellSlot::established(ts - 1, bind);
                    self.mark(li);
                }
                _ => unreachable!("unexpected message in finish superstep: {msg:?}"),
            }
        }
        self.pending_remote.clear();

        // Settle fresh T cells.
        let fresh = std::mem::take(&mut self.fresh_placed);
        for &li in &fresh {
            self.soa.tcells[li as usize] = self.soa.tcells[li as usize].settled();
        }

        // Diffusion over the processed set (staged write-back).
        let processed: Vec<u32> = self.processed.sorted().to_vec();
        self.diffuse_out.clear();
        let mut virions_sum = ExactSum::zero();
        let mut chem_sum = ExactSum::zero();
        let vc = p.virion_coeffs();
        let cc = p.chemokine_coeffs();
        // Interior voxels (full Moore neighborhood inside the global grid)
        // gather by constant halo-box stride deltas — same values in the
        // same offset-table order, so the f32 sums are bitwise identical to
        // the checked path. In `Wide` mode, maximal runs of *consecutive*
        // interior local indices on the active list additionally go through
        // the chunked lane kernel (per-lane accumulation, never mixed —
        // still the same order per voxel); surface voxels and singletons
        // fall back to the scalar gather either way.
        let mut j = 0usize;
        while j < processed.len() {
            let li = processed[j] as usize;
            let c = self.hb.global(li);
            if self.stencil.is_interior(c) {
                let mut len = 1usize;
                if self.kernel == KernelMode::Wide {
                    while j + len < processed.len()
                        && processed[j + len] as usize == li + len
                        && self.stencil.is_interior(self.hb.global(li + len))
                    {
                        len += 1;
                    }
                }
                let out = &mut self.diffuse_out;
                lanes::diffuse_interior_run(
                    &self.stencil,
                    li,
                    len,
                    &self.soa.virions,
                    &self.soa.chem,
                    vc,
                    cc,
                    |i, nv, nc| out.push((i as u32, nv, nc)),
                );
                j += len;
            } else {
                let mut vs = 0.0f32;
                let mut cs = 0.0f32;
                let mut nv = 0usize;
                for &(dx, dy, dz) in self.dims.neighbor_offsets() {
                    let q = c.offset(dx, dy, dz);
                    if self.dims.in_bounds(q) {
                        let ql = self.hb.local(q);
                        vs += self.soa.virions.get(ql);
                        cs += self.soa.chem.get(ql);
                        nv += 1;
                    }
                }
                self.diffuse_out.push((
                    li as u32,
                    vc.apply(self.soa.virions.get(li), vs, nv),
                    cc.apply(self.soa.chem.get(li), cs, nv),
                ));
                j += 1;
            }
        }
        let diffused = std::mem::take(&mut self.diffuse_out);
        for &(li, nv, nc) in &diffused {
            self.soa.virions.set(li as usize, nv);
            self.soa.chem.set(li as usize, nc);
            virions_sum.add_f32(nv);
            chem_sum.add_f32(nc);
            if nv > 0.0 || nc > 0.0 {
                self.mark(li as usize);
            }
        }
        self.diffuse_out = diffused;
        self.diffuse_out.clear();

        // Re-mark voxels that still hold agents/transient state.
        for &li in &processed {
            let li = li as usize;
            if self.soa.tcells[li].occupied() || self.soa.epi.get(li).is_transient() {
                self.mark(li);
            }
        }

        self.counters.update.elements += processed.len() as u64;

        // Push end-of-step boundary state to neighbors (one aggregated put
        // per neighbor).
        let mut agent_batches: Vec<Vec<crate::msg::AgentCell>> =
            vec![Vec::new(); self.neighbors.len()];
        let mut conc_batches: Vec<Vec<crate::msg::ConcCell>> =
            vec![Vec::new(); self.neighbors.len()];
        for &li in &processed {
            let c = self.hb.global(li as usize);
            if self.hb.is_boundary(c) {
                let li = li as usize;
                let gid = self.dims.index(c) as u64;
                let active = voxel_active(
                    self.soa.epi.get(li),
                    self.soa.tcells[li],
                    self.soa.virions.get(li),
                    self.soa.chem.get(li),
                );
                let agent = crate::msg::AgentCell {
                    gid,
                    epi_state: self.soa.epi.state[li],
                    tcell: self.soa.tcells[li],
                    active,
                };
                let conc = crate::msg::ConcCell {
                    gid,
                    virions: self.soa.virions.get(li),
                    chem: self.soa.chem.get(li),
                };
                for (i, (_, nsub)) in self.neighbors.iter().enumerate() {
                    if nsub.in_halo_reach(c) {
                        agent_batches[i].push(agent);
                        conc_batches[i].push(conc);
                    }
                }
            }
        }
        for i in 0..self.neighbors.len() {
            if !agent_batches[i].is_empty() {
                out.send(
                    self.neighbors[i].0,
                    CpuMsg::GhostState {
                        agents: std::mem::take(&mut agent_batches[i]),
                        conc: std::mem::take(&mut conc_batches[i]),
                    },
                );
            }
        }

        StatsPartial {
            step: t,
            virions: virions_sum,
            chemokine: chem_sum,
            tcells_vasculature: 0, // filled by the driver from the pool
            tcells_tissue: self.stat_tcells,
            epi_healthy: self.stat_healthy,
            epi_incubating: self.stat_incubating,
            epi_expressing: self.stat_expressing,
            epi_apoptotic: self.stat_apoptotic,
            epi_dead: self.stat_dead,
            extravasated: self.extravasated,
        }
    }

    /// Flip one seeded bit in this rank's *owned* (core) state — the
    /// DRAM-style silent corruption modeled by
    /// `FaultKind::StateCorruption`. Targets the same field family as
    /// `CheckpointStore::inject_corruption` (virion bits, chemokine bits,
    /// or an epithelial timer), so both injection sites stress the same
    /// invariants the integrity scrub/audit checks. XOR semantics: the
    /// same seed applied twice restores the original state.
    pub fn corrupt_bit(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let n = self.hb.core.nvoxels() as u64;
        if n == 0 {
            return;
        }
        let pick = (rng.next_u64() % n) as usize;
        let c = self
            .hb
            .core
            .iter_coords()
            .nth(pick)
            .expect("pick < nvoxels");
        let li = self.hb.local(c);
        match rng.next_u64() % 3 {
            0 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                let v = self.soa.virions.get(li);
                self.soa.virions.set(li, f32::from_bits(v.to_bits() ^ bit));
            }
            1 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                let v = self.soa.chem.get(li);
                self.soa.chem.set(li, f32::from_bits(v.to_bits() ^ bit));
            }
            _ => {
                self.soa.epi.timer[li] ^= 1 << (rng.next_u64() % 32);
            }
        }
    }

    /// Copy this rank's core region into a global world (for verification).
    pub fn write_into(&self, world: &mut World) {
        for c in self.hb.core.iter_coords() {
            let li = self.hb.local(c);
            let gi = self.dims.index(c);
            world.epi.state[gi] = self.soa.epi.state[li];
            world.epi.timer[gi] = self.soa.epi.timer[li];
            world.tcells[gi] = self.soa.tcells[li];
            world.virions.set(gi, self.soa.virions.get(li));
            world.chemokine.set(gi, self.soa.chem.get(li));
        }
    }
}
