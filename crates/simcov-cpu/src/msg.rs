//! RPC message types of the CPU baseline.
//!
//! These model the UPC++ communication SIMCoV-CPU issues: per-event RPCs
//! for T-cell intents crossing a process boundary and their results (the
//! second communication wave the GPU version eliminates), plus *aggregated*
//! boundary-strip updates that keep neighbor ghost copies current —
//! SIMCoV-CPU batches boundary state into bulk puts rather than issuing one
//! RPC per voxel. The `pgas` runtime meters wire sizes via [`WireSize`].

use pgas::counters::WireSize;
use simcov_core::tcell::TCellSlot;

/// An aggregated boundary-concentration cell (gid, virions, chemokine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcCell {
    pub gid: u64,
    pub virions: f32,
    pub chem: f32,
}

/// An aggregated boundary-agent cell. `active` carries the activity
/// predicate so the receiver can extend its active list across the process
/// boundary (§3.2: "that RPC can add the affected voxels to the
/// active-list").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentCell {
    pub gid: u64,
    pub epi_state: u8,
    pub tcell: TCellSlot,
    pub active: bool,
}

/// One RPC / bulk-put payload.
#[derive(Debug, Clone, PartialEq)]
pub enum CpuMsg {
    /// A T cell at `src` (global voxel id) wants to move to `target`
    /// (owned by the receiving rank). Carries the bid and the cell's
    /// remaining tissue lifetime so the owner can instantiate the moved
    /// cell without another round trip.
    MoveIntent {
        src: u64,
        target: u64,
        bid: u128,
        tissue_steps: u32,
    },
    /// A T cell at `src` wants to bind the expressing epithelial cell at
    /// `target` (owned by the receiving rank).
    BindIntent { src: u64, target: u64, bid: u128 },
    /// Owner's verdict on a cross-boundary move intent.
    MoveResult { src: u64, won: bool },
    /// Owner's verdict on a cross-boundary bind intent.
    BindResult { src: u64, won: bool },
    /// Post-production (pre-diffusion) concentrations of the active
    /// boundary voxels a neighbor's diffusion stencil needs this step
    /// (one aggregated put per neighbor per step).
    GhostConc(Vec<ConcCell>),
    /// End-of-step state of the active boundary voxels, needed by the
    /// neighbor's planning next step (one aggregated put per neighbor per
    /// step; concentrations ride along for ghost extravasation checks).
    GhostState {
        agents: Vec<AgentCell>,
        conc: Vec<ConcCell>,
    },
}

impl WireSize for CpuMsg {
    fn wire_size(&self) -> usize {
        match self {
            CpuMsg::MoveIntent { .. } => 36,
            CpuMsg::BindIntent { .. } => 32,
            CpuMsg::MoveResult { .. } | CpuMsg::BindResult { .. } => 9,
            CpuMsg::GhostConc(cells) => 16 + cells.len() * 16,
            CpuMsg::GhostState { agents, conc } => 16 + agents.len() * 14 + conc.len() * 16,
        }
    }

    fn is_bulk(&self) -> bool {
        matches!(self, CpuMsg::GhostConc(_) | CpuMsg::GhostState { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(
            CpuMsg::MoveResult { src: 1, won: true }.wire_size(),
            9,
            "results are tiny RPCs"
        );
        let batch = CpuMsg::GhostConc(vec![
            ConcCell {
                gid: 0,
                virions: 0.0,
                chem: 0.0
            };
            10
        ]);
        assert_eq!(batch.wire_size(), 16 + 160);
        let state = CpuMsg::GhostState {
            agents: vec![
                AgentCell {
                    gid: 0,
                    epi_state: 1,
                    tcell: TCellSlot::EMPTY,
                    active: false
                };
                3
            ],
            conc: vec![],
        };
        assert_eq!(state.wire_size(), 16 + 42);
    }
}
