//! RPC message types of the CPU baseline.
//!
//! These model the UPC++ communication SIMCoV-CPU issues: per-event RPCs
//! for T-cell intents crossing a process boundary and their results (the
//! second communication wave the GPU version eliminates), plus *aggregated*
//! boundary-strip updates that keep neighbor ghost copies current —
//! SIMCoV-CPU batches boundary state into bulk puts rather than issuing one
//! RPC per voxel. The `pgas` runtime meters wire sizes via [`WireSize`].

use pgas::counters::WireSize;
use pgas::crc::{Crc64, Payload};
use pgas::fault::SplitMix64;
use pgas::wire::{WireCodec, WireReader, WireWrite};
use simcov_core::tcell::TCellSlot;

/// An aggregated boundary-concentration cell (gid, virions, chemokine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcCell {
    pub gid: u64,
    pub virions: f32,
    pub chem: f32,
}

/// An aggregated boundary-agent cell. `active` carries the activity
/// predicate so the receiver can extend its active list across the process
/// boundary (§3.2: "that RPC can add the affected voxels to the
/// active-list").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentCell {
    pub gid: u64,
    pub epi_state: u8,
    pub tcell: TCellSlot,
    pub active: bool,
}

/// One RPC / bulk-put payload.
#[derive(Debug, Clone, PartialEq)]
pub enum CpuMsg {
    /// A T cell at `src` (global voxel id) wants to move to `target`
    /// (owned by the receiving rank). Carries the bid and the cell's
    /// remaining tissue lifetime so the owner can instantiate the moved
    /// cell without another round trip.
    MoveIntent {
        src: u64,
        target: u64,
        bid: u128,
        tissue_steps: u32,
    },
    /// A T cell at `src` wants to bind the expressing epithelial cell at
    /// `target` (owned by the receiving rank).
    BindIntent { src: u64, target: u64, bid: u128 },
    /// Owner's verdict on a cross-boundary move intent.
    MoveResult { src: u64, won: bool },
    /// Owner's verdict on a cross-boundary bind intent.
    BindResult { src: u64, won: bool },
    /// Post-production (pre-diffusion) concentrations of the active
    /// boundary voxels a neighbor's diffusion stencil needs this step
    /// (one aggregated put per neighbor per step).
    GhostConc(Vec<ConcCell>),
    /// End-of-step state of the active boundary voxels, needed by the
    /// neighbor's planning next step (one aggregated put per neighbor per
    /// step; concentrations ride along for ghost extravasation checks).
    GhostState {
        agents: Vec<AgentCell>,
        conc: Vec<ConcCell>,
    },
}

impl WireSize for CpuMsg {
    fn wire_size(&self) -> usize {
        match self {
            CpuMsg::MoveIntent { .. } => 36,
            CpuMsg::BindIntent { .. } => 32,
            CpuMsg::MoveResult { .. } | CpuMsg::BindResult { .. } => 9,
            CpuMsg::GhostConc(cells) => 16 + cells.len() * 16,
            CpuMsg::GhostState { agents, conc } => 16 + agents.len() * 14 + conc.len() * 16,
        }
    }

    fn is_bulk(&self) -> bool {
        matches!(self, CpuMsg::GhostConc(_) | CpuMsg::GhostState { .. })
    }
}

impl Payload for CpuMsg {
    fn digest(&self, crc: &mut Crc64) {
        match self {
            CpuMsg::MoveIntent {
                src,
                target,
                bid,
                tissue_steps,
            } => {
                crc.write_u8(0);
                crc.write_u64(*src);
                crc.write_u64(*target);
                crc.write_u128(*bid);
                crc.write_u32(*tissue_steps);
            }
            CpuMsg::BindIntent { src, target, bid } => {
                crc.write_u8(1);
                crc.write_u64(*src);
                crc.write_u64(*target);
                crc.write_u128(*bid);
            }
            CpuMsg::MoveResult { src, won } => {
                crc.write_u8(2);
                crc.write_u64(*src);
                crc.write_u8(*won as u8);
            }
            CpuMsg::BindResult { src, won } => {
                crc.write_u8(3);
                crc.write_u64(*src);
                crc.write_u8(*won as u8);
            }
            CpuMsg::GhostConc(cells) => {
                crc.write_u8(4);
                crc.write_len(cells.len());
                for c in cells {
                    c.digest_into(crc);
                }
            }
            CpuMsg::GhostState { agents, conc } => {
                crc.write_u8(5);
                crc.write_len(agents.len());
                for a in agents {
                    crc.write_u64(a.gid);
                    crc.write_u8(a.epi_state);
                    crc.write_u32(a.tcell.0);
                    crc.write_u8(a.active as u8);
                }
                crc.write_len(conc.len());
                for c in conc {
                    c.digest_into(crc);
                }
            }
        }
    }

    fn corrupt(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        match self {
            CpuMsg::MoveIntent {
                src,
                target,
                bid,
                tissue_steps,
            } => match rng.next_u64() % 4 {
                0 => *src ^= 1 << (rng.next_u64() % 64),
                1 => *target ^= 1 << (rng.next_u64() % 64),
                2 => *bid ^= 1 << (rng.next_u64() % 128),
                _ => *tissue_steps ^= 1 << (rng.next_u64() % 32),
            },
            CpuMsg::BindIntent { src, target, bid } => match rng.next_u64() % 3 {
                0 => *src ^= 1 << (rng.next_u64() % 64),
                1 => *target ^= 1 << (rng.next_u64() % 64),
                _ => *bid ^= 1 << (rng.next_u64() % 128),
            },
            CpuMsg::MoveResult { src, won } | CpuMsg::BindResult { src, won } => {
                if rng.next_u64().is_multiple_of(2) {
                    *src ^= 1 << (rng.next_u64() % 64);
                } else {
                    *won = !*won;
                }
            }
            CpuMsg::GhostConc(cells) => {
                if let Some(c) = pick(cells, &mut rng) {
                    c.corrupt_with(&mut rng);
                }
            }
            CpuMsg::GhostState { agents, conc } => {
                let n = agents.len() + conc.len();
                if n == 0 {
                    return;
                }
                let i = (rng.next_u64() % n as u64) as usize;
                if i < agents.len() {
                    let a = &mut agents[i];
                    match rng.next_u64() % 4 {
                        0 => a.gid ^= 1 << (rng.next_u64() % 64),
                        1 => a.epi_state ^= 1 << (rng.next_u64() % 8),
                        2 => a.tcell.0 ^= 1 << (rng.next_u64() % 32),
                        _ => a.active = !a.active,
                    }
                } else {
                    conc[i - agents.len()].corrupt_with(&mut rng);
                }
            }
        }
    }

    fn corruptible(&self) -> bool {
        match self {
            CpuMsg::GhostConc(cells) => !cells.is_empty(),
            CpuMsg::GhostState { agents, conc } => !agents.is_empty() || !conc.is_empty(),
            _ => true,
        }
    }
}

impl ConcCell {
    fn digest_into(&self, crc: &mut Crc64) {
        crc.write_u64(self.gid);
        crc.write_f32(self.virions);
        crc.write_f32(self.chem);
    }

    fn corrupt_with(&mut self, rng: &mut SplitMix64) {
        match rng.next_u64() % 3 {
            0 => self.gid ^= 1 << (rng.next_u64() % 64),
            1 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                self.virions = f32::from_bits(self.virions.to_bits() ^ bit);
            }
            _ => {
                let bit = 1u32 << (rng.next_u64() % 32);
                self.chem = f32::from_bits(self.chem.to_bits() ^ bit);
            }
        }
    }
}

fn pick<'a, T>(v: &'a mut [T], rng: &mut SplitMix64) -> Option<&'a mut T> {
    if v.is_empty() {
        None
    } else {
        let i = (rng.next_u64() % v.len() as u64) as usize;
        Some(&mut v[i])
    }
}

impl ConcCell {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(self.gid);
        out.put_f32(self.virions);
        out.put_f32(self.chem);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Option<Self> {
        Some(ConcCell {
            gid: r.read_u64()?,
            virions: r.read_f32()?,
            chem: r.read_f32()?,
        })
    }
}

/// Process-boundary codec, mirroring the [`Payload::digest`] layout field
/// for field (same variant tags, same little-endian scalar order) so the
/// serialized form and the integrity digest describe the same bytes.
impl WireCodec for CpuMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CpuMsg::MoveIntent {
                src,
                target,
                bid,
                tissue_steps,
            } => {
                out.put_u8(0);
                out.put_u64(*src);
                out.put_u64(*target);
                out.put_u128(*bid);
                out.put_u32(*tissue_steps);
            }
            CpuMsg::BindIntent { src, target, bid } => {
                out.put_u8(1);
                out.put_u64(*src);
                out.put_u64(*target);
                out.put_u128(*bid);
            }
            CpuMsg::MoveResult { src, won } => {
                out.put_u8(2);
                out.put_u64(*src);
                out.put_bool(*won);
            }
            CpuMsg::BindResult { src, won } => {
                out.put_u8(3);
                out.put_u64(*src);
                out.put_bool(*won);
            }
            CpuMsg::GhostConc(cells) => {
                out.put_u8(4);
                out.put_u64(cells.len() as u64);
                for c in cells {
                    c.encode_into(out);
                }
            }
            CpuMsg::GhostState { agents, conc } => {
                out.put_u8(5);
                out.put_u64(agents.len() as u64);
                for a in agents {
                    out.put_u64(a.gid);
                    out.put_u8(a.epi_state);
                    out.put_u32(a.tcell.0);
                    out.put_bool(a.active);
                }
                out.put_u64(conc.len() as u64);
                for c in conc {
                    c.encode_into(out);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(match r.read_u8()? {
            0 => CpuMsg::MoveIntent {
                src: r.read_u64()?,
                target: r.read_u64()?,
                bid: r.read_u128()?,
                tissue_steps: r.read_u32()?,
            },
            1 => CpuMsg::BindIntent {
                src: r.read_u64()?,
                target: r.read_u64()?,
                bid: r.read_u128()?,
            },
            2 => CpuMsg::MoveResult {
                src: r.read_u64()?,
                won: r.read_bool()?,
            },
            3 => CpuMsg::BindResult {
                src: r.read_u64()?,
                won: r.read_bool()?,
            },
            4 => {
                let n = r.read_len(16)?;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    cells.push(ConcCell::decode_from(r)?);
                }
                CpuMsg::GhostConc(cells)
            }
            5 => {
                let na = r.read_len(14)?;
                let mut agents = Vec::with_capacity(na);
                for _ in 0..na {
                    agents.push(AgentCell {
                        gid: r.read_u64()?,
                        epi_state: r.read_u8()?,
                        tcell: TCellSlot(r.read_u32()?),
                        active: r.read_bool()?,
                    });
                }
                let nc = r.read_len(16)?;
                let mut conc = Vec::with_capacity(nc);
                for _ in 0..nc {
                    conc.push(ConcCell::decode_from(r)?);
                }
                CpuMsg::GhostState { agents, conc }
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_a_self_inverse_and_never_silent() {
        let msgs = vec![
            CpuMsg::MoveIntent {
                src: 7,
                target: 9,
                bid: 0xDEAD_BEEF,
                tissue_steps: 40,
            },
            CpuMsg::BindIntent {
                src: 3,
                target: 4,
                bid: 11,
            },
            CpuMsg::MoveResult { src: 5, won: true },
            CpuMsg::BindResult { src: 6, won: false },
            CpuMsg::GhostConc(vec![
                ConcCell {
                    gid: 1,
                    virions: 0.25,
                    chem: 0.5
                };
                4
            ]),
            CpuMsg::GhostState {
                agents: vec![
                    AgentCell {
                        gid: 2,
                        epi_state: 1,
                        tcell: TCellSlot::EMPTY,
                        active: true
                    };
                    3
                ],
                conc: vec![
                    ConcCell {
                        gid: 3,
                        virions: 1.0,
                        chem: 0.0
                    };
                    2
                ],
            },
        ];
        for msg in msgs {
            assert!(msg.corruptible());
            for seed in 0..64u64 {
                let mut m = msg.clone();
                m.corrupt(seed);
                let digest = |m: &CpuMsg| {
                    let mut c = Crc64::new();
                    m.digest(&mut c);
                    c.finish()
                };
                assert_ne!(digest(&m), digest(&msg), "flip changed the digest");
                m.corrupt(seed);
                assert_eq!(m, msg, "second application restores the original");
            }
        }
        // Empty aggregates expose no bits to flip.
        assert!(!CpuMsg::GhostConc(vec![]).corruptible());
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(
            CpuMsg::MoveResult { src: 1, won: true }.wire_size(),
            9,
            "results are tiny RPCs"
        );
        let batch = CpuMsg::GhostConc(vec![
            ConcCell {
                gid: 0,
                virions: 0.0,
                chem: 0.0
            };
            10
        ]);
        assert_eq!(batch.wire_size(), 16 + 160);
        let state = CpuMsg::GhostState {
            agents: vec![
                AgentCell {
                    gid: 0,
                    epi_state: 1,
                    tcell: TCellSlot::EMPTY,
                    active: false
                };
                3
            ],
            conc: vec![],
        };
        assert_eq!(state.wire_size(), 16 + 42);
    }

    #[test]
    fn wire_codec_roundtrips_every_variant() {
        let msgs = vec![
            CpuMsg::MoveIntent {
                src: u64::MAX,
                target: 9,
                bid: u128::MAX - 1,
                tissue_steps: 40,
            },
            CpuMsg::BindIntent {
                src: 3,
                target: 4,
                bid: 11,
            },
            CpuMsg::MoveResult { src: 5, won: true },
            CpuMsg::BindResult { src: 6, won: false },
            CpuMsg::GhostConc(vec![ConcCell {
                gid: 1,
                virions: f32::from_bits(1), // denormal survives bit-exactly
                chem: -0.0,
            }]),
            CpuMsg::GhostConc(vec![]),
            CpuMsg::GhostState {
                agents: vec![AgentCell {
                    gid: 2,
                    epi_state: 1,
                    tcell: TCellSlot::EMPTY,
                    active: true,
                }],
                conc: vec![ConcCell {
                    gid: 3,
                    virions: 1.0,
                    chem: 0.0,
                }],
            },
        ];
        let payload = pgas::wire::encode_bucket(&msgs);
        let back: Vec<CpuMsg> =
            pgas::wire::decode_bucket(msgs.len() as u64, &payload).expect("clean payload");
        assert_eq!(back, msgs);
        // A clipped payload or a flipped tag must fail decode, not panic.
        assert!(pgas::wire::decode_bucket::<CpuMsg>(
            msgs.len() as u64,
            &payload[..payload.len() - 1]
        )
        .is_none());
        let mut bad = payload.clone();
        bad[0] = 9; // unknown variant tag
        assert!(pgas::wire::decode_bucket::<CpuMsg>(msgs.len() as u64, &bad).is_none());
    }
}
