//! RPC message types of the CPU baseline.
//!
//! These model the UPC++ communication SIMCoV-CPU issues: per-event RPCs
//! for T-cell intents crossing a process boundary and their results (the
//! second communication wave the GPU version eliminates), plus *aggregated*
//! boundary-strip updates that keep neighbor ghost copies current —
//! SIMCoV-CPU batches boundary state into bulk puts rather than issuing one
//! RPC per voxel. The `pgas` runtime meters wire sizes via [`WireSize`].

use pgas::counters::WireSize;
use pgas::crc::{Crc64, Payload};
use pgas::fault::SplitMix64;
use simcov_core::tcell::TCellSlot;

/// An aggregated boundary-concentration cell (gid, virions, chemokine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcCell {
    pub gid: u64,
    pub virions: f32,
    pub chem: f32,
}

/// An aggregated boundary-agent cell. `active` carries the activity
/// predicate so the receiver can extend its active list across the process
/// boundary (§3.2: "that RPC can add the affected voxels to the
/// active-list").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentCell {
    pub gid: u64,
    pub epi_state: u8,
    pub tcell: TCellSlot,
    pub active: bool,
}

/// One RPC / bulk-put payload.
#[derive(Debug, Clone, PartialEq)]
pub enum CpuMsg {
    /// A T cell at `src` (global voxel id) wants to move to `target`
    /// (owned by the receiving rank). Carries the bid and the cell's
    /// remaining tissue lifetime so the owner can instantiate the moved
    /// cell without another round trip.
    MoveIntent {
        src: u64,
        target: u64,
        bid: u128,
        tissue_steps: u32,
    },
    /// A T cell at `src` wants to bind the expressing epithelial cell at
    /// `target` (owned by the receiving rank).
    BindIntent { src: u64, target: u64, bid: u128 },
    /// Owner's verdict on a cross-boundary move intent.
    MoveResult { src: u64, won: bool },
    /// Owner's verdict on a cross-boundary bind intent.
    BindResult { src: u64, won: bool },
    /// Post-production (pre-diffusion) concentrations of the active
    /// boundary voxels a neighbor's diffusion stencil needs this step
    /// (one aggregated put per neighbor per step).
    GhostConc(Vec<ConcCell>),
    /// End-of-step state of the active boundary voxels, needed by the
    /// neighbor's planning next step (one aggregated put per neighbor per
    /// step; concentrations ride along for ghost extravasation checks).
    GhostState {
        agents: Vec<AgentCell>,
        conc: Vec<ConcCell>,
    },
}

impl WireSize for CpuMsg {
    fn wire_size(&self) -> usize {
        match self {
            CpuMsg::MoveIntent { .. } => 36,
            CpuMsg::BindIntent { .. } => 32,
            CpuMsg::MoveResult { .. } | CpuMsg::BindResult { .. } => 9,
            CpuMsg::GhostConc(cells) => 16 + cells.len() * 16,
            CpuMsg::GhostState { agents, conc } => 16 + agents.len() * 14 + conc.len() * 16,
        }
    }

    fn is_bulk(&self) -> bool {
        matches!(self, CpuMsg::GhostConc(_) | CpuMsg::GhostState { .. })
    }
}

impl Payload for CpuMsg {
    fn digest(&self, crc: &mut Crc64) {
        match self {
            CpuMsg::MoveIntent {
                src,
                target,
                bid,
                tissue_steps,
            } => {
                crc.write_u8(0);
                crc.write_u64(*src);
                crc.write_u64(*target);
                crc.write_u128(*bid);
                crc.write_u32(*tissue_steps);
            }
            CpuMsg::BindIntent { src, target, bid } => {
                crc.write_u8(1);
                crc.write_u64(*src);
                crc.write_u64(*target);
                crc.write_u128(*bid);
            }
            CpuMsg::MoveResult { src, won } => {
                crc.write_u8(2);
                crc.write_u64(*src);
                crc.write_u8(*won as u8);
            }
            CpuMsg::BindResult { src, won } => {
                crc.write_u8(3);
                crc.write_u64(*src);
                crc.write_u8(*won as u8);
            }
            CpuMsg::GhostConc(cells) => {
                crc.write_u8(4);
                crc.write_len(cells.len());
                for c in cells {
                    c.digest_into(crc);
                }
            }
            CpuMsg::GhostState { agents, conc } => {
                crc.write_u8(5);
                crc.write_len(agents.len());
                for a in agents {
                    crc.write_u64(a.gid);
                    crc.write_u8(a.epi_state);
                    crc.write_u32(a.tcell.0);
                    crc.write_u8(a.active as u8);
                }
                crc.write_len(conc.len());
                for c in conc {
                    c.digest_into(crc);
                }
            }
        }
    }

    fn corrupt(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        match self {
            CpuMsg::MoveIntent {
                src,
                target,
                bid,
                tissue_steps,
            } => match rng.next_u64() % 4 {
                0 => *src ^= 1 << (rng.next_u64() % 64),
                1 => *target ^= 1 << (rng.next_u64() % 64),
                2 => *bid ^= 1 << (rng.next_u64() % 128),
                _ => *tissue_steps ^= 1 << (rng.next_u64() % 32),
            },
            CpuMsg::BindIntent { src, target, bid } => match rng.next_u64() % 3 {
                0 => *src ^= 1 << (rng.next_u64() % 64),
                1 => *target ^= 1 << (rng.next_u64() % 64),
                _ => *bid ^= 1 << (rng.next_u64() % 128),
            },
            CpuMsg::MoveResult { src, won } | CpuMsg::BindResult { src, won } => {
                if rng.next_u64().is_multiple_of(2) {
                    *src ^= 1 << (rng.next_u64() % 64);
                } else {
                    *won = !*won;
                }
            }
            CpuMsg::GhostConc(cells) => {
                if let Some(c) = pick(cells, &mut rng) {
                    c.corrupt_with(&mut rng);
                }
            }
            CpuMsg::GhostState { agents, conc } => {
                let n = agents.len() + conc.len();
                if n == 0 {
                    return;
                }
                let i = (rng.next_u64() % n as u64) as usize;
                if i < agents.len() {
                    let a = &mut agents[i];
                    match rng.next_u64() % 4 {
                        0 => a.gid ^= 1 << (rng.next_u64() % 64),
                        1 => a.epi_state ^= 1 << (rng.next_u64() % 8),
                        2 => a.tcell.0 ^= 1 << (rng.next_u64() % 32),
                        _ => a.active = !a.active,
                    }
                } else {
                    conc[i - agents.len()].corrupt_with(&mut rng);
                }
            }
        }
    }

    fn corruptible(&self) -> bool {
        match self {
            CpuMsg::GhostConc(cells) => !cells.is_empty(),
            CpuMsg::GhostState { agents, conc } => !agents.is_empty() || !conc.is_empty(),
            _ => true,
        }
    }
}

impl ConcCell {
    fn digest_into(&self, crc: &mut Crc64) {
        crc.write_u64(self.gid);
        crc.write_f32(self.virions);
        crc.write_f32(self.chem);
    }

    fn corrupt_with(&mut self, rng: &mut SplitMix64) {
        match rng.next_u64() % 3 {
            0 => self.gid ^= 1 << (rng.next_u64() % 64),
            1 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                self.virions = f32::from_bits(self.virions.to_bits() ^ bit);
            }
            _ => {
                let bit = 1u32 << (rng.next_u64() % 32);
                self.chem = f32::from_bits(self.chem.to_bits() ^ bit);
            }
        }
    }
}

fn pick<'a, T>(v: &'a mut [T], rng: &mut SplitMix64) -> Option<&'a mut T> {
    if v.is_empty() {
        None
    } else {
        let i = (rng.next_u64() % v.len() as u64) as usize;
        Some(&mut v[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_a_self_inverse_and_never_silent() {
        let msgs = vec![
            CpuMsg::MoveIntent {
                src: 7,
                target: 9,
                bid: 0xDEAD_BEEF,
                tissue_steps: 40,
            },
            CpuMsg::BindIntent {
                src: 3,
                target: 4,
                bid: 11,
            },
            CpuMsg::MoveResult { src: 5, won: true },
            CpuMsg::BindResult { src: 6, won: false },
            CpuMsg::GhostConc(vec![
                ConcCell {
                    gid: 1,
                    virions: 0.25,
                    chem: 0.5
                };
                4
            ]),
            CpuMsg::GhostState {
                agents: vec![
                    AgentCell {
                        gid: 2,
                        epi_state: 1,
                        tcell: TCellSlot::EMPTY,
                        active: true
                    };
                    3
                ],
                conc: vec![
                    ConcCell {
                        gid: 3,
                        virions: 1.0,
                        chem: 0.0
                    };
                    2
                ],
            },
        ];
        for msg in msgs {
            assert!(msg.corruptible());
            for seed in 0..64u64 {
                let mut m = msg.clone();
                m.corrupt(seed);
                let digest = |m: &CpuMsg| {
                    let mut c = Crc64::new();
                    m.digest(&mut c);
                    c.finish()
                };
                assert_ne!(digest(&m), digest(&msg), "flip changed the digest");
                m.corrupt(seed);
                assert_eq!(m, msg, "second application restores the original");
            }
        }
        // Empty aggregates expose no bits to flip.
        assert!(!CpuMsg::GhostConc(vec![]).corruptible());
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(
            CpuMsg::MoveResult { src: 1, won: true }.wire_size(),
            9,
            "results are tiny RPCs"
        );
        let batch = CpuMsg::GhostConc(vec![
            ConcCell {
                gid: 0,
                virions: 0.0,
                chem: 0.0
            };
            10
        ]);
        assert_eq!(batch.wire_size(), 16 + 160);
        let state = CpuMsg::GhostState {
            agents: vec![
                AgentCell {
                    gid: 0,
                    epi_state: 1,
                    tcell: TCellSlot::EMPTY,
                    active: false
                };
                3
            ],
            conc: vec![],
        };
        assert_eq!(state.wire_size(), 16 + 42);
    }
}
