//! The SIMCoV-CPU executor behind the unified [`Simulation`](simcov_driver::Simulation) driver API.
//!
//! `CpuSim` owns the PGAS runtime and the rank states; everything else —
//! the step loop, statistics, checkpointing, fault recovery, metrics — is
//! the shared driver shell ([`simcov_driver::DriverCore`]) driven through
//! the [`simcov_driver::Executor`] contract. Every recovery/retry/
//! quarantine *decision* along the way is made by the pure control-plane
//! core ([`simcov_driver::DriverState`]); with
//! `Simulation::enable_event_recording` the run's control decisions replay
//! deterministically from the recorded event log.

use gpusim::{CostModel, DeviceCounters, HwProfile};
use pgas::fault::{FaultPlan, IntegrityRecord, PendingStateCorruption, SuperstepError};
use pgas::{allreduce, Bsp, CommCounters, Trace, TransportMode, WorkPool};
use simcov_core::decomp::{Partition, Strategy};
use simcov_core::extrav::TrialTable;
use simcov_core::foi::FoiPattern;
use simcov_core::lanes::KernelMode;
use simcov_core::params::SimParams;
use simcov_core::stats::StatsPartial;
use simcov_core::world::World;
use simcov_driver::{ConfigError, DriverCore, Executor, RecoveryPolicy};

use crate::msg::CpuMsg;
use crate::rank::CpuRank;

/// Configuration of a CPU-baseline run.
#[derive(Debug, Clone)]
pub struct CpuSimConfig {
    pub params: SimParams,
    /// Number of logical CPU ranks (cores in the paper's terms).
    pub n_ranks: usize,
    pub strategy: Strategy,
    pub pattern: FoiPattern,
    /// Fault schedule to arm on the BSP runtime (empty: healthy run).
    pub fault_plan: FaultPlan,
    /// Explicit recovery policy. `None` engages the default policy when a
    /// fault plan is armed, and no recovery otherwise.
    pub recovery: Option<RecoveryPolicy>,
    /// Integrity audit period override. `None` keeps the default behavior
    /// (audits engage automatically when the fault plan injects
    /// corruption); `Some(p)` engages the monitor explicitly with period
    /// `p` (0 = scrub-only, no periodic invariant audit).
    pub audit_period: Option<u64>,
    /// In-barrier retransmit budget override for corrupt batches.
    pub retransmit_budget: Option<u64>,
    /// Diffusion kernel selection (default [`KernelMode::Wide`]; `Scalar`
    /// keeps the reference path alive as the differential oracle). Bitwise
    /// identical either way.
    pub kernel: KernelMode,
    /// Worker-thread count for the shared [`WorkPool`] running rank bodies
    /// concurrently. `None` keeps the host-sized default pool; `Some(0)`
    /// forces inline (serial) execution; `Some(n)` pins `n` workers.
    /// Trajectories are bitwise identical for every value.
    pub threads: Option<usize>,
    /// Exchange transport. [`TransportMode::InProcess`] (default) uses the
    /// double-buffered mailboxes; [`TransportMode::Process`] runs one worker
    /// process per rank over local sockets. Bitwise identical either way.
    pub transport: TransportMode,
}

impl CpuSimConfig {
    pub fn new(params: SimParams, n_ranks: usize) -> Self {
        CpuSimConfig {
            params,
            n_ranks,
            strategy: Strategy::Blocks,
            pattern: FoiPattern::UniformLattice,
            fault_plan: FaultPlan::none(),
            recovery: None,
            audit_period: None,
            retransmit_budget: None,
            kernel: KernelMode::default(),
            threads: None,
            transport: TransportMode::InProcess,
        }
    }

    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn with_pattern(mut self, pattern: FoiPattern) -> Self {
        self.pattern = pattern;
        self
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    pub fn with_audit_period(mut self, period: u64) -> Self {
        self.audit_period = Some(period);
        self
    }

    pub fn with_retransmit_budget(mut self, budget: u64) -> Self {
        self.retransmit_budget = Some(budget);
        self
    }

    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    pub fn with_transport(mut self, transport: TransportMode) -> Self {
        self.transport = transport;
        self
    }
}

/// A running CPU-baseline simulation. Program against it through the
/// [`Simulation`](simcov_driver::Simulation) trait.
pub struct CpuSim {
    core: DriverCore,
    bsp: Bsp<CpuMsg>,
    pub ranks: Vec<CpuRank>,
    kernel: KernelMode,
}

impl CpuSim {
    pub fn new(cfg: CpuSimConfig) -> Result<Self, ConfigError> {
        cfg.params.validate().map_err(ConfigError::InvalidParams)?;
        let world = World::seeded(&cfg.params, cfg.pattern);
        Self::from_world(cfg, world)
    }

    /// Build from an explicit initial world (carved airways, CT lesions...).
    pub fn from_world(cfg: CpuSimConfig, world: World) -> Result<Self, ConfigError> {
        let mut core = DriverCore::new(
            cfg.params,
            cfg.n_ranks,
            cfg.strategy,
            &cfg.fault_plan,
            cfg.recovery,
        )?;
        if let Some(period) = cfg.audit_period {
            core.enable_integrity(period);
        }
        core.check_world(&world)?;
        if let Some(n) = cfg.threads {
            // Pin the worker count: rank superstep bodies run truly
            // concurrently on `n` workers (0 = inline). The pool only
            // schedules — reduction order is fixed by `allreduce`/`ExactSum`
            // — so every thread count yields the same bits.
            core.share_pool(std::sync::Arc::new(WorkPool::new(n)));
        }
        let ranks: Vec<CpuRank> = (0..cfg.n_ranks)
            .map(|r| CpuRank::new(r, &core.partition, &world, cfg.kernel))
            .collect();
        let mut bsp = Bsp::new(cfg.n_ranks);
        bsp.inject_faults(cfg.fault_plan);
        if let Some(budget) = cfg.retransmit_budget {
            bsp.set_retransmit_budget(budget);
        }
        if let TransportMode::Process(tcfg) = cfg.transport {
            bsp.attach_process_transport(tcfg)
                .map_err(|e| ConfigError::Transport(e.to_string()))?;
        }
        Ok(CpuSim {
            core,
            bsp,
            ranks,
            kernel: cfg.kernel,
        })
    }

    /// The current domain decomposition (re-partitioned after recovery).
    pub fn partition(&self) -> &Partition {
        &self.core.partition
    }

    /// The busiest rank's work counters (the compute critical path).
    pub fn max_rank_counters(&self) -> DeviceCounters {
        self.ranks
            .iter()
            .fold(DeviceCounters::new(), |acc, r| acc.max(&r.counters))
    }
}

impl Executor for CpuSim {
    fn core(&self) -> &DriverCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut DriverCore {
        &mut self.core
    }

    fn exec_name(&self) -> &'static str {
        "cpu"
    }

    fn unit_count(&self) -> usize {
        self.ranks.len()
    }

    fn live_active_units(&self) -> u64 {
        self.ranks.iter().map(|r| r.n_active() as u64).sum()
    }

    fn live_counters(&self) -> DeviceCounters {
        self.ranks.iter().fold(DeviceCounters::new(), |mut acc, r| {
            acc.merge(&r.counters);
            acc
        })
    }

    fn hw_profile<'a>(&self, model: &'a CostModel) -> &'a HwProfile {
        &model.cpu
    }

    fn bsp_counters(&self) -> CommCounters {
        self.bsp.counters
    }

    fn bsp_trace(&self) -> &Trace {
        &self.bsp.trace
    }

    fn bsp_enable_trace(&mut self) {
        self.bsp.enable_trace();
    }

    fn wire_counters(&self) -> Option<pgas::TransportCounters> {
        self.bsp
            .has_transport()
            .then(|| self.bsp.transport_counters().clone())
    }

    fn attach_unit_telemetry(&mut self) {
        self.bsp.attach_telemetry(self.core.telemetry.clone());
    }

    fn take_rank_walls(&mut self) -> Vec<simcov_telemetry::RankWalls> {
        self.bsp.take_rank_walls()
    }

    fn per_unit_active(&self) -> Vec<u64> {
        self.ranks.iter().map(|r| r.n_active() as u64).collect()
    }

    /// One timestep = three supersteps + the statistics allreduce.
    fn compute_step(
        &mut self,
        t: u64,
        trials: &TrialTable,
    ) -> Result<StatsPartial, SuperstepError> {
        let p = self.core.params.clone();
        let partition = self.core.partition.clone();
        let p_ref = &p;
        let part_ref = &partition;

        // Superstep 1: plan.
        let _extrav: Vec<u64> =
            self.bsp
                .try_superstep(&self.core.pool, &mut self.ranks, |rank, s, inbox, out| {
                    debug_assert_eq!(rank, s.rank);
                    s.plan(p_ref, t, trials, part_ref, inbox, out)
                })?;

        // Superstep 2: resolve + FSM + production.
        self.bsp
            .try_superstep(&self.core.pool, &mut self.ranks, |_r, s, inbox, out| {
                s.resolve(p_ref, t, inbox, out);
            })?;

        // Superstep 3: finish + stats partial.
        let partials: Vec<StatsPartial> =
            self.bsp
                .try_superstep(&self.core.pool, &mut self.ranks, |_r, s, inbox, out| {
                    s.finish(p_ref, t, inbox, out)
                })?;

        // Statistics allreduce (the per-step UPC++ reduction of §3.3).
        // Exact summation makes the result independent of rank count.
        Ok(allreduce(
            &partials,
            |mut a, b| {
                a += b;
                a
            },
            std::mem::size_of::<StatsPartial>(),
            &mut self.bsp.counters,
        ))
    }

    fn take_pending_state_corruptions(&mut self) -> Vec<PendingStateCorruption> {
        self.bsp.take_pending_state_corruptions()
    }

    fn corrupt_unit_state(&mut self, unit: usize, seed: u64) {
        if let Some(r) = self.ranks.get_mut(unit) {
            r.corrupt_bit(seed);
        }
    }

    fn take_bsp_integrity_records(&mut self) -> Vec<IntegrityRecord> {
        self.bsp.take_integrity_records()
    }

    fn rebuild(&mut self, world: &World, n_units: usize) -> Result<(), ConfigError> {
        let partition = Partition::try_new(self.core.params.dims, n_units, self.core.strategy)
            .map_err(ConfigError::Partition)?;
        self.ranks = (0..n_units)
            .map(|r| CpuRank::new(r, &partition, world, self.kernel))
            .collect();
        let bsp = std::mem::replace(&mut self.bsp, Bsp::new(1));
        self.bsp = bsp.rebuilt(n_units);
        // `rebuilt` carries the telemetry handle forward; re-attach from the
        // core anyway so a rebuild can never silently shed instrumentation.
        if self.core.telemetry.is_enabled() {
            self.bsp.attach_telemetry(self.core.telemetry.clone());
        }
        self.core.partition = partition;
        Ok(())
    }

    /// Assemble the full global world from all ranks (verification).
    fn assemble_world(&self) -> World {
        let mut world = World::healthy(self.core.params.dims);
        for r in &self.ranks {
            r.write_into(&mut world);
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::grid::GridDims;
    use simcov_core::serial::SerialSim;
    use simcov_driver::Simulation;

    fn test_params(steps: u64) -> SimParams {
        SimParams::test_config(GridDims::new2d(24, 24), steps, 2, 42)
    }

    fn assert_matches_serial(n_ranks: usize, strategy: Strategy, steps: u64) {
        let p = test_params(steps);
        let mut serial = SerialSim::new(p.clone());
        serial.run();

        let cfg = CpuSimConfig::new(p, n_ranks).with_strategy(strategy);
        let mut cpu = CpuSim::new(cfg).expect("valid config");
        cpu.run().expect("healthy run");

        let world = cpu.gather_world();
        if let Some((idx, why)) = serial.world.first_difference(&world) {
            panic!("state diverged at voxel {idx} after {steps} steps ({n_ranks} ranks): {why}");
        }
        // Exact statistics reduction: serial and distributed histories are
        // bitwise identical, not just close.
        assert_eq!(
            serial.history,
            *cpu.history(),
            "stats must be bitwise identical across executors"
        );
    }

    #[test]
    fn matches_serial_2_ranks_linear() {
        assert_matches_serial(2, Strategy::Linear, 150);
    }

    #[test]
    fn matches_serial_4_ranks_blocks() {
        assert_matches_serial(4, Strategy::Blocks, 150);
    }

    #[test]
    fn matches_serial_9_ranks_blocks() {
        assert_matches_serial(9, Strategy::Blocks, 100);
    }

    #[test]
    fn matches_serial_single_rank() {
        assert_matches_serial(1, Strategy::Blocks, 100);
    }

    #[test]
    fn comm_counters_accumulate() {
        let p = test_params(60);
        let mut cpu = CpuSim::new(CpuSimConfig::new(p, 4)).unwrap();
        cpu.run().unwrap();
        let cc = cpu.comm_counters();
        assert_eq!(cc.supersteps, 60 * 3);
        assert_eq!(cc.allreduces, 60);
        assert!(cc.messages > 0, "boundary traffic expected");
    }

    #[test]
    fn work_counters_track_active_voxels() {
        let p = test_params(60);
        let mut cpu = CpuSim::new(CpuSimConfig::new(p, 4)).unwrap();
        cpu.run().unwrap();
        let total = cpu.total_counters();
        assert!(total.update.elements > 0);
        // Active-list processing must touch far fewer voxel-steps than a
        // full sweep would.
        let full_sweep = 24 * 24 * 60;
        assert!(
            total.update.elements < full_sweep,
            "active list should skip inactive regions: {} >= {full_sweep}",
            total.update.elements
        );
    }

    #[test]
    fn zero_ranks_is_a_config_error() {
        let p = test_params(10);
        match CpuSim::new(CpuSimConfig::new(p, 0)) {
            Err(ConfigError::ZeroUnits) => {}
            other => panic!("expected ZeroUnits, got {:?}", other.err()),
        }
    }
}
