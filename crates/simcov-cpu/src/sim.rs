//! The SIMCoV-CPU driver: owns the PGAS runtime, the rank states, the
//! replicated vascular pool and the statistics log.

use gpusim::metrics::{MetricsSink, SnapshotTaker, StepRecord};
use gpusim::{CostModel, DeviceCounters};
use pgas::{allreduce, Bsp, WorkPool};
use simcov_core::decomp::{Partition, Strategy};
use simcov_core::extrav::TrialTable;
use simcov_core::foi::FoiPattern;
use simcov_core::params::SimParams;
use simcov_core::stats::{StepStats, TimeSeries};
use simcov_core::tcell::VascularPool;
use simcov_core::world::World;

use crate::msg::CpuMsg;
use crate::rank::CpuRank;

/// Configuration of a CPU-baseline run.
#[derive(Debug, Clone)]
pub struct CpuSimConfig {
    pub params: SimParams,
    /// Number of logical CPU ranks (cores in the paper's terms).
    pub n_ranks: usize,
    pub strategy: Strategy,
    pub pattern: FoiPattern,
}

impl CpuSimConfig {
    pub fn new(params: SimParams, n_ranks: usize) -> Self {
        CpuSimConfig {
            params,
            n_ranks,
            strategy: Strategy::Blocks,
            pattern: FoiPattern::UniformLattice,
        }
    }
}

/// A running CPU-baseline simulation.
pub struct CpuSim {
    pub params: SimParams,
    pub partition: Partition,
    pool: WorkPool,
    bsp: Bsp<CpuMsg>,
    pub ranks: Vec<CpuRank>,
    pub vascular: VascularPool,
    pub step: u64,
    pub history: TimeSeries,
    /// Installed per-step metrics consumer (None: metrics are off and the
    /// step loop takes no clock readings).
    metrics: Option<Box<dyn MetricsSink>>,
    snapshots: SnapshotTaker,
    prev_comm: pgas::CommCounters,
}

impl CpuSim {
    pub fn new(cfg: CpuSimConfig) -> Self {
        cfg.params.validate().expect("invalid parameters");
        let world = World::seeded(&cfg.params, cfg.pattern);
        Self::from_world(cfg, world)
    }

    /// Build from an explicit initial world (carved airways, CT lesions...).
    pub fn from_world(cfg: CpuSimConfig, world: World) -> Self {
        assert_eq!(cfg.params.dims, world.dims);
        let partition = Partition::new(cfg.params.dims, cfg.n_ranks, cfg.strategy);
        let ranks: Vec<CpuRank> = (0..cfg.n_ranks)
            .map(|r| CpuRank::new(r, &partition, &world))
            .collect();
        CpuSim {
            params: cfg.params,
            partition,
            pool: WorkPool::host_sized(),
            bsp: Bsp::new(cfg.n_ranks),
            ranks,
            vascular: VascularPool::new(),
            step: 0,
            history: TimeSeries::default(),
            metrics: None,
            snapshots: SnapshotTaker::new(),
            prev_comm: pgas::CommCounters::default(),
        }
    }

    /// Install a per-step metrics consumer; every subsequent
    /// [`advance_step`](Self::advance_step) emits one [`StepRecord`].
    pub fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink>) {
        self.metrics = Some(sink);
    }

    /// Turn on per-superstep tracing in the underlying BSP runtime.
    pub fn enable_trace(&mut self) {
        self.bsp.enable_trace();
    }

    /// The runtime's superstep trace (empty unless [`enable_trace`](Self::enable_trace)
    /// was called).
    pub fn trace(&self) -> &pgas::Trace {
        &self.bsp.trace
    }

    /// Advance one timestep (three supersteps + statistics allreduce).
    pub fn advance_step(&mut self) {
        // Only read the clock when someone is listening.
        let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let t = self.step;
        let p = self.params.clone();
        let trials = TrialTable::build(&p, t, self.vascular.circulating());
        let partition = self.partition.clone();

        // Superstep 1: plan.
        let trials_ref = &trials;
        let p_ref = &p;
        let part_ref = &partition;
        let _extrav: Vec<u64> =
            self.bsp
                .superstep(&self.pool, &mut self.ranks, |rank, s, inbox, out| {
                    debug_assert_eq!(rank, s.rank);
                    s.plan(p_ref, t, trials_ref, part_ref, inbox, out)
                });

        // Superstep 2: resolve + FSM + production.
        self.bsp
            .superstep(&self.pool, &mut self.ranks, |_r, s, inbox, out| {
                s.resolve(p_ref, t, inbox, out);
            });

        // Superstep 3: finish + stats partial.
        let partials: Vec<StepStats> =
            self.bsp
                .superstep(&self.pool, &mut self.ranks, |_r, s, inbox, out| {
                    s.finish(p_ref, t, inbox, out)
                });

        // Statistics allreduce (the per-step UPC++ reduction of §3.3).
        let mut stats = allreduce(
            &partials,
            |mut a, b| {
                a += b;
                a
            },
            std::mem::size_of::<StepStats>(),
            &mut self.bsp.counters,
        );
        self.vascular.advance(
            t,
            p.tcell_generation_rate,
            p.tcell_initial_delay,
            p.tcell_vascular_period,
            stats.extravasated,
        );
        stats.tcells_vasculature = self.vascular.circulating();
        stats.step = t;
        self.history.push(stats);
        self.step += 1;
        if let Some(t0) = t0 {
            self.emit_step_record(t, t0.elapsed().as_secs_f64());
        }
    }

    fn emit_step_record(&mut self, step: u64, real_seconds: f64) {
        let comm = self.bsp.counters;
        let d_msgs = (comm.messages + comm.bulk_messages)
            .saturating_sub(self.prev_comm.messages + self.prev_comm.bulk_messages);
        let d_bytes = (comm.bytes + comm.bulk_bytes)
            .saturating_sub(self.prev_comm.bytes + self.prev_comm.bulk_bytes);
        self.prev_comm = comm;

        let model = CostModel::default();
        let total = self.total_counters();
        let phases = self.snapshots.take(step, &total, &model, &model.cpu);
        let stats = self.history.steps.last().expect("step just pushed");
        let rec = StepRecord {
            step,
            agents: stats.tcells_tissue,
            virions: stats.virions,
            chemokine: stats.chemokine,
            active_units: self.ranks.iter().map(|r| r.n_active() as u64).sum(),
            comm_messages: d_msgs,
            comm_bytes: d_bytes,
            sim_seconds: phases.cost.total() / self.partition.n_ranks().max(1) as f64,
            real_seconds,
            phases,
        };
        if let Some(sink) = self.metrics.as_mut() {
            sink.record(rec);
        }
    }

    pub fn run(&mut self) {
        while self.step < self.params.steps {
            self.advance_step();
        }
    }

    /// Assemble the full global world from all ranks (verification).
    pub fn gather_world(&self) -> World {
        let mut world = World::healthy(self.params.dims);
        for r in &self.ranks {
            r.write_into(&mut world);
        }
        world
    }

    /// Communication counters of the runtime.
    pub fn comm_counters(&self) -> pgas::CommCounters {
        self.bsp.counters
    }

    /// The busiest rank's work counters (the compute critical path).
    pub fn max_rank_counters(&self) -> DeviceCounters {
        self.ranks
            .iter()
            .fold(DeviceCounters::new(), |acc, r| acc.max(&r.counters))
    }

    /// Aggregate work counters across ranks.
    pub fn total_counters(&self) -> DeviceCounters {
        self.ranks.iter().fold(DeviceCounters::new(), |mut acc, r| {
            acc.merge(&r.counters);
            acc
        })
    }

    pub fn last_stats(&self) -> Option<&StepStats> {
        self.history.steps.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::grid::GridDims;
    use simcov_core::serial::SerialSim;

    fn test_params(steps: u64) -> SimParams {
        SimParams::test_config(GridDims::new2d(24, 24), steps, 2, 42)
    }

    fn assert_matches_serial(n_ranks: usize, strategy: Strategy, steps: u64) {
        let p = test_params(steps);
        let mut serial = SerialSim::new(p.clone());
        serial.run();

        let mut cfg = CpuSimConfig::new(p, n_ranks);
        cfg.strategy = strategy;
        let mut cpu = CpuSim::new(cfg);
        cpu.run();

        let world = cpu.gather_world();
        if let Some((idx, why)) = serial.world.first_difference(&world) {
            panic!("state diverged at voxel {idx} after {steps} steps ({n_ranks} ranks): {why}");
        }
        // Integer statistics must agree exactly; float sums to tight tolerance.
        for (a, b) in serial.history.steps.iter().zip(cpu.history.steps.iter()) {
            assert!(
                a.approx_eq(b, 1e-9),
                "stats diverged at step {}: {a:?} vs {b:?}",
                a.step
            );
        }
    }

    #[test]
    fn matches_serial_2_ranks_linear() {
        assert_matches_serial(2, Strategy::Linear, 150);
    }

    #[test]
    fn matches_serial_4_ranks_blocks() {
        assert_matches_serial(4, Strategy::Blocks, 150);
    }

    #[test]
    fn matches_serial_9_ranks_blocks() {
        assert_matches_serial(9, Strategy::Blocks, 100);
    }

    #[test]
    fn matches_serial_single_rank() {
        assert_matches_serial(1, Strategy::Blocks, 100);
    }

    #[test]
    fn comm_counters_accumulate() {
        let p = test_params(60);
        let mut cpu = CpuSim::new(CpuSimConfig::new(p, 4));
        cpu.run();
        let cc = cpu.comm_counters();
        assert_eq!(cc.supersteps, 60 * 3);
        assert_eq!(cc.allreduces, 60);
        assert!(cc.messages > 0, "boundary traffic expected");
    }

    #[test]
    fn work_counters_track_active_voxels() {
        let p = test_params(60);
        let mut cpu = CpuSim::new(CpuSimConfig::new(p, 4));
        cpu.run();
        let total = cpu.total_counters();
        assert!(total.update.elements > 0);
        // Active-list processing must touch far fewer voxel-steps than a
        // full sweep would.
        let full_sweep = 24 * 24 * 60;
        assert!(
            total.update.elements < full_sweep,
            "active list should skip inactive regions: {} >= {full_sweep}",
            total.update.elements
        );
    }
}
