//! A simulated device: identity, work counters and link-traffic accounting.

use crate::counters::DeviceCounters;

/// Halo traffic of one device split by link locality (NVLink within a node,
/// NIC across nodes) — the distinction behind the paper's weak-scaling
/// "initial cost of parallelism" between 4 and 16 GPUs (§4.3/§6).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkTraffic {
    pub intra_msgs: u64,
    pub intra_bytes: u64,
    pub inter_msgs: u64,
    pub inter_bytes: u64,
}

impl LinkTraffic {
    pub fn record(&mut self, bytes: u64, same_node: bool) {
        if same_node {
            self.intra_msgs += 1;
            self.intra_bytes += bytes;
        } else {
            self.inter_msgs += 1;
            self.inter_bytes += bytes;
        }
    }

    pub fn merge(&mut self, o: &LinkTraffic) {
        self.intra_msgs += o.intra_msgs;
        self.intra_bytes += o.intra_bytes;
        self.inter_msgs += o.inter_msgs;
        self.inter_bytes += o.inter_bytes;
    }

    /// Boundary-class extrapolation to paper scale: per-step traffic scales
    /// with the subdomain surface (× s) over × s more steps; message counts
    /// are per-step (× s).
    pub fn extrapolate(&self, s: f64) -> LinkTraffic {
        let f = |v: u64, k: f64| (v as f64 * k).round() as u64;
        LinkTraffic {
            intra_msgs: f(self.intra_msgs, s),
            intra_bytes: f(self.intra_bytes, s * s),
            inter_msgs: f(self.inter_msgs, s),
            inter_bytes: f(self.inter_bytes, s * s),
        }
    }
}

/// A simulated device owned by one logical rank.
#[derive(Debug, Clone, Default)]
pub struct Device {
    pub id: usize,
    pub counters: DeviceCounters,
    pub link: LinkTraffic,
}

impl Device {
    pub fn new(id: usize) -> Self {
        Device {
            id,
            counters: DeviceCounters::new(),
            link: LinkTraffic::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_record_by_locality() {
        let mut l = LinkTraffic::default();
        l.record(100, true);
        l.record(200, false);
        l.record(50, false);
        assert_eq!(l.intra_msgs, 1);
        assert_eq!(l.intra_bytes, 100);
        assert_eq!(l.inter_msgs, 2);
        assert_eq!(l.inter_bytes, 250);
    }

    #[test]
    fn link_merge_and_extrapolate() {
        let mut a = LinkTraffic {
            intra_msgs: 1,
            intra_bytes: 10,
            inter_msgs: 2,
            inter_bytes: 20,
        };
        a.merge(&a.clone());
        assert_eq!(a.inter_bytes, 40);
        let e = a.extrapolate(3.0);
        assert_eq!(e.intra_msgs, 6);
        assert_eq!(e.intra_bytes, 180);
        assert_eq!(e.inter_msgs, 12);
        assert_eq!(e.inter_bytes, 360);
    }

    #[test]
    fn device_new() {
        let d = Device::new(3);
        assert_eq!(d.id, 3);
        assert_eq!(d.counters, DeviceCounters::new());
    }
}
