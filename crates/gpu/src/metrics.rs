//! Structured per-step metrics: phase snapshots and the [`MetricsSink`]
//! interface the executors emit into.
//!
//! The counters in [`crate::counters`] are cumulative totals; observability
//! needs *per-step* deltas tied to named kernel phases (update / reduce /
//! tile / halo) so that a regression in one phase is visible the step it
//! happens. [`SnapshotTaker`] diffs cumulative [`DeviceCounters`] into
//! per-step [`PhaseSnapshot`]s, and the simulation drivers publish one
//! [`StepRecord`] per step through whatever [`MetricsSink`] the embedder
//! installs (an in-memory [`SharedSink`] for tests and benches, a JSON
//! writer in the bench harness, ...).

use crate::cost::{CostBreakdown, CostModel, HwProfile};
use crate::counters::{CategoryCounters, DeviceCounters, KernelCategory};
use pgas::fault::{IntegrityRecord, RecoveryRecord};

impl KernelCategory {
    /// Stable lowercase phase name, used as the key in structured output.
    pub const fn name(self) -> &'static str {
        match self {
            KernelCategory::UpdateAgents => "update",
            KernelCategory::ReduceStats => "reduce",
            KernelCategory::TileCheck => "tile",
            KernelCategory::Halo => "halo",
        }
    }

    pub const ALL: [KernelCategory; 4] = [
        KernelCategory::UpdateAgents,
        KernelCategory::ReduceStats,
        KernelCategory::TileCheck,
        KernelCategory::Halo,
    ];
}

impl CategoryCounters {
    /// Per-field saturating difference (`self - earlier`): the work done
    /// between two cumulative observations.
    pub fn since(&self, earlier: &CategoryCounters) -> CategoryCounters {
        CategoryCounters {
            elements: self.elements.saturating_sub(earlier.elements),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            atomics: self.atomics.saturating_sub(earlier.atomics),
            smem_ops: self.smem_ops.saturating_sub(earlier.smem_ops),
            launches: self.launches.saturating_sub(earlier.launches),
        }
    }
}

impl DeviceCounters {
    /// Per-category saturating difference (`self - earlier`).
    pub fn since(&self, earlier: &DeviceCounters) -> DeviceCounters {
        DeviceCounters {
            update: self.update.since(&earlier.update),
            reduce: self.reduce.since(&earlier.reduce),
            tile_check: self.tile_check.since(&earlier.tile_check),
            halo: self.halo.since(&earlier.halo),
        }
    }
}

impl CostBreakdown {
    /// The breakdown as `(phase name, seconds)` pairs, in the fixed
    /// update / reduce / tile / halo order.
    pub fn phases(&self) -> [(&'static str, f64); 4] {
        [
            (KernelCategory::UpdateAgents.name(), self.update_s),
            (KernelCategory::ReduceStats.name(), self.reduce_s),
            (KernelCategory::TileCheck.name(), self.tile_s),
            (KernelCategory::Halo.name(), self.halo_s),
        ]
    }
}

/// One step's work, as a counter delta plus its simulated cost per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSnapshot {
    pub step: u64,
    /// Work performed during this step (cumulative-counter delta).
    pub work: DeviceCounters,
    /// Simulated seconds per phase under the snapshot's hardware profile.
    pub cost: CostBreakdown,
}

/// Diffs cumulative counters into per-step [`PhaseSnapshot`]s.
#[derive(Debug, Default)]
pub struct SnapshotTaker {
    prev: DeviceCounters,
}

impl SnapshotTaker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the work between the previous call and `current`, costed
    /// under `hw`.
    pub fn take(
        &mut self,
        step: u64,
        current: &DeviceCounters,
        model: &CostModel,
        hw: &HwProfile,
    ) -> PhaseSnapshot {
        let work = current.since(&self.prev);
        self.prev = *current;
        PhaseSnapshot {
            step,
            work,
            cost: model.device_breakdown(hw, &work),
        }
    }
}

/// One structured record per simulation step, emitted by both executors.
///
/// The executor-independent shape lives in the shared telemetry crate
/// ([`simcov_telemetry::StepRecord`]); this alias pins its layer-specific
/// payloads — per-phase device work, completed recoveries, integrity events
/// — and is the concrete record type the whole workspace exchanges. (Not
/// `Copy`: a record owns the recovery events that completed during the
/// step, which is almost always an empty `Vec`.)
pub type StepRecord = simcov_telemetry::StepRecord<PhaseSnapshot, RecoveryRecord, IntegrityRecord>;

/// Consumer of per-step records (re-exported from the telemetry crate;
/// generic over the record type). `Send` so an installed sink never stops a
/// simulation from moving across threads.
pub use simcov_telemetry::MetricsSink;

/// A cloneable, thread-safe in-memory sink over the workspace's concrete
/// [`StepRecord`]: hand one clone to the simulation and keep another to
/// read the records afterwards.
pub type SharedSink = simcov_telemetry::SharedSink<StepRecord>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_are_stable() {
        let names: Vec<&str> = KernelCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["update", "reduce", "tile", "halo"]);
    }

    #[test]
    fn since_is_a_saturating_delta() {
        let mut a = DeviceCounters::new();
        a.update.elements = 100;
        a.reduce.atomics = 7;
        let mut b = a;
        b.update.elements = 150;
        b.halo.bytes = 32;
        let d = b.since(&a);
        assert_eq!(d.update.elements, 50);
        assert_eq!(d.reduce.atomics, 0);
        assert_eq!(d.halo.bytes, 32);
        // Saturation instead of wrap on (impossible) counter regression.
        assert_eq!(a.since(&b).update.elements, 0);
    }

    #[test]
    fn snapshot_taker_diffs_consecutive_steps() {
        let model = CostModel::default();
        let mut taker = SnapshotTaker::new();
        let mut c = DeviceCounters::new();
        c.update.elements = 1000;
        let s0 = taker.take(0, &c, &model, &model.gpu);
        assert_eq!(s0.work.update.elements, 1000);
        assert!(s0.cost.update_s > 0.0);
        c.update.elements = 1800;
        c.reduce.launches = 2;
        let s1 = taker.take(1, &c, &model, &model.gpu);
        assert_eq!(s1.step, 1);
        assert_eq!(s1.work.update.elements, 800);
        assert_eq!(s1.work.reduce.launches, 2);
    }

    #[test]
    fn phases_expose_breakdown_in_order() {
        let b = CostBreakdown {
            update_s: 1.0,
            reduce_s: 2.0,
            tile_s: 3.0,
            halo_s: 4.0,
        };
        let p = b.phases();
        assert_eq!(p[0], ("update", 1.0));
        assert_eq!(p[3], ("halo", 4.0));
    }

    #[test]
    fn shared_sink_accumulates_across_clones() {
        let sink = SharedSink::new();
        let mut writer = sink.clone();
        for step in 0..3 {
            writer.record(StepRecord {
                step,
                ..Default::default()
            });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.records()[2].step, 2);
    }
}
