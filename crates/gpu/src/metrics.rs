//! Structured per-step metrics: phase snapshots and the [`MetricsSink`]
//! interface the executors emit into.
//!
//! The counters in [`crate::counters`] are cumulative totals; observability
//! needs *per-step* deltas tied to named kernel phases (update / reduce /
//! tile / halo) so that a regression in one phase is visible the step it
//! happens. [`SnapshotTaker`] diffs cumulative [`DeviceCounters`] into
//! per-step [`PhaseSnapshot`]s, and the simulation drivers publish one
//! [`StepRecord`] per step through whatever [`MetricsSink`] the embedder
//! installs (an in-memory [`SharedSink`] for tests and benches, a JSON
//! writer in the bench harness, ...).

use crate::cost::{CostBreakdown, CostModel, HwProfile};
use crate::counters::{CategoryCounters, DeviceCounters, KernelCategory};
use pgas::fault::{IntegrityRecord, RecoveryRecord};
use std::sync::{Arc, Mutex};

impl KernelCategory {
    /// Stable lowercase phase name, used as the key in structured output.
    pub const fn name(self) -> &'static str {
        match self {
            KernelCategory::UpdateAgents => "update",
            KernelCategory::ReduceStats => "reduce",
            KernelCategory::TileCheck => "tile",
            KernelCategory::Halo => "halo",
        }
    }

    pub const ALL: [KernelCategory; 4] = [
        KernelCategory::UpdateAgents,
        KernelCategory::ReduceStats,
        KernelCategory::TileCheck,
        KernelCategory::Halo,
    ];
}

impl CategoryCounters {
    /// Per-field saturating difference (`self - earlier`): the work done
    /// between two cumulative observations.
    pub fn since(&self, earlier: &CategoryCounters) -> CategoryCounters {
        CategoryCounters {
            elements: self.elements.saturating_sub(earlier.elements),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            atomics: self.atomics.saturating_sub(earlier.atomics),
            smem_ops: self.smem_ops.saturating_sub(earlier.smem_ops),
            launches: self.launches.saturating_sub(earlier.launches),
        }
    }
}

impl DeviceCounters {
    /// Per-category saturating difference (`self - earlier`).
    pub fn since(&self, earlier: &DeviceCounters) -> DeviceCounters {
        DeviceCounters {
            update: self.update.since(&earlier.update),
            reduce: self.reduce.since(&earlier.reduce),
            tile_check: self.tile_check.since(&earlier.tile_check),
            halo: self.halo.since(&earlier.halo),
        }
    }
}

impl CostBreakdown {
    /// The breakdown as `(phase name, seconds)` pairs, in the fixed
    /// update / reduce / tile / halo order.
    pub fn phases(&self) -> [(&'static str, f64); 4] {
        [
            (KernelCategory::UpdateAgents.name(), self.update_s),
            (KernelCategory::ReduceStats.name(), self.reduce_s),
            (KernelCategory::TileCheck.name(), self.tile_s),
            (KernelCategory::Halo.name(), self.halo_s),
        ]
    }
}

/// One step's work, as a counter delta plus its simulated cost per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSnapshot {
    pub step: u64,
    /// Work performed during this step (cumulative-counter delta).
    pub work: DeviceCounters,
    /// Simulated seconds per phase under the snapshot's hardware profile.
    pub cost: CostBreakdown,
}

/// Diffs cumulative counters into per-step [`PhaseSnapshot`]s.
#[derive(Debug, Default)]
pub struct SnapshotTaker {
    prev: DeviceCounters,
}

impl SnapshotTaker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the work between the previous call and `current`, costed
    /// under `hw`.
    pub fn take(
        &mut self,
        step: u64,
        current: &DeviceCounters,
        model: &CostModel,
        hw: &HwProfile,
    ) -> PhaseSnapshot {
        let work = current.since(&self.prev);
        self.prev = *current;
        PhaseSnapshot {
            step,
            work,
            cost: model.device_breakdown(hw, &work),
        }
    }
}

/// One structured record per simulation step, emitted by both executors.
/// (Not `Copy`: a record owns the recovery events that completed during the
/// step, which is almost always an empty `Vec`.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepRecord {
    pub step: u64,
    /// Agents in play: T cells resident in tissue.
    pub agents: u64,
    /// Total virion mass (model-level cross-executor comparable).
    pub virions: f64,
    /// Total chemokine mass.
    pub chemokine: f64,
    /// Active work units: active-list voxels (CPU) or active tiles (GPU),
    /// summed over ranks/devices.
    pub active_units: u64,
    /// Point-to-point + bulk messages delivered this step.
    pub comm_messages: u64,
    /// Point-to-point + bulk payload bytes delivered this step.
    pub comm_bytes: u64,
    /// Simulated seconds of this step under the cost model: aggregate phase
    /// cost normalized per rank/device (perfect-balance approximation).
    pub sim_seconds: f64,
    /// Measured wall-clock seconds of this step.
    pub real_seconds: f64,
    /// Per-phase snapshot of this step's aggregate device work.
    pub phases: PhaseSnapshot,
    /// Fault recoveries (rollback + re-partition + replay) that completed
    /// while computing this step. Empty in healthy runs.
    pub recoveries: Vec<RecoveryRecord>,
    /// Integrity events (detected corruption + the healing tier that fixed
    /// it) attributed to this step. Empty in healthy runs.
    pub integrity: Vec<IntegrityRecord>,
}

/// Consumer of per-step records. `Send` so an installed sink never stops a
/// simulation from moving across threads.
pub trait MetricsSink: Send {
    fn record(&mut self, rec: StepRecord);
}

/// A cloneable, thread-safe in-memory sink: hand one clone to the
/// simulation and keep another to read the records afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedSink {
    records: Arc<Mutex<Vec<StepRecord>>>,
}

impl SharedSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of all records so far.
    pub fn records(&self) -> Vec<StepRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MetricsSink for SharedSink {
    fn record(&mut self, rec: StepRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_are_stable() {
        let names: Vec<&str> = KernelCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["update", "reduce", "tile", "halo"]);
    }

    #[test]
    fn since_is_a_saturating_delta() {
        let mut a = DeviceCounters::new();
        a.update.elements = 100;
        a.reduce.atomics = 7;
        let mut b = a;
        b.update.elements = 150;
        b.halo.bytes = 32;
        let d = b.since(&a);
        assert_eq!(d.update.elements, 50);
        assert_eq!(d.reduce.atomics, 0);
        assert_eq!(d.halo.bytes, 32);
        // Saturation instead of wrap on (impossible) counter regression.
        assert_eq!(a.since(&b).update.elements, 0);
    }

    #[test]
    fn snapshot_taker_diffs_consecutive_steps() {
        let model = CostModel::default();
        let mut taker = SnapshotTaker::new();
        let mut c = DeviceCounters::new();
        c.update.elements = 1000;
        let s0 = taker.take(0, &c, &model, &model.gpu);
        assert_eq!(s0.work.update.elements, 1000);
        assert!(s0.cost.update_s > 0.0);
        c.update.elements = 1800;
        c.reduce.launches = 2;
        let s1 = taker.take(1, &c, &model, &model.gpu);
        assert_eq!(s1.step, 1);
        assert_eq!(s1.work.update.elements, 800);
        assert_eq!(s1.work.reduce.launches, 2);
    }

    #[test]
    fn phases_expose_breakdown_in_order() {
        let b = CostBreakdown {
            update_s: 1.0,
            reduce_s: 2.0,
            tile_s: 3.0,
            halo_s: 4.0,
        };
        let p = b.phases();
        assert_eq!(p[0], ("update", 1.0));
        assert_eq!(p[3], ("halo", 4.0));
    }

    #[test]
    fn shared_sink_accumulates_across_clones() {
        let sink = SharedSink::new();
        let mut writer = sink.clone();
        for step in 0..3 {
            writer.record(StepRecord {
                step,
                ..Default::default()
            });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.records()[2].step, 2);
    }
}
