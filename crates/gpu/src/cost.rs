//! The analytic hardware cost model.
//!
//! Converts metered work ([`DeviceCounters`]) and communication
//! ([`CommCounters`]) into simulated seconds on the paper's hardware. The
//! paper's own throughput anchors (§6): a Perlmutter GPU node ≈ 75 TFLOPS
//! fp32 (4 × A100), a CPU node ≈ 5 TFLOPS (128 cores), ideal GPU:CPU node
//! speedup 15.6×.
//!
//! Absolute constants are *calibrated once* against the paper's reported
//! runtimes (Figs 6–8) and then held fixed across every experiment — the
//! same discipline as calibrating a simulator against one hardware
//! measurement. The *shapes* (scaling curves, crossovers, breakdowns) then
//! emerge from the measured counters of the real algorithm execution:
//! activity-dependent work, per-device load imbalance, surface-to-volume
//! halo traffic, reduction strategy, launch overheads, and NVLink-vs-NIC
//! locality.

use crate::counters::{CategoryCounters, DeviceCounters};
use pgas::CommCounters;

/// Per-processing-element compute characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwProfile {
    pub name: &'static str,
    /// Cost per agent/field voxel update (ns).
    pub update_elem_ns: f64,
    /// Cost per element visited by a statistics sweep (ns).
    pub reduce_elem_ns: f64,
    /// Cost per voxel scanned by the periodic tile-activity check (ns).
    pub tile_elem_ns: f64,
    /// Cost per byte of explicit global-memory traffic (ns).
    pub byte_ns: f64,
    /// Cost per global-memory atomic (ns) — the §3.3 pain point.
    pub atomic_ns: f64,
    /// Cost per shared-memory (intra-block) reduction op (ns).
    pub smem_op_ns: f64,
    /// Kernel launch overhead (µs). Zero for CPU ranks.
    pub launch_us: f64,
}

/// An A100-class device. GPU kernels here are memory-bandwidth-bound, so
/// most of the per-voxel cost is carried by the byte counters
/// (`byte_ns = 0.0045` ≈ 220 GB/s effective per-kernel bandwidth including
/// non-coalesced penalties; the tiled layout touches fewer bytes per voxel
/// than the strided untiled layout, which is how §3.2's locality benefit
/// enters the model). `atomic_ns` is the *amortized* per-thread cost of a
/// contended global atomic after warp-level pre-aggregation — calibrated so
/// the unoptimized-vs-combined ratio matches Fig. 4.
pub const GPU_A100: HwProfile = HwProfile {
    name: "A100",
    update_elem_ns: 0.06,
    reduce_elem_ns: 0.02,
    tile_elem_ns: 0.01,
    byte_ns: 0.0045,
    atomic_ns: 0.5,
    smem_op_ns: 0.001,
    launch_us: 10.0,
};

/// One CPU core of the baseline. ~300 ns per active-list voxel update
/// (≈3.3 M voxel-steps/s/core across all phases) calibrates the absolute
/// CPU runtimes to the paper's Fig. 6 base case; the 1 GPU : 32 cores
/// throughput ratio then lands near the paper's ideal 15.6×.
pub const CPU_CORE: HwProfile = HwProfile {
    name: "cpu-core",
    update_elem_ns: 300.0,
    reduce_elem_ns: 4.0,
    tile_elem_ns: 0.0,
    byte_ns: 0.25,
    atomic_ns: 40.0,
    smem_op_ns: 0.0,
    launch_us: 0.0,
};

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    pub name: &'static str,
    /// Per-message latency/overhead (µs).
    pub latency_us: f64,
    /// Per-byte cost (ns): inverse bandwidth.
    pub byte_ns: f64,
}

/// Intra-node GPU-GPU link (NVLink class, ~300 GB/s).
pub const LINK_NVLINK: NetProfile = NetProfile {
    name: "nvlink",
    latency_us: 3.0,
    byte_ns: 0.0033,
};

/// Inter-node NIC (Slingshot class, ~25 GB/s per direction).
pub const NIC_SLINGSHOT: NetProfile = NetProfile {
    name: "slingshot",
    latency_us: 15.0,
    byte_ns: 0.04,
};

/// Per-RPC software overhead on the CPU baseline (µs) — UPC++ RPC injection
/// plus progress-engine cost.
pub const RPC_OVERHEAD_US: f64 = 2.0;

/// Simulated time broken down by work category (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Agent/field updates (incl. their kernel launches).
    pub update_s: f64,
    /// Statistics reduction (incl. its kernel launches and atomics).
    pub reduce_s: f64,
    /// Periodic tile-activity sweeps.
    pub tile_s: f64,
    /// Halo pack/unpack compute and link transfer time.
    pub halo_s: f64,
}

impl CostBreakdown {
    pub fn total(&self) -> f64 {
        self.update_s + self.reduce_s + self.tile_s + self.halo_s
    }

    pub fn max(&self, o: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            update_s: self.update_s.max(o.update_s),
            reduce_s: self.reduce_s.max(o.reduce_s),
            tile_s: self.tile_s.max(o.tile_s),
            halo_s: self.halo_s.max(o.halo_s),
        }
    }
}

/// The full cost model for a machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub gpu: HwProfile,
    pub cpu: HwProfile,
    pub intra: NetProfile,
    pub inter: NetProfile,
    /// GPUs per node — device pairs within a node use `intra`.
    pub devices_per_node: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gpu: GPU_A100,
            cpu: CPU_CORE,
            intra: LINK_NVLINK,
            inter: NIC_SLINGSHOT,
            devices_per_node: 4,
        }
    }
}

impl CostModel {
    fn category_time(hw: &HwProfile, c: &CategoryCounters, elem_ns: f64) -> f64 {
        1e-9 * (c.elements as f64 * elem_ns
            + c.bytes as f64 * hw.byte_ns
            + c.atomics as f64 * hw.atomic_ns
            + c.smem_ops as f64 * hw.smem_op_ns)
            + 1e-6 * c.launches as f64 * hw.launch_us
    }

    /// Compute-side time breakdown of one device/rank under `hw`.
    pub fn device_breakdown(&self, hw: &HwProfile, c: &DeviceCounters) -> CostBreakdown {
        CostBreakdown {
            update_s: Self::category_time(hw, &c.update, hw.update_elem_ns),
            reduce_s: Self::category_time(hw, &c.reduce, hw.reduce_elem_ns),
            tile_s: Self::category_time(hw, &c.tile_check, hw.tile_elem_ns),
            halo_s: Self::category_time(hw, &c.halo, hw.update_elem_ns),
        }
    }

    /// Link time for halo traffic split by locality: `(intra_msgs,
    /// intra_bytes, inter_msgs, inter_bytes)`.
    pub fn link_time(
        &self,
        intra_msgs: u64,
        intra_bytes: u64,
        inter_msgs: u64,
        inter_bytes: u64,
    ) -> f64 {
        1e-6 * (intra_msgs as f64 * self.intra.latency_us
            + inter_msgs as f64 * self.inter.latency_us)
            + 1e-9
                * (intra_bytes as f64 * self.intra.byte_ns
                    + inter_bytes as f64 * self.inter.byte_ns)
    }

    /// Whether two device ids share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        a / self.devices_per_node == b / self.devices_per_node
    }

    /// Communication time of the CPU baseline runtime: per-rank average RPC
    /// load, bulk boundary puts, plus collective latency (binomial tree
    /// over ranks).
    pub fn rpc_comm_time(&self, cc: &CommCounters, n_ranks: usize) -> f64 {
        let n = n_ranks.max(1) as f64;
        let per_rank_msgs = cc.messages as f64 / n;
        let per_rank_bytes = (cc.bytes + cc.bulk_bytes) as f64 / n;
        let per_rank_bulk = cc.bulk_messages as f64 / n;
        let depth = pgas::tree_depth(n_ranks) as f64;
        1e-6 * per_rank_msgs * (RPC_OVERHEAD_US + self.inter.latency_us)
            + 1e-6 * per_rank_bulk * self.inter.latency_us
            + 1e-9 * per_rank_bytes * self.inter.byte_ns
            + 1e-6 * cc.allreduces as f64 * depth * self.inter.latency_us
    }

    /// Collective time for the GPU executor's per-step statistics reduction
    /// across `n_devices` (tree over the device count).
    pub fn gpu_collective_time(&self, allreduces: u64, n_devices: usize) -> f64 {
        let depth = pgas::tree_depth(n_devices) as f64;
        1e-6 * allreduces as f64 * depth * self.inter.latency_us
    }

    /// Per-step multi-node synchronization cost of the GPU executor
    /// (seconds for `steps` steps on `n_devices`).
    ///
    /// The GPU step has two bulk communication waves, each requiring
    /// host-staged UPC++ GPU copies, progress-engine polling and a
    /// rendezvous across nodes — a millisecond-scale fixed cost per step
    /// that is absent within a single NVLink node. This is the paper's
    /// "initial cost of parallelism" (§4.3) and the dominant term in the
    /// strong-scaling saturation (§4.2/§6): calibrated as
    /// `4 ms + 3 ms · log₂(nodes)` per step for multi-node runs.
    pub fn gpu_multinode_sync_time(&self, steps: u64, n_devices: usize) -> f64 {
        let nodes = n_devices.div_ceil(self.devices_per_node);
        if nodes <= 1 {
            return 0.0;
        }
        let per_step_ms = 4.0 + 3.0 * pgas::tree_depth(nodes) as f64;
        steps as f64 * per_step_ms * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_voxel_step_ratio_is_large() {
        // Effective cost of one voxel-step: the CPU baseline touches each
        // active voxel once per step; the GPU pipeline makes ~6 cheap,
        // memory-bound visits. One A100 must be worth tens of cores
        // (the paper's ideal is 15.6× per 32 cores).
        let gpu_visit = GPU_A100.update_elem_ns + 32.0 * GPU_A100.byte_ns;
        let gpu_step = 6.0 * gpu_visit + GPU_A100.reduce_elem_ns + 20.0 * GPU_A100.byte_ns;
        let ratio = CPU_CORE.update_elem_ns / gpu_step;
        assert!(
            ratio > 32.0,
            "one GPU must out-throughput 32 cores: {ratio}"
        );
    }

    #[test]
    fn category_time_components() {
        let m = CostModel::default();
        let mut c = DeviceCounters::new();
        c.update.elements = 1_000_000;
        c.update.launches = 100;
        let b = m.device_breakdown(&m.gpu, &c);
        // 1e6 elements × update_elem_ns + 100 launches × 10 µs.
        let expect = 1e6 * m.gpu.update_elem_ns * 1e-9 + 100.0 * 10.0 * 1e-6;
        assert!((b.update_s - expect).abs() < 1e-9, "{}", b.update_s);
        assert_eq!(b.reduce_s, 0.0);
    }

    #[test]
    fn multinode_sync_only_beyond_one_node() {
        let m = CostModel::default();
        assert_eq!(m.gpu_multinode_sync_time(1000, 4), 0.0);
        let t8 = m.gpu_multinode_sync_time(1000, 8);
        let t64 = m.gpu_multinode_sync_time(1000, 64);
        assert!(t8 > 0.0);
        assert!(t64 > t8, "sync grows with node count: {t64} <= {t8}");
        // 16 nodes: (4 + 3·4) ms × 1000 steps = 16 s.
        assert!((t64 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn atomics_make_reduction_expensive() {
        // The §3.4 observation: per-element atomics cost more than a sweep.
        let m = CostModel::default();
        let n = 1_000_000u64;
        let mut atomic = DeviceCounters::new();
        atomic.reduce.atomics = n * 8;
        let mut tree = DeviceCounters::new();
        tree.reduce.elements = n;
        tree.reduce.smem_ops = n;
        tree.reduce.atomics = (n / 256) * 8;
        tree.reduce.launches = 1;
        let ta = m.device_breakdown(&m.gpu, &atomic).reduce_s;
        let tt = m.device_breakdown(&m.gpu, &tree).reduce_s;
        assert!(
            ta > 10.0 * tt,
            "atomic reduce {ta} should dwarf tree reduce {tt}"
        );
    }

    #[test]
    fn link_locality_matters() {
        let m = CostModel::default();
        let intra = m.link_time(10, 1_000_000, 0, 0);
        let inter = m.link_time(0, 0, 10, 1_000_000);
        assert!(inter > 3.0 * intra, "inter {inter} vs intra {intra}");
        assert!(m.same_node(0, 3));
        assert!(!m.same_node(3, 4));
    }

    #[test]
    fn rpc_comm_time_scales_with_load() {
        let m = CostModel::default();
        let mut cc = CommCounters::new();
        cc.messages = 128_000;
        cc.bytes = 128_000 * 64;
        cc.allreduces = 1000;
        let t128 = m.rpc_comm_time(&cc, 128);
        let t2048 = m.rpc_comm_time(&cc, 2048);
        assert!(t128 > 0.0 && t2048 > 0.0);
        // Same total load spread over more ranks: the p2p component shrinks
        // but the collective (tree-depth) component grows.
        let mut p2p_only = cc;
        p2p_only.allreduces = 0;
        assert!(m.rpc_comm_time(&p2p_only, 2048) < m.rpc_comm_time(&p2p_only, 128));
        let mut coll_only = CommCounters::new();
        coll_only.allreduces = 1000;
        assert!(m.rpc_comm_time(&coll_only, 2048) > m.rpc_comm_time(&coll_only, 128));
    }

    #[test]
    fn breakdown_total_and_max() {
        let a = CostBreakdown {
            update_s: 1.0,
            reduce_s: 2.0,
            tile_s: 0.5,
            halo_s: 0.25,
        };
        assert!((a.total() - 3.75).abs() < 1e-12);
        let b = CostBreakdown {
            update_s: 2.0,
            reduce_s: 1.0,
            tile_s: 0.1,
            halo_s: 0.5,
        };
        let m = a.max(&b);
        assert_eq!(m.update_s, 2.0);
        assert_eq!(m.reduce_s, 2.0);
        assert_eq!(m.tile_s, 0.5);
        assert_eq!(m.halo_s, 0.5);
    }
}
