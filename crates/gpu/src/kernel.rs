//! Kernel launch structure.
//!
//! A simulated kernel executes over a grid of blocks, like a CUDA launch.
//! Blocks run sequentially on the calling thread — the logical *ranks*
//! already provide host parallelism, and block order never affects results
//! (kernels follow the owner-writes discipline). What the launch machinery
//! provides is the faithful cost structure: one launch-overhead charge per
//! kernel, per-block work metering, and per-block shared-memory scratch for
//! reduction kernels.

use crate::counters::{DeviceCounters, KernelCategory};

/// Grid/block shape of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub n_blocks: usize,
    pub block_size: usize,
}

impl LaunchConfig {
    /// Shape covering `n_items` with the given block size.
    pub fn cover(n_items: usize, block_size: usize) -> Self {
        assert!(block_size > 0);
        LaunchConfig {
            n_blocks: n_items.div_ceil(block_size),
            block_size,
        }
    }

    pub fn n_threads(&self) -> usize {
        self.n_blocks * self.block_size
    }
}

/// Per-block work tally, merged into the device counters after the launch.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockTally {
    pub elements: u64,
    pub bytes: u64,
    pub atomics: u64,
    pub smem_ops: u64,
}

/// Launch a kernel: `f(block_index, &mut BlockTally)` runs once per block.
/// Records one launch plus the accumulated block tallies under `category`.
pub fn launch<F>(
    counters: &mut DeviceCounters,
    category: KernelCategory,
    cfg: LaunchConfig,
    mut f: F,
) where
    F: FnMut(usize, &mut BlockTally),
{
    let mut total = BlockTally::default();
    for b in 0..cfg.n_blocks {
        let mut tally = BlockTally::default();
        f(b, &mut tally);
        total.elements += tally.elements;
        total.bytes += tally.bytes;
        total.atomics += tally.atomics;
        total.smem_ops += tally.smem_ops;
    }
    let cat = counters.category_mut(category);
    cat.launches += 1;
    cat.elements += total.elements;
    cat.bytes += total.bytes;
    cat.atomics += total.atomics;
    cat.smem_ops += total.smem_ops;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up() {
        let cfg = LaunchConfig::cover(1000, 256);
        assert_eq!(cfg.n_blocks, 4);
        assert_eq!(cfg.n_threads(), 1024);
        let cfg = LaunchConfig::cover(1024, 256);
        assert_eq!(cfg.n_blocks, 4);
        let cfg = LaunchConfig::cover(0, 256);
        assert_eq!(cfg.n_blocks, 0);
    }

    #[test]
    fn launch_runs_every_block_and_meters() {
        let mut c = DeviceCounters::new();
        let mut seen = Vec::new();
        launch(
            &mut c,
            KernelCategory::UpdateAgents,
            LaunchConfig::cover(10, 4),
            |b, t| {
                seen.push(b);
                t.elements += 4;
                t.bytes += 16;
                t.atomics += 1;
            },
        );
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(c.update.launches, 1);
        assert_eq!(c.update.elements, 12);
        assert_eq!(c.update.bytes, 48);
        assert_eq!(c.update.atomics, 3);
    }

    #[test]
    fn zero_block_launch_still_counts_launch() {
        let mut c = DeviceCounters::new();
        launch(
            &mut c,
            KernelCategory::ReduceStats,
            LaunchConfig {
                n_blocks: 0,
                block_size: 256,
            },
            |_b, _t| panic!("no blocks should run"),
        );
        assert_eq!(c.reduce.launches, 1);
        assert_eq!(c.reduce.elements, 0);
    }
}
