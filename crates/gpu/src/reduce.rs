//! Statistics reduction strategies (§3.3).
//!
//! SIMCoV-GPU found that a full-sweep reduction over every voxel beats
//! interleaving atomics with the update kernels, and that a shared-memory
//! tree reduction (Harris \[17\]) further cuts the atomic count to one per
//! block. Both strategies are implemented here over the same fold (so the
//! *result* is identical and deterministic); what differs is the metered
//! cost:
//!
//! * [`atomic_reduce`] — the unoptimized path: one global atomic per element
//!   per statistic lane, issued from within the update kernels (no extra
//!   launch, no extra memory sweep — the values are already in registers).
//! * [`tree_reduce`] — a dedicated kernel: each thread accumulates a subset
//!   of voxels, each block folds its threads through shared memory
//!   (`block_size` shared-memory ops per block), and one global atomic per
//!   lane per block publishes the block partial.

use crate::counters::{DeviceCounters, KernelCategory};
use crate::kernel::LaunchConfig;

/// Fold `map(0..n)` with `combine`, metering the cost of a shared-memory
/// tree reduction. `lanes` is the number of statistic lanes (atomics per
/// block), `bytes_per_elem` the global-memory traffic per element read.
#[allow(clippy::too_many_arguments)]
pub fn tree_reduce<T, M, C>(
    counters: &mut DeviceCounters,
    cfg: LaunchConfig,
    n: usize,
    lanes: u64,
    bytes_per_elem: u64,
    zero: T,
    map: M,
    combine: C,
) -> T
where
    T: Clone,
    M: Fn(usize) -> T,
    C: Fn(&mut T, &T),
{
    let mut total = zero.clone();
    let block_elems = cfg.block_size.max(1);
    let n_blocks = n.div_ceil(block_elems);
    for b in 0..n_blocks {
        let mut partial = zero.clone();
        let lo = b * block_elems;
        let hi = (lo + block_elems).min(n);
        for i in lo..hi {
            combine(&mut partial, &map(i));
        }
        combine(&mut total, &partial);
    }
    let cat = counters.category_mut(KernelCategory::ReduceStats);
    cat.launches += 1;
    cat.elements += n as u64;
    cat.bytes += n as u64 * bytes_per_elem;
    // Halving tree: ~block_size shared-memory operations per block.
    cat.smem_ops += (n_blocks * block_elems) as u64;
    cat.atomics += n_blocks as u64 * lanes;
    total
}

/// Fold `map(0..n)` with `combine`, metering the cost of per-element global
/// atomics issued from within the update kernels (the unoptimized §3.4
/// variant). Produces the identical value to [`tree_reduce`].
pub fn atomic_reduce<T, M, C>(
    counters: &mut DeviceCounters,
    n: usize,
    lanes: u64,
    zero: T,
    map: M,
    combine: C,
) -> T
where
    T: Clone,
    M: Fn(usize) -> T,
    C: Fn(&mut T, &T),
{
    let mut total = zero;
    for i in 0..n {
        combine(&mut total, &map(i));
    }
    let cat = counters.category_mut(KernelCategory::ReduceStats);
    cat.atomics += n as u64 * lanes;
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_map(i: usize) -> u64 {
        i as u64
    }

    #[test]
    fn tree_and_atomic_agree() {
        let mut c1 = DeviceCounters::new();
        let mut c2 = DeviceCounters::new();
        let cfg = LaunchConfig::cover(1000, 128);
        let a = tree_reduce(&mut c1, cfg, 1000, 3, 8, 0u64, sum_map, |t, v| *t += v);
        let b = atomic_reduce(&mut c2, 1000, 3, 0u64, sum_map, |t, v| *t += v);
        assert_eq!(a, b);
        assert_eq!(a, 499_500);
    }

    #[test]
    fn tree_reduce_costs() {
        let mut c = DeviceCounters::new();
        let cfg = LaunchConfig::cover(1000, 128);
        tree_reduce(&mut c, cfg, 1000, 3, 8, 0u64, sum_map, |t, v| *t += v);
        assert_eq!(c.reduce.launches, 1);
        assert_eq!(c.reduce.elements, 1000);
        assert_eq!(c.reduce.bytes, 8000);
        // 8 blocks of 128.
        assert_eq!(c.reduce.atomics, 8 * 3);
        assert_eq!(c.reduce.smem_ops, 8 * 128);
    }

    #[test]
    fn atomic_reduce_costs() {
        let mut c = DeviceCounters::new();
        atomic_reduce(&mut c, 1000, 3, 0u64, sum_map, |t, v| *t += v);
        assert_eq!(c.reduce.atomics, 3000);
        assert_eq!(c.reduce.launches, 0);
        assert_eq!(c.reduce.elements, 0);
        assert_eq!(c.reduce.smem_ops, 0);
    }

    #[test]
    fn tree_reduce_atomics_scale_with_block_size() {
        // Larger blocks ⇒ fewer block partials ⇒ fewer atomics.
        let mut small = DeviceCounters::new();
        let mut large = DeviceCounters::new();
        tree_reduce(
            &mut small,
            LaunchConfig::cover(4096, 64),
            4096,
            1,
            4,
            0u64,
            sum_map,
            |t, v| *t += v,
        );
        tree_reduce(
            &mut large,
            LaunchConfig::cover(4096, 512),
            4096,
            1,
            4,
            0u64,
            sum_map,
            |t, v| *t += v,
        );
        assert!(small.reduce.atomics > large.reduce.atomics);
    }

    #[test]
    fn empty_reduce() {
        let mut c = DeviceCounters::new();
        let cfg = LaunchConfig::cover(0, 128);
        let v = tree_reduce(&mut c, cfg, 0, 3, 8, 42u64, sum_map, |t, v| *t += v);
        assert_eq!(v, 42);
        assert_eq!(c.reduce.elements, 0);
    }

    #[test]
    fn float_fold_is_deterministic_order() {
        // Both strategies fold in index order within blocks and block order
        // across blocks, so repeated runs are bitwise identical.
        let mut c = DeviceCounters::new();
        let cfg = LaunchConfig::cover(257, 32);
        let m = |i: usize| (i as f64) * 0.1;
        let a = tree_reduce(&mut c, cfg, 257, 1, 4, 0.0f64, m, |t, v| *t += v);
        let b = tree_reduce(&mut c, cfg, 257, 1, 4, 0.0f64, m, |t, v| *t += v);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
