//! Per-device work counters.
//!
//! Every kernel the SIMCoV-GPU executor launches records what it did, split
//! by [`KernelCategory`] so the paper's Fig. 4 breakdown ("Update Agents" vs
//! "Reduce Statistics") can be regenerated. Counters are plain totals; the
//! cost model converts them to time, and [`DeviceCounters::extrapolate`]
//! rescales a reduced-size run to paper-scale work.

/// What kind of work a kernel performs — the paper's profiling categories
/// (Fig. 4) plus the GPU-specific overheads it discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCategory {
    /// T-cell planning/moving, epithelial FSM, production, diffusion.
    UpdateAgents,
    /// Statistics accumulation (atomic or tree).
    ReduceStats,
    /// Periodic active-tile sweep (§3.2).
    TileCheck,
    /// Halo pack/unpack and device-device copies.
    Halo,
}

/// Work totals for one kernel category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategoryCounters {
    /// Voxel updates / elements processed.
    pub elements: u64,
    /// Explicit global-memory traffic in bytes.
    pub bytes: u64,
    /// Global-memory atomic operations.
    pub atomics: u64,
    /// Shared-memory (intra-block) operations.
    pub smem_ops: u64,
    /// Kernel launches.
    pub launches: u64,
}

impl CategoryCounters {
    pub fn merge(&mut self, o: &CategoryCounters) {
        self.elements += o.elements;
        self.bytes += o.bytes;
        self.atomics += o.atomics;
        self.smem_ops += o.smem_ops;
        self.launches += o.launches;
    }

    fn scale(&self, work: f64, steps: f64) -> CategoryCounters {
        let f = |v: u64, s: f64| (v as f64 * s).round() as u64;
        CategoryCounters {
            elements: f(self.elements, work * steps),
            bytes: f(self.bytes, work * steps),
            atomics: f(self.atomics, work * steps),
            smem_ops: f(self.smem_ops, work * steps),
            launches: f(self.launches, steps),
        }
    }
}

/// All work performed by one device (or one CPU rank) over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceCounters {
    pub update: CategoryCounters,
    pub reduce: CategoryCounters,
    pub tile_check: CategoryCounters,
    pub halo: CategoryCounters,
}

impl DeviceCounters {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn category_mut(&mut self, c: KernelCategory) -> &mut CategoryCounters {
        match c {
            KernelCategory::UpdateAgents => &mut self.update,
            KernelCategory::ReduceStats => &mut self.reduce,
            KernelCategory::TileCheck => &mut self.tile_check,
            KernelCategory::Halo => &mut self.halo,
        }
    }

    pub fn category(&self, c: KernelCategory) -> &CategoryCounters {
        match c {
            KernelCategory::UpdateAgents => &self.update,
            KernelCategory::ReduceStats => &self.reduce,
            KernelCategory::TileCheck => &self.tile_check,
            KernelCategory::Halo => &self.halo,
        }
    }

    pub fn merge(&mut self, o: &DeviceCounters) {
        self.update.merge(&o.update);
        self.reduce.merge(&o.reduce);
        self.tile_check.merge(&o.tile_check);
        self.halo.merge(&o.halo);
    }

    /// Extrapolate a reduced-scale run to paper scale.
    ///
    /// A run scaled down by linear factor `s` (grid `L/s`, steps `T/s`)
    /// performs, per step, `1/s²` of the paper's area-proportional work and
    /// `1/s` of its boundary-proportional work, over `1/s` as many steps
    /// (the scale-similarity argument in DESIGN.md). So:
    ///
    /// * area-class counters (update/reduce/tile elements, bytes, atomics,
    ///   shared-memory ops) scale by `s² · s`;
    /// * boundary-class counters (halo elements/bytes) scale by `s · s`;
    /// * per-step counters (launches) scale by `s`.
    pub fn extrapolate(&self, linear_scale: f64) -> DeviceCounters {
        let s = linear_scale;
        DeviceCounters {
            update: self.update.scale(s * s, s),
            reduce: self.reduce.scale(s * s, s),
            tile_check: self.tile_check.scale(s * s, s),
            halo: self.halo.scale(s, s),
        }
    }

    /// Element-wise maximum — the per-category critical path across devices.
    pub fn max(&self, o: &DeviceCounters) -> DeviceCounters {
        fn cmax(a: &CategoryCounters, b: &CategoryCounters) -> CategoryCounters {
            CategoryCounters {
                elements: a.elements.max(b.elements),
                bytes: a.bytes.max(b.bytes),
                atomics: a.atomics.max(b.atomics),
                smem_ops: a.smem_ops.max(b.smem_ops),
                launches: a.launches.max(b.launches),
            }
        }
        DeviceCounters {
            update: cmax(&self.update, &o.update),
            reduce: cmax(&self.reduce, &o.reduce),
            tile_check: cmax(&self.tile_check, &o.tile_check),
            halo: cmax(&self.halo, &o.halo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = DeviceCounters::new();
        a.update.elements = 10;
        a.reduce.atomics = 5;
        let mut b = DeviceCounters::new();
        b.update.elements = 3;
        b.reduce.atomics = 2;
        b.halo.bytes = 100;
        a.merge(&b);
        assert_eq!(a.update.elements, 13);
        assert_eq!(a.reduce.atomics, 7);
        assert_eq!(a.halo.bytes, 100);
    }

    #[test]
    fn category_accessors_roundtrip() {
        let mut c = DeviceCounters::new();
        for cat in [
            KernelCategory::UpdateAgents,
            KernelCategory::ReduceStats,
            KernelCategory::TileCheck,
            KernelCategory::Halo,
        ] {
            c.category_mut(cat).launches += 1;
            assert_eq!(c.category(cat).launches, 1);
        }
    }

    #[test]
    fn extrapolation_classes() {
        let mut c = DeviceCounters::new();
        c.update.elements = 100; // area class: × s³
        c.update.launches = 10; // per-step class: × s
        c.halo.bytes = 100; // boundary class: × s²
        c.halo.launches = 10;
        let e = c.extrapolate(4.0);
        assert_eq!(e.update.elements, 100 * 64);
        assert_eq!(e.update.launches, 40);
        assert_eq!(e.halo.bytes, 1600);
        assert_eq!(e.halo.launches, 40);
    }

    #[test]
    fn extrapolation_identity_at_scale_one() {
        let mut c = DeviceCounters::new();
        c.update.elements = 7;
        c.reduce.smem_ops = 13;
        c.halo.bytes = 5;
        assert_eq!(c.extrapolate(1.0), c);
    }

    #[test]
    fn max_is_elementwise() {
        let mut a = DeviceCounters::new();
        a.update.elements = 10;
        a.reduce.atomics = 1;
        let mut b = DeviceCounters::new();
        b.update.elements = 4;
        b.reduce.atomics = 9;
        let m = a.max(&b);
        assert_eq!(m.update.elements, 10);
        assert_eq!(m.reduce.atomics, 9);
    }
}
