//! # gpusim — a simulated CUDA-like device substrate
//!
//! This environment has no physical GPU, so this crate substitutes one (see
//! DESIGN.md): the *algorithms* of SIMCoV-GPU execute for real on the host —
//! producing the true simulation state — while the *device-specific work* is
//! metered: voxels touched per kernel category, global-memory traffic,
//! device atomics, shared-memory reduction operations, kernel launches, halo
//! packing, and tile-check sweeps.
//!
//! A calibrated analytic cost model ([`cost`]) then converts those counters
//! into simulated seconds for the paper's hardware (A100-class GPU nodes and
//! the corresponding CPU nodes; the paper's own §6 throughput figures are
//! the anchor). Scaled-down runs are extrapolated to paper-scale work via
//! the scale-similarity argument in DESIGN.md
//! ([`counters::DeviceCounters::extrapolate`]).
//!
//! The block/thread structure of real kernels is preserved where it affects
//! results or cost: the tree reduction ([`reduce::tree_reduce`]) mirrors the
//! shared-memory halving reduction of Harris \[17\] with one global atomic per
//! block, versus the per-element atomic accumulation of the unoptimized
//! variant ([`reduce::atomic_reduce`]).

pub mod cost;
pub mod counters;
pub mod device;
pub mod kernel;
pub mod metrics;
pub mod reduce;

pub use cost::{
    CostBreakdown, CostModel, HwProfile, NetProfile, CPU_CORE, GPU_A100, NIC_SLINGSHOT,
};
pub use counters::{DeviceCounters, KernelCategory};
pub use device::Device;
pub use kernel::{launch, LaunchConfig};
pub use metrics::{MetricsSink, PhaseSnapshot, SharedSink, SnapshotTaker, StepRecord};
