//! Deterministic fault injection and failure reporting.
//!
//! The paper's exascale target assumes long multi-node runs where rank and
//! GPU failure is routine. This module gives the BSP runtime a *seeded,
//! reproducible* failure model so recovery machinery can be exercised and
//! benchmarked offline: a [`FaultPlan`] schedules rank deaths, message drops,
//! message duplications and slow-rank stalls at superstep boundaries, and
//! [`Bsp::try_superstep`] converts the injected faults into structural
//! detection ([`SuperstepFailure`]) exactly as a heartbeat/timeout layer
//! would on real hardware.
//!
//! Fault semantics at the superstep barrier:
//!
//! - **Rank death** — the rank's closure never runs, its heartbeat slot stays
//!   cold, and the barrier reports it in [`SuperstepFailure::dead_ranks`].
//! - **Message drop** — the rank computes but its outbox is lost in flight;
//!   the barrier reports the loss (payload acknowledgements are part of the
//!   delivery protocol, so drops are detectable).
//! - **Message duplication** — the network delivers a rank's outbox twice;
//!   the runtime's exactly-once layer suppresses the second copy and meters
//!   it in [`CommCounters::duplicates_suppressed`]. Not a failure.
//! - **Slow rank** — the rank is healthy but late; metered in
//!   [`CommCounters::stalls`] / [`CommCounters::stall_ns`] as simulated
//!   straggler time. Not a failure.
//!
//! [`Bsp::try_superstep`]: crate::bsp::Bsp::try_superstep
//! [`CommCounters::duplicates_suppressed`]: crate::CommCounters
//! [`CommCounters::stalls`]: crate::CommCounters
//! [`CommCounters::stall_ns`]: crate::CommCounters

use std::fmt;

/// What kind of fault strikes a rank at a superstep boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank dies before computing: no heartbeat, no outbox.
    RankDeath,
    /// The rank computes, but its outgoing messages are lost in flight.
    MessageDrop,
    /// The network delivers the rank's outbox twice; the exactly-once layer
    /// suppresses the duplicates.
    MessageDuplicate,
    /// The rank is `stall_ns` nanoseconds late to the barrier (simulated —
    /// metered, never slept).
    SlowRank { stall_ns: u64 },
    /// The network reorders the rank's *incoming* deliveries within the
    /// superstep: its assembled inbox is permuted with a shuffle seeded from
    /// `seed` (and the superstep/rank indices, so repeated events give
    /// distinct permutations). Not a failure — the schedule-adversarial
    /// suite uses this to prove the model is delivery-order independent.
    DeliveryShuffle { seed: u64 },
}

/// One scheduled fault: `kind` strikes `rank` at global superstep index
/// `superstep` (the runtime's cumulative [`supersteps`] counter, which keeps
/// increasing across rollbacks — a replayed superstep gets a fresh index, so
/// a scheduled fault fires exactly once).
///
/// `rank` is interpreted modulo the runtime's *current* rank count at fire
/// time, so a plan generated for `n` ranks remains valid after recovery
/// shrinks the domain.
///
/// [`supersteps`]: crate::CommCounters::supersteps
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub superstep: u64,
    pub rank: usize,
    pub kind: FaultKind,
}

/// Per-rank per-superstep fault probabilities for [`FaultPlan::seeded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a rank dies at a given superstep boundary.
    pub death: f64,
    /// Probability a rank's outbox is dropped.
    pub drop: f64,
    /// Probability a rank's outbox is duplicated.
    pub duplicate: f64,
    /// Probability a rank stalls.
    pub stall: f64,
    /// Simulated lateness of each stall, nanoseconds.
    pub stall_ns: u64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            death: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            stall: 0.0,
            stall_ns: 50_000,
        }
    }
}

/// A deterministic schedule of faults, sorted by superstep index.
///
/// The plan is consumed as the runtime executes: [`FaultPlan::take_due`]
/// returns (and retires) every event scheduled at or before the given
/// superstep. An empty plan costs one branch per superstep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Remaining events, sorted ascending by `superstep`.
    events: Vec<FaultEvent>,
    /// Index of the first unconsumed event.
    cursor: usize,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit events (sorted internally).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.superstep);
        FaultPlan { events, cursor: 0 }
    }

    /// Sample a plan from per-rank per-superstep `rates`, deterministically
    /// from `seed`, covering superstep indices `0..horizon` for `n_ranks`
    /// ranks. The same `(seed, rates, n_ranks, horizon)` always produces the
    /// same plan.
    pub fn seeded(seed: u64, rates: &FaultRates, n_ranks: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::new();
        for superstep in 0..horizon {
            for rank in 0..n_ranks {
                // Draw all four channels unconditionally so the stream
                // consumed per (superstep, rank) cell is fixed — editing one
                // rate never reshuffles the other channels.
                let u_death = rng.next_f64();
                let u_drop = rng.next_f64();
                let u_dup = rng.next_f64();
                let u_stall = rng.next_f64();
                if u_death < rates.death {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::RankDeath,
                    });
                } else if u_drop < rates.drop {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::MessageDrop,
                    });
                } else if u_dup < rates.duplicate {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::MessageDuplicate,
                    });
                } else if u_stall < rates.stall {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::SlowRank {
                            stall_ns: rates.stall_ns,
                        },
                    });
                }
            }
        }
        FaultPlan { events, cursor: 0 }
    }

    /// A schedule that permutes every rank's delivery order at every
    /// superstep in `0..horizon` — the adversarial message schedule. Each
    /// (superstep, rank) cell gets a distinct permutation derived from
    /// `seed`, so the whole storm is reproducible.
    pub fn shuffled(seed: u64, n_ranks: usize, horizon: u64) -> Self {
        let mut events = Vec::with_capacity(n_ranks * horizon as usize);
        for superstep in 0..horizon {
            for rank in 0..n_ranks {
                events.push(FaultEvent {
                    superstep,
                    rank,
                    kind: FaultKind::DeliveryShuffle { seed },
                });
            }
        }
        FaultPlan { events, cursor: 0 }
    }

    /// True if no events remain to fire.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Number of events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// All scheduled events (fired and pending), in superstep order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Consume and return every event scheduled at or before `superstep`.
    /// Returns an empty slice's worth of nothing fast when the plan is idle.
    pub fn take_due(&mut self, superstep: u64) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].superstep <= superstep {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }
}

/// A superstep that did not complete cleanly: ranks went missing at the
/// barrier and/or in-flight messages were lost. The runtime's state is
/// not trustworthy after a failure — callers roll back to a checkpoint and
/// rebuild (see the driver crate's recovery loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperstepFailure {
    /// Global superstep index (cumulative counter) at which the failure hit.
    pub superstep: u64,
    /// Ranks whose heartbeat was missing at the barrier.
    pub dead_ranks: Vec<usize>,
    /// Point-to-point + bulk messages lost in flight.
    pub dropped_messages: u64,
}

impl fmt::Display for SuperstepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "superstep {} failed: {} dead rank(s) {:?}, {} message(s) dropped",
            self.superstep,
            self.dead_ranks.len(),
            self.dead_ranks,
            self.dropped_messages
        )
    }
}

impl std::error::Error for SuperstepFailure {}

/// One recovery performed by the driver: rollback to a checkpoint,
/// re-partition across survivors, replay. Surfaced through the metrics layer
/// (`gpusim::metrics::StepRecord::recoveries`) so bench artifacts can plot
/// recovery cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Simulation step that was being computed when the failure hit.
    pub failed_step: u64,
    /// Global superstep index of the failed superstep.
    pub superstep: u64,
    /// Ranks declared dead (empty for pure message-loss failures).
    pub dead_ranks: Vec<usize>,
    /// Messages lost in flight.
    pub dropped_messages: u64,
    /// Step the run was rolled back to (the checkpointed step).
    pub rollback_step: u64,
    /// Steps that had to be recomputed: `failed_step - rollback_step`.
    pub replayed_steps: u64,
    /// Rank count after re-partitioning.
    pub survivors: usize,
    /// 1-based retry attempt within one driver advance.
    pub attempt: u32,
    /// Simulated backoff before this attempt, nanoseconds.
    pub backoff_ns: u64,
}

/// SplitMix64 — tiny, seedable, full-period; used only for fault sampling
/// and delivery shuffles so the model's counter-based RNG stream is
/// untouched.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic() {
        let rates = FaultRates {
            death: 0.02,
            drop: 0.05,
            duplicate: 0.05,
            stall: 0.1,
            stall_ns: 1000,
        };
        let a = FaultPlan::seeded(42, &rates, 8, 200);
        let b = FaultPlan::seeded(42, &rates, 8, 200);
        assert_eq!(a, b);
        assert!(!a.is_exhausted(), "rates this high must yield events");
        let c = FaultPlan::seeded(43, &rates, 8, 200);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn seeded_plan_rate_is_plausible() {
        let rates = FaultRates {
            death: 0.1,
            ..FaultRates::default()
        };
        let plan = FaultPlan::seeded(7, &rates, 10, 1000);
        // Expect ~1000 deaths out of 10_000 cells; accept a wide band.
        let n = plan.events().len();
        assert!((700..1300).contains(&n), "got {n} events");
        assert!(plan.events().iter().all(|e| e.kind == FaultKind::RankDeath));
    }

    #[test]
    fn take_due_consumes_in_order() {
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent {
                superstep: 5,
                rank: 1,
                kind: FaultKind::MessageDrop,
            },
            FaultEvent {
                superstep: 2,
                rank: 0,
                kind: FaultKind::RankDeath,
            },
            FaultEvent {
                superstep: 5,
                rank: 2,
                kind: FaultKind::MessageDuplicate,
            },
        ]);
        assert_eq!(plan.remaining(), 3);
        assert!(plan.take_due(1).is_empty());
        let due = plan.take_due(2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::RankDeath);
        let due = plan.take_due(10);
        assert_eq!(due.len(), 2);
        assert!(plan.is_exhausted());
        assert!(plan.take_due(u64::MAX).is_empty());
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = FaultPlan::seeded(1, &FaultRates::default(), 64, 10_000);
        assert!(plan.is_exhausted());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn failure_displays() {
        let f = SuperstepFailure {
            superstep: 17,
            dead_ranks: vec![3],
            dropped_messages: 2,
        };
        let s = format!("{f}");
        assert!(s.contains("superstep 17"));
        assert!(s.contains("[3]"));
        assert!(s.contains("2 message(s)"));
    }
}
