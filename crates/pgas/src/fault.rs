//! Deterministic fault injection and failure reporting.
//!
//! The paper's exascale target assumes long multi-node runs where rank and
//! GPU failure is routine. This module gives the BSP runtime a *seeded,
//! reproducible* failure model so recovery machinery can be exercised and
//! benchmarked offline: a [`FaultPlan`] schedules rank deaths, message drops,
//! message duplications and slow-rank stalls at superstep boundaries, and
//! [`Bsp::try_superstep`] converts the injected faults into structural
//! detection ([`SuperstepFailure`]) exactly as a heartbeat/timeout layer
//! would on real hardware.
//!
//! Fault semantics at the superstep barrier:
//!
//! - **Rank death** — the rank's closure never runs, its heartbeat slot stays
//!   cold, and the barrier reports it in [`SuperstepFailure::dead_ranks`].
//! - **Message drop** — the rank computes but its outbox is lost in flight;
//!   the barrier reports the loss (payload acknowledgements are part of the
//!   delivery protocol, so drops are detectable).
//! - **Message duplication** — the network delivers a rank's outbox twice;
//!   the runtime's exactly-once layer suppresses the second copy and meters
//!   it in [`CommCounters::duplicates_suppressed`]. Not a failure.
//! - **Slow rank** — the rank is healthy but late; metered in
//!   [`CommCounters::stalls`] / [`CommCounters::stall_ns`] as simulated
//!   straggler time. Not a failure.
//!
//! [`Bsp::try_superstep`]: crate::bsp::Bsp::try_superstep
//! [`CommCounters::duplicates_suppressed`]: crate::CommCounters
//! [`CommCounters::stalls`]: crate::CommCounters
//! [`CommCounters::stall_ns`]: crate::CommCounters

use std::fmt;

/// What kind of fault strikes a rank at a superstep boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank dies before computing: no heartbeat, no outbox.
    RankDeath,
    /// The rank computes, but its outgoing messages are lost in flight.
    MessageDrop,
    /// The network delivers the rank's outbox twice; the exactly-once layer
    /// suppresses the duplicates.
    MessageDuplicate,
    /// The rank is `stall_ns` nanoseconds late to the barrier (simulated —
    /// metered, never slept).
    SlowRank { stall_ns: u64 },
    /// The network reorders the rank's *incoming* deliveries within the
    /// superstep: its assembled inbox is permuted with a shuffle seeded from
    /// `seed` (and the superstep/rank indices, so repeated events give
    /// distinct permutations). Not a failure — the schedule-adversarial
    /// suite uses this to prove the model is delivery-order independent.
    DeliveryShuffle { seed: u64 },
    /// Silent data corruption in flight: one seeded bit flip lands in one of
    /// the rank's outgoing coalesced (src, dst) mailbox batches after the
    /// send-side checksum is taken. Detected by the delivery-side CRC64
    /// verify; healed by an in-barrier retransmit (or surfaced as an
    /// [`IntegrityFailure`] when the retransmit budget is exhausted).
    PayloadCorruption { seed: u64 },
    /// Silent data corruption at rest: one seeded bit flip lands in the
    /// rank's resident voxel/cohort state between supersteps. The BSP layer
    /// only *schedules* it (state layout is application-owned); the executor
    /// applies the flip after the step's seal is taken, and the driver's
    /// seal-scrub catches it before the next step consumes the state.
    StateCorruption { seed: u64 },
}

/// One scheduled fault: `kind` strikes `rank` at global superstep index
/// `superstep` (the runtime's cumulative [`supersteps`] counter, which keeps
/// increasing across rollbacks — a replayed superstep gets a fresh index, so
/// a scheduled fault fires exactly once).
///
/// `rank` is interpreted modulo the runtime's *current* rank count at fire
/// time, so a plan generated for `n` ranks remains valid after recovery
/// shrinks the domain.
///
/// [`supersteps`]: crate::CommCounters::supersteps
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub superstep: u64,
    pub rank: usize,
    pub kind: FaultKind,
}

/// Per-rank per-superstep fault probabilities for [`FaultPlan::seeded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a rank dies at a given superstep boundary.
    pub death: f64,
    /// Probability a rank's outbox is dropped.
    pub drop: f64,
    /// Probability a rank's outbox is duplicated.
    pub duplicate: f64,
    /// Probability a rank stalls.
    pub stall: f64,
    /// Simulated lateness of each stall, nanoseconds.
    pub stall_ns: u64,
    /// Probability a bit flip lands in one of the rank's in-flight mailbox
    /// batches ([`FaultKind::PayloadCorruption`]).
    pub payload_corruption: f64,
    /// Probability a bit flip lands in the rank's resident state between
    /// supersteps ([`FaultKind::StateCorruption`]).
    pub state_corruption: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            death: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            stall: 0.0,
            stall_ns: 50_000,
            payload_corruption: 0.0,
            state_corruption: 0.0,
        }
    }
}

/// A deterministic schedule of faults, sorted by superstep index.
///
/// The plan is consumed as the runtime executes: [`FaultPlan::take_due`]
/// returns (and retires) every event scheduled at or before the given
/// superstep. An empty plan costs one branch per superstep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Remaining events, sorted ascending by `superstep`.
    events: Vec<FaultEvent>,
    /// Index of the first unconsumed event.
    cursor: usize,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit events (sorted internally).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.superstep);
        FaultPlan { events, cursor: 0 }
    }

    /// Sample a plan from per-rank per-superstep `rates`, deterministically
    /// from `seed`, covering superstep indices `0..horizon` for `n_ranks`
    /// ranks. The same `(seed, rates, n_ranks, horizon)` always produces the
    /// same plan.
    pub fn seeded(seed: u64, rates: &FaultRates, n_ranks: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::new();
        for superstep in 0..horizon {
            for rank in 0..n_ranks {
                // Draw all four channels unconditionally so the stream
                // consumed per (superstep, rank) cell is fixed — editing one
                // rate never reshuffles the other channels.
                let u_death = rng.next_f64();
                let u_drop = rng.next_f64();
                let u_dup = rng.next_f64();
                let u_stall = rng.next_f64();
                if u_death < rates.death {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::RankDeath,
                    });
                } else if u_drop < rates.drop {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::MessageDrop,
                    });
                } else if u_dup < rates.duplicate {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::MessageDuplicate,
                    });
                } else if u_stall < rates.stall {
                    events.push(FaultEvent {
                        superstep,
                        rank,
                        kind: FaultKind::SlowRank {
                            stall_ns: rates.stall_ns,
                        },
                    });
                }
            }
        }
        // The SDC channels draw from their own decorrelated stream so plans
        // sampled before corruption rates existed stay byte-stable, and
        // editing a corruption rate never reshuffles the fail-stop channels.
        if rates.payload_corruption > 0.0 || rates.state_corruption > 0.0 {
            let mut rng = SplitMix64::new(seed ^ 0x5DC5_DC5D_C5DC_5DC5);
            for superstep in 0..horizon {
                for rank in 0..n_ranks {
                    // Four draws per cell, unconditionally, for the same
                    // stream-stability reason as above.
                    let u_payload = rng.next_f64();
                    let u_state = rng.next_f64();
                    let s_payload = rng.next_u64();
                    let s_state = rng.next_u64();
                    if u_payload < rates.payload_corruption {
                        events.push(FaultEvent {
                            superstep,
                            rank,
                            kind: FaultKind::PayloadCorruption { seed: s_payload },
                        });
                    } else if u_state < rates.state_corruption {
                        events.push(FaultEvent {
                            superstep,
                            rank,
                            kind: FaultKind::StateCorruption { seed: s_state },
                        });
                    }
                }
            }
            // Stable sort: fail-stop events keep preceding same-superstep
            // corruption events, so merged plans stay deterministic.
            events.sort_by_key(|e| e.superstep);
        }
        FaultPlan { events, cursor: 0 }
    }

    /// A schedule that permutes every rank's delivery order at every
    /// superstep in `0..horizon` — the adversarial message schedule. Each
    /// (superstep, rank) cell gets a distinct permutation derived from
    /// `seed`, so the whole storm is reproducible.
    pub fn shuffled(seed: u64, n_ranks: usize, horizon: u64) -> Self {
        let mut events = Vec::with_capacity(n_ranks * horizon as usize);
        for superstep in 0..horizon {
            for rank in 0..n_ranks {
                events.push(FaultEvent {
                    superstep,
                    rank,
                    kind: FaultKind::DeliveryShuffle { seed },
                });
            }
        }
        FaultPlan { events, cursor: 0 }
    }

    /// True if no events remain to fire.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Number of events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// All scheduled events (fired and pending), in superstep order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Does the plan schedule any silent-data-corruption event? The runtime
    /// uses this to auto-engage batch checksumming and state seal-scrubbing
    /// only when corruption can actually strike, keeping the healthy hot
    /// path untouched.
    pub fn has_corruption(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::PayloadCorruption { .. } | FaultKind::StateCorruption { .. }
            )
        })
    }

    /// Consume and return every event scheduled at or before `superstep`.
    /// Returns an empty slice's worth of nothing fast when the plan is idle.
    pub fn take_due(&mut self, superstep: u64) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].superstep <= superstep {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }
}

/// A superstep that did not complete cleanly: ranks went missing at the
/// barrier and/or in-flight messages were lost. The runtime's state is
/// not trustworthy after a failure — callers roll back to a checkpoint and
/// rebuild (see the driver crate's recovery loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperstepFailure {
    /// Global superstep index (cumulative counter) at which the failure hit.
    pub superstep: u64,
    /// Ranks whose heartbeat was missing at the barrier.
    pub dead_ranks: Vec<usize>,
    /// Point-to-point + bulk messages lost in flight.
    pub dropped_messages: u64,
}

impl fmt::Display for SuperstepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "superstep {} failed: {} dead rank(s) {:?}, {} message(s) dropped",
            self.superstep,
            self.dead_ranks.len(),
            self.dead_ranks,
            self.dropped_messages
        )
    }
}

impl std::error::Error for SuperstepFailure {}

/// A superstep during which the delivery-side CRC64 verify found corrupt
/// coalesced batches that could **not** all be healed within the barrier
/// (the per-superstep retransmit budget ran out). The delivered inboxes are
/// not trustworthy — callers roll back to a verified checkpoint exactly as
/// for a [`SuperstepFailure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityFailure {
    /// Global superstep index (cumulative counter) at which corruption hit.
    pub superstep: u64,
    /// Coalesced batches whose delivery-side CRC64 mismatched.
    pub corrupt_batches: u64,
    /// Batches healed by an in-barrier retransmit.
    pub healed: u64,
    /// Batches left corrupt after the retransmit budget was exhausted.
    pub unhealed: u64,
}

impl fmt::Display for IntegrityFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "superstep {} integrity failure: {} corrupt batch(es), {} healed in-barrier, {} beyond the retransmit budget",
            self.superstep, self.corrupt_batches, self.healed, self.unhealed
        )
    }
}

impl std::error::Error for IntegrityFailure {}

/// Why a superstep did not complete cleanly: a fail-stop structural failure
/// (dead ranks / lost messages) or a data-integrity failure (unhealed
/// corrupt batches). When both strike the same superstep the structural
/// failure takes precedence — rollback covers both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuperstepError {
    /// Ranks died or messages were lost; see [`SuperstepFailure`].
    Failure(SuperstepFailure),
    /// Corrupt batches survived the in-barrier retransmit budget.
    Integrity(IntegrityFailure),
}

impl SuperstepError {
    /// Global superstep index at which the error hit.
    pub fn superstep(&self) -> u64 {
        match self {
            SuperstepError::Failure(f) => f.superstep,
            SuperstepError::Integrity(i) => i.superstep,
        }
    }
}

impl fmt::Display for SuperstepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperstepError::Failure(e) => e.fmt(f),
            SuperstepError::Integrity(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SuperstepError {}

impl From<SuperstepFailure> for SuperstepError {
    fn from(f: SuperstepFailure) -> Self {
        SuperstepError::Failure(f)
    }
}

impl From<IntegrityFailure> for SuperstepError {
    fn from(f: IntegrityFailure) -> Self {
        SuperstepError::Integrity(f)
    }
}

/// Which class of silent data corruption an [`IntegrityRecord`] concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// A bit flip in an in-flight coalesced mailbox batch.
    Payload,
    /// A bit flip in a rank's resident voxel/cohort state.
    State,
    /// A bit flip inside a stored checkpoint generation.
    Checkpoint,
}

impl CorruptionKind {
    pub fn name(&self) -> &'static str {
        match self {
            CorruptionKind::Payload => "payload",
            CorruptionKind::State => "state",
            CorruptionKind::Checkpoint => "checkpoint",
        }
    }
}

/// Which detector in the lattice caught the corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityDetector {
    /// Delivery-side CRC64 over a coalesced (src, dst) batch.
    BatchCrc,
    /// End-of-step state seal verified before the next step consumes it.
    SealScrub,
    /// ABFT conservation-invariant audit (exact summation).
    InvariantAudit,
    /// CRC64 seal over a stored checkpoint generation.
    CheckpointSeal,
}

impl IntegrityDetector {
    pub fn name(&self) -> &'static str {
        match self {
            IntegrityDetector::BatchCrc => "batch-crc",
            IntegrityDetector::SealScrub => "seal-scrub",
            IntegrityDetector::InvariantAudit => "invariant-audit",
            IntegrityDetector::CheckpointSeal => "checkpoint-seal",
        }
    }
}

/// Which rung of the self-healing ladder repaired the damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityAction {
    /// The corrupt batch was retransmitted within the barrier.
    Retransmit,
    /// The run rolled back to the last verified checkpoint and replayed.
    Rollback,
    /// A corrupt checkpoint generation was quarantined; recovery fell back
    /// to an older generation.
    Quarantine,
}

impl IntegrityAction {
    pub fn name(&self) -> &'static str {
        match self {
            IntegrityAction::Retransmit => "retransmit",
            IntegrityAction::Rollback => "rollback",
            IntegrityAction::Quarantine => "quarantine",
        }
    }
}

/// A [`FaultKind::StateCorruption`] strike collected by the BSP layer for
/// the executor to apply — the runtime schedules the flip but cannot touch
/// application-owned rank state. `superstep` is the global index at which
/// the strike was scheduled (used for detection-latency accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingStateCorruption {
    pub superstep: u64,
    pub rank: usize,
    pub seed: u64,
}

/// One detected (and healed) corruption, surfaced through the metrics layer
/// (`gpusim::metrics::StepRecord::integrity`) so bench artifacts can plot
/// detection latency and recovery cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityRecord {
    /// Simulation step at which the corruption was *detected*.
    pub step: u64,
    /// Simulation step at which the corruption was *injected* (equal to
    /// `step` for in-barrier batch detection; earlier for state corruption
    /// caught by a later scrub). `step - injected_step` is the detection
    /// latency the SDC sweep plots.
    pub injected_step: u64,
    /// Global superstep index at detection (0 for step-boundary detectors).
    pub superstep: u64,
    /// Global superstep index at which the corruption was *injected* (equal
    /// to `superstep` for in-barrier batch detection).
    pub injected_superstep: u64,
    /// What was corrupted.
    pub kind: CorruptionKind,
    /// Which detector caught it.
    pub detector: IntegrityDetector,
    /// Which healing tier repaired it.
    pub action: IntegrityAction,
}

/// One recovery performed by the driver: rollback to a checkpoint,
/// re-partition across survivors, replay. Surfaced through the metrics layer
/// (`gpusim::metrics::StepRecord::recoveries`) so bench artifacts can plot
/// recovery cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Simulation step that was being computed when the failure hit.
    pub failed_step: u64,
    /// Global superstep index of the failed superstep.
    pub superstep: u64,
    /// Ranks declared dead (empty for pure message-loss failures).
    pub dead_ranks: Vec<usize>,
    /// Messages lost in flight.
    pub dropped_messages: u64,
    /// Step the run was rolled back to (the checkpointed step).
    pub rollback_step: u64,
    /// Steps that had to be recomputed: `failed_step - rollback_step`.
    pub replayed_steps: u64,
    /// Rank count after re-partitioning.
    pub survivors: usize,
    /// 1-based retry attempt within one driver advance.
    pub attempt: u32,
    /// Simulated backoff before this attempt, nanoseconds.
    pub backoff_ns: u64,
}

/// SplitMix64 — tiny, seedable, full-period; used only for fault sampling,
/// delivery shuffles and corruption targeting so the model's counter-based
/// RNG stream is untouched. Public so the fault-injection layers in other
/// crates (state bit flips in executors, checkpoint corruption in the
/// driver) derive their targets from the same deterministic generator.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic() {
        let rates = FaultRates {
            death: 0.02,
            drop: 0.05,
            duplicate: 0.05,
            stall: 0.1,
            stall_ns: 1000,
            ..FaultRates::default()
        };
        let a = FaultPlan::seeded(42, &rates, 8, 200);
        let b = FaultPlan::seeded(42, &rates, 8, 200);
        assert_eq!(a, b);
        assert!(!a.is_exhausted(), "rates this high must yield events");
        let c = FaultPlan::seeded(43, &rates, 8, 200);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn seeded_plan_rate_is_plausible() {
        let rates = FaultRates {
            death: 0.1,
            ..FaultRates::default()
        };
        let plan = FaultPlan::seeded(7, &rates, 10, 1000);
        // Expect ~1000 deaths out of 10_000 cells; accept a wide band.
        let n = plan.events().len();
        assert!((700..1300).contains(&n), "got {n} events");
        assert!(plan.events().iter().all(|e| e.kind == FaultKind::RankDeath));
    }

    #[test]
    fn take_due_consumes_in_order() {
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent {
                superstep: 5,
                rank: 1,
                kind: FaultKind::MessageDrop,
            },
            FaultEvent {
                superstep: 2,
                rank: 0,
                kind: FaultKind::RankDeath,
            },
            FaultEvent {
                superstep: 5,
                rank: 2,
                kind: FaultKind::MessageDuplicate,
            },
        ]);
        assert_eq!(plan.remaining(), 3);
        assert!(plan.take_due(1).is_empty());
        let due = plan.take_due(2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::RankDeath);
        let due = plan.take_due(10);
        assert_eq!(due.len(), 2);
        assert!(plan.is_exhausted());
        assert!(plan.take_due(u64::MAX).is_empty());
    }

    #[test]
    fn corruption_rates_sample_their_own_stream() {
        // Turning corruption on must not disturb the fail-stop channels.
        let fail_stop = FaultRates {
            death: 0.01,
            drop: 0.02,
            ..FaultRates::default()
        };
        let with_sdc = FaultRates {
            payload_corruption: 0.05,
            state_corruption: 0.05,
            ..fail_stop
        };
        let legacy = FaultPlan::seeded(42, &fail_stop, 8, 200);
        let merged = FaultPlan::seeded(42, &with_sdc, 8, 200);
        let merged_fail_stop: Vec<_> = merged
            .events()
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    FaultKind::PayloadCorruption { .. } | FaultKind::StateCorruption { .. }
                )
            })
            .copied()
            .collect();
        assert_eq!(legacy.events(), merged_fail_stop.as_slice());
        assert!(merged.has_corruption());
        assert!(!legacy.has_corruption());
        // Corruption event seeds must differ between events (each flip
        // targets a different bit).
        let seeds: Vec<u64> = merged
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::PayloadCorruption { seed } | FaultKind::StateCorruption { seed } => {
                    Some(seed)
                }
                _ => None,
            })
            .collect();
        assert!(seeds.len() > 10, "rates this high must yield corruptions");
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "per-event seeds must be unique");
        // Still sorted by superstep — take_due relies on it.
        assert!(merged
            .events()
            .windows(2)
            .all(|w| w[0].superstep <= w[1].superstep));
    }

    #[test]
    fn integrity_failure_displays_and_wraps() {
        let i = IntegrityFailure {
            superstep: 9,
            corrupt_batches: 3,
            healed: 2,
            unhealed: 1,
        };
        let s = format!("{i}");
        assert!(s.contains("superstep 9"));
        assert!(s.contains("3 corrupt batch(es)"));
        assert!(s.contains("1 beyond the retransmit budget"));
        let e = SuperstepError::from(i.clone());
        assert_eq!(e.superstep(), 9);
        assert_eq!(format!("{e}"), s);
        let f = SuperstepError::from(SuperstepFailure {
            superstep: 4,
            dead_ranks: vec![1],
            dropped_messages: 0,
        });
        assert_eq!(f.superstep(), 4);
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = FaultPlan::seeded(1, &FaultRates::default(), 64, 10_000);
        assert!(plan.is_exhausted());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn failure_displays() {
        let f = SuperstepFailure {
            superstep: 17,
            dead_ranks: vec![3],
            dropped_messages: 2,
        };
        let s = format!("{f}");
        assert!(s.contains("superstep 17"));
        assert!(s.contains("[3]"));
        assert!(s.contains("2 message(s)"));
    }
}
