//! Double-buffered mailboxes and coalesced exchange batches.
//!
//! The superstep barrier used to deliver every logical message individually
//! into freshly allocated per-rank inboxes, on a single thread. This module
//! replaces that path with the exchange layer the paper's UPC++ runtime
//! actually models:
//!
//! - **Bucketed outboxes** — [`Outbox::send`] stages each message directly
//!   into its per-destination bucket, so everything one rank sends to another
//!   within a superstep is one contiguous run by the time the barrier runs.
//! - **Coalesced batches** — each non-empty (src, dst) bucket ships as one
//!   length-prefixed buffer: [`BATCH_HEADER_BYTES`] of framing per batch plus
//!   every payload counted exactly once. [`ExchangeVolume`] reports both the
//!   legacy per-logical-message totals and the coalesced batch totals.
//! - **Double-buffered inboxes** — ranks read the *front* buffers during
//!   compute while the barrier assembles the next superstep's traffic into
//!   the *back* buffers, then the two sets swap in O(1). Buffer allocations
//!   are reused superstep over superstep.
//! - **Lock-free assembly** — destination `d`'s back buffer is written by
//!   exactly one pool worker, and bucket (src, d) is drained by exactly that
//!   worker, so the whole delivery fan-in runs in parallel without a single
//!   lock or atomic on the data path.
//!
//! Delivery stays canonical: sources are appended in ascending rank order,
//! so an inbox is ordered by (source rank, emission order within the source)
//! exactly as before — bit-reproducibility is preserved. The
//! [`DeliveryShuffle`](crate::fault::FaultKind::DeliveryShuffle) fault hook
//! permutes an assembled inbox with a seeded shuffle, which the
//! schedule-adversarial test suite uses to prove the model does not depend
//! on that ordering.

use crate::counters::WireSize;
use crate::fault::SplitMix64;
use crate::pool::WorkPool;

/// Framing overhead of one coalesced (src, dst) batch: an 8-byte message
/// count plus an 8-byte payload length, paid once per batch — never per
/// logical message.
pub const BATCH_HEADER_BYTES: u64 = 16;

/// Per-rank message staging for one superstep, bucketed by destination so
/// the barrier can ship each (src, dst) pair as one coalesced batch.
pub struct Outbox<M> {
    buckets: Vec<Vec<M>>,
    total: usize,
}

impl<M> Outbox<M> {
    /// An empty outbox with one destination bucket per rank.
    pub fn for_ranks(n_ranks: usize) -> Self {
        Outbox {
            buckets: (0..n_ranks).map(|_| Vec::new()).collect(),
            total: 0,
        }
    }

    /// Queue `msg` for delivery to `dest` at the next superstep boundary
    /// (the RPC analogue).
    pub fn send(&mut self, dest: usize, msg: M) {
        assert!(
            dest < self.buckets.len(),
            "message to nonexistent rank {dest}"
        );
        self.buckets[dest].push(msg);
        self.total += 1;
    }

    /// Total messages staged, across all destinations.
    pub fn len(&self) -> usize {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Empty every bucket, keeping their capacity for reuse.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.total = 0;
    }
}

/// Exact communication volume of one barrier exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeVolume {
    /// Per-event point-to-point messages delivered.
    pub msgs: u64,
    /// Their payload bytes.
    pub bytes: u64,
    /// Bulk puts delivered.
    pub bulk_msgs: u64,
    /// Their payload bytes.
    pub bulk_bytes: u64,
    /// Coalesced (src, dst) batches shipped (one per pair with traffic).
    pub batches: u64,
    /// On-wire batch bytes: one header per batch + each payload once.
    pub batch_bytes: u64,
    /// Largest per-event message count sent by any single rank.
    pub max_rank_msgs: u64,
    /// Largest per-event byte count sent by any single rank.
    pub max_rank_bytes: u64,
    /// Messages lost to an injected drop fault.
    pub dropped: u64,
}

/// Double-buffered per-rank inboxes: `front` is read during compute, `back`
/// is assembled at the barrier, then the two swap.
pub struct Mailboxes<M> {
    front: Vec<Vec<M>>,
    back: Vec<Vec<M>>,
}

impl<M> Mailboxes<M> {
    /// Empty front/back inbox pairs for `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        Mailboxes {
            front: (0..n_ranks).map(|_| Vec::new()).collect(),
            back: (0..n_ranks).map(|_| Vec::new()).collect(),
        }
    }

    /// The readable (front) inboxes for the current superstep.
    pub fn front(&self) -> &[Vec<M>] {
        &self.front
    }

    pub fn pending(&self, rank: usize) -> usize {
        self.front[rank].len()
    }
}

impl<M: Send + WireSize> Mailboxes<M> {
    /// Run one barrier exchange: meter every (src, dst) bucket, assemble the
    /// back inboxes in parallel (lock-free — see the module docs for the
    /// unique-writer argument), apply any due delivery shuffles, and swap
    /// the buffers. Sources listed in `drops` are lost in flight (metered in
    /// [`ExchangeVolume::dropped`], not delivered); `shuffles` holds
    /// `(dest, seed)` pairs whose assembled inbox is permuted.
    pub fn exchange(
        &mut self,
        pool: &WorkPool,
        outboxes: &mut [Outbox<M>],
        drops: &[usize],
        shuffles: &[(usize, u64)],
    ) -> ExchangeVolume {
        let n = self.front.len();
        debug_assert_eq!(outboxes.len(), n, "one outbox per rank");

        // Metering pass: exact legacy per-logical-message totals plus the
        // coalesced batch totals. One batch per non-empty (src, dst) bucket;
        // its wire size is the framing header plus each payload exactly once.
        let mut vol = ExchangeVolume::default();
        for (src, ob) in outboxes.iter().enumerate() {
            if drops.contains(&src) {
                vol.dropped += ob.total as u64;
                continue;
            }
            let mut rank_msgs = 0u64;
            let mut rank_bytes = 0u64;
            for bucket in &ob.buckets {
                if bucket.is_empty() {
                    continue;
                }
                let mut payload = 0u64;
                for msg in bucket {
                    let sz = msg.wire_size() as u64;
                    payload += sz;
                    if msg.is_bulk() {
                        vol.bulk_msgs += 1;
                        vol.bulk_bytes += sz;
                    } else {
                        rank_msgs += 1;
                        rank_bytes += sz;
                    }
                }
                vol.batches += 1;
                vol.batch_bytes += BATCH_HEADER_BYTES + payload;
            }
            vol.msgs += rank_msgs;
            vol.bytes += rank_bytes;
            vol.max_rank_msgs = vol.max_rank_msgs.max(rank_msgs);
            vol.max_rank_bytes = vol.max_rank_bytes.max(rank_bytes);
        }

        // Assembly: worker `d` owns back[d] and drains bucket (src, d) of
        // every source, in ascending source order — the canonical inbox
        // ordering. `Vec::append` moves whole buckets (a memcpy), leaving
        // their capacity behind for the next superstep.
        {
            let bucket_bases: Vec<*mut Vec<M>> = outboxes
                .iter_mut()
                .map(|ob| ob.buckets.as_mut_ptr())
                .collect();
            struct Grid<M> {
                buckets: *const *mut Vec<M>,
                back: *mut Vec<M>,
            }
            // SAFETY: WorkPool::run_indexed claims each index exactly once,
            // so back[d] has a unique writer and bucket (src, d) a unique
            // reader; no two workers touch the same Vec.
            unsafe impl<M> Sync for Grid<M> {}
            let grid = Grid {
                buckets: bucket_bases.as_ptr(),
                back: self.back.as_mut_ptr(),
            };
            let grid = &grid;
            pool.run_indexed(n, |d| {
                // SAFETY: see Grid above — `d` is unique per invocation.
                let back = unsafe { &mut *grid.back.add(d) };
                back.clear();
                for src in 0..n {
                    if drops.contains(&src) {
                        continue;
                    }
                    // SAFETY: bucket (src, d) is touched only by worker `d`.
                    let bucket = unsafe { &mut *(*grid.buckets.add(src)).add(d) };
                    back.append(bucket);
                }
                if let Some(&(_, seed)) = shuffles.iter().find(|&&(rank, _)| rank == d) {
                    shuffle(back, seed);
                }
            });
        }

        std::mem::swap(&mut self.front, &mut self.back);
        vol
    }
}

/// Seeded Fisher–Yates permutation (the delivery-shuffle fault).
fn shuffle<M>(v: &mut [M], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for i in (1..v.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A non-`Copy` bulk message so the blanket `WireSize` impl does not
    /// apply: models a halo buffer with a 16-byte per-message envelope.
    struct Blob(Vec<u8>);

    impl WireSize for Blob {
        fn wire_size(&self) -> usize {
            16 + self.0.len()
        }
        fn is_bulk(&self) -> bool {
            true
        }
    }

    /// Satellite fix pin: batch byte accounting counts the coalesced buffer
    /// payload once plus one 16-byte framing header per (src, dst) batch —
    /// never a header per logical message.
    #[test]
    fn batch_bytes_count_payload_once_per_batch() {
        let pool = WorkPool::new(0);
        let mut mail: Mailboxes<Blob> = Mailboxes::new(3);
        let mut obs: Vec<Outbox<Blob>> = (0..3).map(|_| Outbox::for_ranks(3)).collect();
        // Rank 0 sends two blobs to rank 1 (one batch) and one to rank 2;
        // rank 1 sends one blob to rank 2.
        obs[0].send(1, Blob(vec![0; 10]));
        obs[0].send(1, Blob(vec![0; 20]));
        obs[0].send(2, Blob(vec![0; 5]));
        obs[1].send(2, Blob(vec![0; 7]));
        let vol = mail.exchange(&pool, &mut obs, &[], &[]);

        // Legacy accounting: every logical bulk message with its own
        // 16-byte envelope, exactly as before coalescing.
        assert_eq!(vol.bulk_msgs, 4);
        assert_eq!(vol.bulk_bytes, (16 + 10) + (16 + 20) + (16 + 5) + (16 + 7));
        assert_eq!(vol.msgs, 0, "bulk traffic is not per-event");

        // Coalesced accounting: three non-empty (src, dst) pairs → three
        // batches; each pays BATCH_HEADER_BYTES once, payloads once.
        assert_eq!(vol.batches, 3);
        let payload = (16 + 10) + (16 + 20) + (16 + 5) + (16 + 7);
        assert_eq!(vol.batch_bytes, 3 * BATCH_HEADER_BYTES + payload);

        assert_eq!(mail.pending(0), 0);
        assert_eq!(mail.pending(1), 2);
        assert_eq!(mail.pending(2), 2);
    }

    #[test]
    fn per_event_messages_meter_like_before() {
        let pool = WorkPool::new(0);
        let mut mail: Mailboxes<u64> = Mailboxes::new(2);
        let mut obs: Vec<Outbox<u64>> = (0..2).map(|_| Outbox::for_ranks(2)).collect();
        obs[0].send(1, 7);
        obs[0].send(1, 8);
        obs[1].send(0, 9);
        let vol = mail.exchange(&pool, &mut obs, &[], &[]);
        assert_eq!(vol.msgs, 3);
        assert_eq!(vol.bytes, 3 * 8);
        assert_eq!(vol.max_rank_msgs, 2);
        assert_eq!(vol.max_rank_bytes, 16);
        assert_eq!(vol.batches, 2);
        assert_eq!(vol.batch_bytes, 2 * BATCH_HEADER_BYTES + 3 * 8);
    }

    /// Double buffering reuses allocations: after two exchanges the front
    /// and back vectors have swapped twice and nothing leaks across
    /// supersteps.
    #[test]
    fn buffers_swap_and_clear_between_supersteps() {
        let pool = WorkPool::new(0);
        let mut mail: Mailboxes<u32> = Mailboxes::new(2);
        let mut obs: Vec<Outbox<u32>> = (0..2).map(|_| Outbox::for_ranks(2)).collect();
        obs[0].send(1, 1);
        mail.exchange(&pool, &mut obs, &[], &[]);
        assert_eq!(mail.front()[1], vec![1]);

        for ob in &mut obs {
            ob.clear();
        }
        obs[1].send(0, 2);
        mail.exchange(&pool, &mut obs, &[], &[]);
        assert_eq!(mail.front()[0], vec![2]);
        assert!(mail.front()[1].is_empty(), "old front was recycled clean");
    }

    #[test]
    fn shuffle_is_seeded_and_permutes() {
        let pool = WorkPool::new(0);
        let run = |seed: u64| -> Vec<u32> {
            let mut mail: Mailboxes<u32> = Mailboxes::new(2);
            let mut obs: Vec<Outbox<u32>> = (0..2).map(|_| Outbox::for_ranks(2)).collect();
            for v in 0..16 {
                obs[0].send(1, v);
            }
            mail.exchange(&pool, &mut obs, &[], &[(1, seed)]);
            mail.front()[1].clone()
        };
        let a = run(0xBEEF);
        let b = run(0xBEEF);
        let c = run(0xF00D);
        assert_eq!(a, b, "same seed, same permutation");
        assert_ne!(a, c, "different seed, different permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "a permutation");
    }
}
