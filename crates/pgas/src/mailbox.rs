//! Double-buffered mailboxes and coalesced exchange batches.
//!
//! The superstep barrier used to deliver every logical message individually
//! into freshly allocated per-rank inboxes, on a single thread. This module
//! replaces that path with the exchange layer the paper's UPC++ runtime
//! actually models:
//!
//! - **Bucketed outboxes** — [`Outbox::send`] stages each message directly
//!   into its per-destination bucket, so everything one rank sends to another
//!   within a superstep is one contiguous run by the time the barrier runs.
//! - **Coalesced batches** — each non-empty (src, dst) bucket ships as one
//!   length-prefixed buffer: [`BATCH_HEADER_BYTES`] of framing per batch plus
//!   every payload counted exactly once. [`ExchangeVolume`] reports both the
//!   legacy per-logical-message totals and the coalesced batch totals.
//! - **Double-buffered inboxes** — ranks read the *front* buffers during
//!   compute while the barrier assembles the next superstep's traffic into
//!   the *back* buffers, then the two sets swap in O(1). Buffer allocations
//!   are reused superstep over superstep.
//! - **Lock-free assembly** — destination `d`'s back buffer is written by
//!   exactly one pool worker, and bucket (src, d) is drained by exactly that
//!   worker, so the whole delivery fan-in runs in parallel without a single
//!   lock or atomic on the data path.
//! - **Batch integrity** — when verification is engaged (any plan scheduling
//!   [`PayloadCorruption`]), every coalesced batch carries a CRC64 computed
//!   send-side over the pristine content and re-verified by the assembling
//!   worker at delivery. A mismatching batch is healed by an in-barrier
//!   retransmit (modeled as re-applying the XOR flip, which restores the
//!   pristine bytes) up to a deterministic per-superstep budget; anything
//!   beyond the budget is reported so the caller can fail the superstep.
//!
//! Delivery stays canonical: sources are appended in ascending rank order,
//! so an inbox is ordered by (source rank, emission order within the source)
//! exactly as before — bit-reproducibility is preserved. The
//! [`DeliveryShuffle`](crate::fault::FaultKind::DeliveryShuffle) fault hook
//! permutes an assembled inbox with a seeded shuffle, which the
//! schedule-adversarial test suite uses to prove the model does not depend
//! on that ordering.
//!
//! [`PayloadCorruption`]: crate::fault::FaultKind::PayloadCorruption

use crate::counters::WireSize;
use crate::crc::{Crc64, Payload};
use crate::fault::SplitMix64;
use crate::pool::WorkPool;

pub mod frame;

/// Framing overhead of one coalesced (src, dst) batch: an 8-byte message
/// count plus an 8-byte payload length, paid once per batch — never per
/// logical message. The CRC64 trailer added when integrity verification is
/// engaged is metered separately in [`ExchangeVolume::integrity_bytes`].
pub const BATCH_HEADER_BYTES: u64 = 16;

/// On-wire bytes of the CRC64 trailer each verified batch carries.
pub const BATCH_CRC_BYTES: u64 = 8;

/// Per-rank message staging for one superstep, bucketed by destination so
/// the barrier can ship each (src, dst) pair as one coalesced batch.
pub struct Outbox<M> {
    buckets: Vec<Vec<M>>,
    total: usize,
}

impl<M> Outbox<M> {
    /// An empty outbox with one destination bucket per rank.
    pub fn for_ranks(n_ranks: usize) -> Self {
        Outbox {
            buckets: (0..n_ranks).map(|_| Vec::new()).collect(),
            total: 0,
        }
    }

    /// Queue `msg` for delivery to `dest` at the next superstep boundary
    /// (the RPC analogue).
    pub fn send(&mut self, dest: usize, msg: M) {
        assert!(
            dest < self.buckets.len(),
            "message to nonexistent rank {dest}"
        );
        self.buckets[dest].push(msg);
        self.total += 1;
    }

    /// Total messages staged, across all destinations.
    pub fn len(&self) -> usize {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Empty every bucket, keeping their capacity for reuse.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.total = 0;
    }

    /// The staged bucket for `dest` (the process transport encodes each
    /// non-empty bucket into one wire frame).
    pub(crate) fn bucket(&self, dest: usize) -> &[M] {
        &self.buckets[dest]
    }

    /// Replace the staged bucket for `dest` with what actually came back
    /// over the wire, keeping the staged-message total consistent. On a
    /// healthy exchange the replacement is bit-identical to the original;
    /// the swap is what makes a garbled or retransmitted frame *matter*.
    pub(crate) fn replace_bucket(&mut self, dest: usize, msgs: Vec<M>) {
        self.total = self.total - self.buckets[dest].len() + msgs.len();
        self.buckets[dest] = msgs;
    }
}

/// Exact communication volume of one barrier exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeVolume {
    /// Per-event point-to-point messages delivered.
    pub msgs: u64,
    /// Their payload bytes.
    pub bytes: u64,
    /// Bulk puts delivered.
    pub bulk_msgs: u64,
    /// Their payload bytes.
    pub bulk_bytes: u64,
    /// Coalesced (src, dst) batches shipped (one per pair with traffic).
    pub batches: u64,
    /// On-wire batch bytes: one header per batch + each payload once.
    pub batch_bytes: u64,
    /// Largest per-event message count sent by any single rank.
    pub max_rank_msgs: u64,
    /// Largest per-event byte count sent by any single rank.
    pub max_rank_bytes: u64,
    /// Messages lost to an injected drop fault.
    pub dropped: u64,
    /// CRC64 trailer bytes shipped (8 per verified batch; 0 when integrity
    /// verification is off).
    pub integrity_bytes: u64,
    /// Batches whose in-flight corruption actually changed their content
    /// (a flip that cancels itself out is vacuous and not counted).
    pub corruptions_landed: u64,
    /// Batches whose delivery-side CRC64 mismatched.
    pub corrupt_batches: u64,
    /// Corrupt batches healed by an in-barrier retransmit.
    pub retransmits: u64,
    /// Corrupt batches left unhealed (retransmit budget exhausted) — the
    /// caller must fail the superstep.
    pub unhealed: u64,
}

/// Everything the fault layer can do to one barrier exchange. Split out so
/// the healthy call sites stay terse ([`ExchangeFaults::default`] injects
/// nothing and verifies nothing).
pub struct ExchangeFaults<'a> {
    /// Source ranks whose entire outbox is lost in flight.
    pub drops: &'a [usize],
    /// `(dest, seed)` pairs whose assembled inbox is permuted.
    pub shuffles: &'a [(usize, u64)],
    /// `(src, seed)` payload-corruption events: one seeded bit flip lands in
    /// one of `src`'s in-flight batches, after the send-side CRC is taken.
    pub corruptions: &'a [(usize, u64)],
    /// Compute and verify per-batch CRC64 checksums.
    pub verify: bool,
    /// Corrupt batches healed in-barrier before the superstep is failed.
    pub retransmit_budget: u64,
}

impl Default for ExchangeFaults<'static> {
    fn default() -> Self {
        ExchangeFaults {
            drops: &[],
            shuffles: &[],
            corruptions: &[],
            verify: false,
            retransmit_budget: u64::MAX,
        }
    }
}

/// One landed in-flight bit flip: message `idx` of bucket (src, dst) was
/// XOR-corrupted with `seed`. `heal` marks whether the retransmit budget
/// covers this batch.
struct Flip {
    src: usize,
    dst: usize,
    idx: usize,
    seed: u64,
    heal: bool,
}

/// Double-buffered per-rank inboxes: `front` is read during compute, `back`
/// is assembled at the barrier, then the two swap.
pub struct Mailboxes<M> {
    front: Vec<Vec<M>>,
    back: Vec<Vec<M>>,
}

impl<M> Mailboxes<M> {
    /// Empty front/back inbox pairs for `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        Mailboxes {
            front: (0..n_ranks).map(|_| Vec::new()).collect(),
            back: (0..n_ranks).map(|_| Vec::new()).collect(),
        }
    }

    /// The readable (front) inboxes for the current superstep.
    pub fn front(&self) -> &[Vec<M>] {
        &self.front
    }

    pub fn pending(&self, rank: usize) -> usize {
        self.front[rank].len()
    }
}

/// Send-side/delivery-side digest of one coalesced batch: message count
/// first (so truncation is detectable), then every payload's wire content.
fn batch_crc<M: Payload>(bucket: &[M]) -> u64 {
    let mut c = Crc64::new();
    c.write_len(bucket.len());
    for m in bucket {
        m.digest(&mut c);
    }
    c.finish()
}

impl<M: Send + WireSize + Payload> Mailboxes<M> {
    /// Run one barrier exchange with no faults and no verification — the
    /// healthy hot path benchmarked by the perf gate. Equivalent to
    /// [`Mailboxes::exchange_faulted`] with `drops`/`shuffles` and default
    /// integrity settings.
    pub fn exchange(
        &mut self,
        pool: &WorkPool,
        outboxes: &mut [Outbox<M>],
        drops: &[usize],
        shuffles: &[(usize, u64)],
    ) -> ExchangeVolume {
        self.exchange_faulted(
            pool,
            outboxes,
            &ExchangeFaults {
                drops,
                shuffles,
                ..ExchangeFaults::default()
            },
        )
    }

    /// Run one barrier exchange: meter every (src, dst) bucket, assemble the
    /// back inboxes in parallel (lock-free — see the module docs for the
    /// unique-writer argument), apply any due faults, and swap the buffers.
    ///
    /// When `faults.verify` is set, the metering pass also digests every
    /// batch (CRC64 over the pristine content), scheduled corruption bit
    /// flips are applied "in flight" *after* the digests are taken, and each
    /// assembling worker re-verifies its batches at delivery. Corrupt
    /// batches are healed by an in-barrier retransmit up to
    /// `faults.retransmit_budget`; [`ExchangeVolume::unhealed`] reports
    /// anything beyond it.
    pub fn exchange_faulted(
        &mut self,
        pool: &WorkPool,
        outboxes: &mut [Outbox<M>],
        faults: &ExchangeFaults<'_>,
    ) -> ExchangeVolume {
        let n = self.front.len();
        debug_assert_eq!(outboxes.len(), n, "one outbox per rank");
        let drops = faults.drops;
        let shuffles = faults.shuffles;
        let verify = faults.verify;
        // Injecting corruption needs the pristine digests even when delivery
        // verification is off (to tell a landed flip from a cancelled one),
        // but only `verify` ships CRC trailers or detects anything.
        let track = verify || !faults.corruptions.is_empty();

        // Metering pass: exact legacy per-logical-message totals plus the
        // coalesced batch totals. One batch per non-empty (src, dst) bucket;
        // its wire size is the framing header plus each payload exactly once.
        // When verifying, this same pass takes the send-side CRC of every
        // batch while the content is still pristine.
        let mut vol = ExchangeVolume::default();
        let mut crcs: Vec<u64> = if track { vec![0; n * n] } else { Vec::new() };
        for (src, ob) in outboxes.iter().enumerate() {
            if drops.contains(&src) {
                vol.dropped += ob.total as u64;
                continue;
            }
            let mut rank_msgs = 0u64;
            let mut rank_bytes = 0u64;
            for (dst, bucket) in ob.buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let mut payload = 0u64;
                for msg in bucket {
                    let sz = msg.wire_size() as u64;
                    payload += sz;
                    if msg.is_bulk() {
                        vol.bulk_msgs += 1;
                        vol.bulk_bytes += sz;
                    } else {
                        rank_msgs += 1;
                        rank_bytes += sz;
                    }
                }
                vol.batches += 1;
                vol.batch_bytes += BATCH_HEADER_BYTES + payload;
                if track {
                    crcs[src * n + dst] = batch_crc(bucket);
                    if verify {
                        vol.integrity_bytes += BATCH_CRC_BYTES;
                    }
                }
            }
            vol.msgs += rank_msgs;
            vol.bytes += rank_bytes;
            vol.max_rank_msgs = vol.max_rank_msgs.max(rank_msgs);
            vol.max_rank_bytes = vol.max_rank_bytes.max(rank_bytes);
        }

        // Corruption strikes in flight — after the send-side digests, before
        // delivery. Each event picks one of the source's corruptible batches
        // and one message within it, all derived from the event seed.
        let mut flips: Vec<Flip> = Vec::new();
        for &(src, seed) in faults.corruptions {
            if src >= n || drops.contains(&src) {
                continue; // a dropped outbox has nothing left to corrupt
            }
            let mut rng = SplitMix64::new(seed);
            let candidates: Vec<usize> = outboxes[src]
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.iter().any(|m| m.corruptible()))
                .map(|(d, _)| d)
                .collect();
            if candidates.is_empty() {
                continue; // nothing in flight with flippable bits: vacuous
            }
            let dst = candidates[(rng.next_u64() % candidates.len() as u64) as usize];
            let bucket = &mut outboxes[src].buckets[dst];
            let targets: Vec<usize> = (0..bucket.len())
                .filter(|&i| bucket[i].corruptible())
                .collect();
            let idx = targets[(rng.next_u64() % targets.len() as u64) as usize];
            let flip_seed = rng.next_u64();
            bucket[idx].corrupt(flip_seed);
            flips.push(Flip {
                src,
                dst,
                idx,
                seed: flip_seed,
                heal: false,
            });
        }
        // Count batches whose content actually changed (two flips can cancel
        // each other out bit-for-bit; such a batch is vacuously clean and
        // must not be promised as "detectable"). Then spend the retransmit
        // budget in flight order — deterministic, no races with assembly.
        if !flips.is_empty() {
            let mut landed: Vec<(usize, usize)> = Vec::new();
            for f in &flips {
                if !landed.contains(&(f.src, f.dst)) {
                    landed.push((f.src, f.dst));
                }
            }
            landed.retain(|&(s, d)| batch_crc(&outboxes[s].buckets[d]) != crcs_at(&crcs, n, s, d));
            vol.corruptions_landed = landed.len() as u64;
            let budget = faults.retransmit_budget.min(landed.len() as u64) as usize;
            let healed: &[(usize, usize)] = &landed[..budget];
            for f in &mut flips {
                f.heal = healed.contains(&(f.src, f.dst));
            }
            flips.retain(|f| landed.contains(&(f.src, f.dst)));
        }

        // Assembly: worker `d` owns back[d] and drains bucket (src, d) of
        // every source, in ascending source order — the canonical inbox
        // ordering. `Vec::append` moves whole buckets (a memcpy), leaving
        // their capacity behind for the next superstep. When verifying,
        // worker `d` also re-digests each of its batches before the append,
        // heals budgeted flips (XOR is self-inverse, so re-applying the flip
        // restores the pristine bytes — the retransmit model), and tallies
        // into its private slot of `islots`.
        let mut islots: Vec<[u64; 3]> = vec![[0u64; 3]; if verify { n } else { 0 }];
        {
            let bucket_bases: Vec<*mut Vec<M>> = outboxes
                .iter_mut()
                .map(|ob| ob.buckets.as_mut_ptr())
                .collect();
            struct Grid<M> {
                buckets: *const *mut Vec<M>,
                back: *mut Vec<M>,
                islots: *mut [u64; 3],
            }
            // SAFETY: WorkPool::run_indexed claims each index exactly once,
            // so back[d] and islots[d] have a unique writer and bucket
            // (src, d) a unique reader; no two workers touch the same slot.
            unsafe impl<M> Sync for Grid<M> {}
            let grid = Grid {
                buckets: bucket_bases.as_ptr(),
                back: self.back.as_mut_ptr(),
                islots: islots.as_mut_ptr(),
            };
            let grid = &grid;
            let crcs = &crcs;
            let flips = &flips;
            pool.run_indexed(n, |d| {
                // SAFETY: see Grid above — `d` is unique per invocation.
                let back = unsafe { &mut *grid.back.add(d) };
                back.clear();
                for src in 0..n {
                    if drops.contains(&src) {
                        continue;
                    }
                    // SAFETY: bucket (src, d) is touched only by worker `d`.
                    let bucket = unsafe { &mut *(*grid.buckets.add(src)).add(d) };
                    if verify && !bucket.is_empty() {
                        let expected = crcs_at(crcs, n, src, d);
                        if batch_crc(bucket) != expected {
                            // SAFETY: islots[d] is written only by worker `d`.
                            let slot = unsafe { &mut *grid.islots.add(d) };
                            slot[0] += 1; // corrupt batch detected
                            let mine = flips.iter().filter(|f| f.src == src && f.dst == d);
                            if mine.clone().all(|f| f.heal) {
                                for f in mine {
                                    bucket[f.idx].corrupt(f.seed);
                                }
                                debug_assert_eq!(batch_crc(bucket), expected);
                                slot[1] += 1; // healed by retransmit
                            } else {
                                slot[2] += 1; // budget exhausted
                            }
                        }
                    }
                    back.append(bucket);
                }
                if let Some(&(_, seed)) = shuffles.iter().find(|&&(rank, _)| rank == d) {
                    shuffle(back, seed);
                }
            });
        }
        for slot in &islots {
            vol.corrupt_batches += slot[0];
            vol.retransmits += slot[1];
            vol.unhealed += slot[2];
        }

        std::mem::swap(&mut self.front, &mut self.back);
        vol
    }
}

fn crcs_at(crcs: &[u64], n: usize, src: usize, dst: usize) -> u64 {
    crcs[src * n + dst]
}

/// Seeded Fisher–Yates permutation (the delivery-shuffle fault).
fn shuffle<M>(v: &mut [M], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for i in (1..v.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A non-`Copy` bulk message so the blanket `WireSize`/`Payload` impls
    /// do not apply: models a halo buffer with a 16-byte per-message
    /// envelope and real digest/corrupt coverage of every content bit.
    struct Blob(Vec<u8>);

    impl WireSize for Blob {
        fn wire_size(&self) -> usize {
            16 + self.0.len()
        }
        fn is_bulk(&self) -> bool {
            true
        }
    }

    impl Payload for Blob {
        fn digest(&self, crc: &mut Crc64) {
            crc.write_len(self.0.len());
            crc.update(&self.0);
        }
        fn corrupt(&mut self, seed: u64) {
            if self.0.is_empty() {
                return;
            }
            let bit = seed % (self.0.len() as u64 * 8);
            self.0[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        fn corruptible(&self) -> bool {
            !self.0.is_empty()
        }
    }

    /// Satellite fix pin: batch byte accounting counts the coalesced buffer
    /// payload once plus one 16-byte framing header per (src, dst) batch —
    /// never a header per logical message.
    #[test]
    fn batch_bytes_count_payload_once_per_batch() {
        let pool = WorkPool::new(0);
        let mut mail: Mailboxes<Blob> = Mailboxes::new(3);
        let mut obs: Vec<Outbox<Blob>> = (0..3).map(|_| Outbox::for_ranks(3)).collect();
        // Rank 0 sends two blobs to rank 1 (one batch) and one to rank 2;
        // rank 1 sends one blob to rank 2.
        obs[0].send(1, Blob(vec![0; 10]));
        obs[0].send(1, Blob(vec![0; 20]));
        obs[0].send(2, Blob(vec![0; 5]));
        obs[1].send(2, Blob(vec![0; 7]));
        let vol = mail.exchange(&pool, &mut obs, &[], &[]);

        // Legacy accounting: every logical bulk message with its own
        // 16-byte envelope, exactly as before coalescing.
        assert_eq!(vol.bulk_msgs, 4);
        assert_eq!(vol.bulk_bytes, (16 + 10) + (16 + 20) + (16 + 5) + (16 + 7));
        assert_eq!(vol.msgs, 0, "bulk traffic is not per-event");

        // Coalesced accounting: three non-empty (src, dst) pairs → three
        // batches; each pays BATCH_HEADER_BYTES once, payloads once.
        assert_eq!(vol.batches, 3);
        let payload = (16 + 10) + (16 + 20) + (16 + 5) + (16 + 7);
        assert_eq!(vol.batch_bytes, 3 * BATCH_HEADER_BYTES + payload);
        assert_eq!(vol.integrity_bytes, 0, "no CRC trailers when not verifying");

        assert_eq!(mail.pending(0), 0);
        assert_eq!(mail.pending(1), 2);
        assert_eq!(mail.pending(2), 2);
    }

    #[test]
    fn per_event_messages_meter_like_before() {
        let pool = WorkPool::new(0);
        let mut mail: Mailboxes<u64> = Mailboxes::new(2);
        let mut obs: Vec<Outbox<u64>> = (0..2).map(|_| Outbox::for_ranks(2)).collect();
        obs[0].send(1, 7);
        obs[0].send(1, 8);
        obs[1].send(0, 9);
        let vol = mail.exchange(&pool, &mut obs, &[], &[]);
        assert_eq!(vol.msgs, 3);
        assert_eq!(vol.bytes, 3 * 8);
        assert_eq!(vol.max_rank_msgs, 2);
        assert_eq!(vol.max_rank_bytes, 16);
        assert_eq!(vol.batches, 2);
        assert_eq!(vol.batch_bytes, 2 * BATCH_HEADER_BYTES + 3 * 8);
    }

    /// Double buffering reuses allocations: after two exchanges the front
    /// and back vectors have swapped twice and nothing leaks across
    /// supersteps.
    #[test]
    fn buffers_swap_and_clear_between_supersteps() {
        let pool = WorkPool::new(0);
        let mut mail: Mailboxes<u32> = Mailboxes::new(2);
        let mut obs: Vec<Outbox<u32>> = (0..2).map(|_| Outbox::for_ranks(2)).collect();
        obs[0].send(1, 1);
        mail.exchange(&pool, &mut obs, &[], &[]);
        assert_eq!(mail.front()[1], vec![1]);

        for ob in &mut obs {
            ob.clear();
        }
        obs[1].send(0, 2);
        mail.exchange(&pool, &mut obs, &[], &[]);
        assert_eq!(mail.front()[0], vec![2]);
        assert!(mail.front()[1].is_empty(), "old front was recycled clean");
    }

    #[test]
    fn shuffle_is_seeded_and_permutes() {
        let pool = WorkPool::new(0);
        let run = |seed: u64| -> Vec<u32> {
            let mut mail: Mailboxes<u32> = Mailboxes::new(2);
            let mut obs: Vec<Outbox<u32>> = (0..2).map(|_| Outbox::for_ranks(2)).collect();
            for v in 0..16 {
                obs[0].send(1, v);
            }
            mail.exchange(&pool, &mut obs, &[], &[(1, seed)]);
            mail.front()[1].clone()
        };
        let a = run(0xBEEF);
        let b = run(0xBEEF);
        let c = run(0xF00D);
        assert_eq!(a, b, "same seed, same permutation");
        assert_ne!(a, c, "different seed, different permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "a permutation");
    }

    fn staged(n: usize) -> (Mailboxes<Blob>, Vec<Outbox<Blob>>) {
        let mail: Mailboxes<Blob> = Mailboxes::new(n);
        let mut obs: Vec<Outbox<Blob>> = (0..n).map(|_| Outbox::for_ranks(n)).collect();
        for (src, ob) in obs.iter_mut().enumerate() {
            for dst in 0..n {
                if src != dst {
                    ob.send(dst, Blob(vec![(src * n + dst) as u8; 24]));
                }
            }
        }
        (mail, obs)
    }

    /// An in-flight bit flip is detected by the delivery-side CRC, healed by
    /// the in-barrier retransmit, and the delivered inboxes are bit-for-bit
    /// the inboxes a clean exchange delivers.
    #[test]
    fn corruption_is_detected_and_healed_in_barrier() {
        let pool = WorkPool::new(0);
        let (mut clean_mail, mut clean_obs) = staged(3);
        clean_mail.exchange(&pool, &mut clean_obs, &[], &[]);

        let (mut mail, mut obs) = staged(3);
        let vol = mail.exchange_faulted(
            &pool,
            &mut obs,
            &ExchangeFaults {
                corruptions: &[(0, 0xC0FFEE), (2, 0xD00D)],
                verify: true,
                ..ExchangeFaults::default()
            },
        );
        assert_eq!(vol.corruptions_landed, 2);
        assert_eq!(vol.corrupt_batches, 2, "every landed flip detected");
        assert_eq!(vol.retransmits, 2, "and healed within the barrier");
        assert_eq!(vol.unhealed, 0);
        assert_eq!(vol.integrity_bytes, vol.batches * BATCH_CRC_BYTES);
        for d in 0..3 {
            let a: Vec<&[u8]> = clean_mail.front()[d]
                .iter()
                .map(|b| b.0.as_slice())
                .collect();
            let b: Vec<&[u8]> = mail.front()[d].iter().map(|b| b.0.as_slice()).collect();
            assert_eq!(a, b, "healed delivery must be pristine at dest {d}");
        }
    }

    /// With a zero retransmit budget the corruption is still detected but
    /// left unhealed — the caller must fail the superstep and roll back.
    #[test]
    fn exhausted_retransmit_budget_reports_unhealed() {
        let pool = WorkPool::new(0);
        let (mut mail, mut obs) = staged(3);
        let vol = mail.exchange_faulted(
            &pool,
            &mut obs,
            &ExchangeFaults {
                corruptions: &[(1, 0xBAD)],
                verify: true,
                retransmit_budget: 0,
                ..ExchangeFaults::default()
            },
        );
        assert_eq!(vol.corruptions_landed, 1);
        assert_eq!(vol.corrupt_batches, 1);
        assert_eq!(vol.retransmits, 0);
        assert_eq!(vol.unhealed, 1);
    }

    /// A clean verified exchange reports no corruption: the detector has no
    /// false positives, and verification does not perturb delivery.
    #[test]
    fn verification_has_no_false_positives() {
        let pool = WorkPool::new(0);
        let (mut clean_mail, mut clean_obs) = staged(4);
        clean_mail.exchange(&pool, &mut clean_obs, &[], &[]);
        let (mut mail, mut obs) = staged(4);
        let vol = mail.exchange_faulted(
            &pool,
            &mut obs,
            &ExchangeFaults {
                verify: true,
                ..ExchangeFaults::default()
            },
        );
        assert_eq!(vol.corrupt_batches, 0);
        assert_eq!(vol.retransmits, 0);
        assert_eq!(vol.unhealed, 0);
        assert!(vol.integrity_bytes > 0);
        for d in 0..4 {
            let a: Vec<&[u8]> = clean_mail.front()[d]
                .iter()
                .map(|b| b.0.as_slice())
                .collect();
            let b: Vec<&[u8]> = mail.front()[d].iter().map(|b| b.0.as_slice()).collect();
            assert_eq!(a, b);
        }
    }

    /// Corruption aimed at a rank with nothing corruptible in flight (or a
    /// dropped outbox) is vacuous — nothing lands, nothing is reported.
    #[test]
    fn vacuous_corruption_does_not_land() {
        let pool = WorkPool::new(0);
        let mut mail: Mailboxes<Blob> = Mailboxes::new(2);
        let mut obs: Vec<Outbox<Blob>> = (0..2).map(|_| Outbox::for_ranks(2)).collect();
        obs[0].send(1, Blob(vec![7; 8]));
        // Rank 1 sends nothing; rank 0's outbox is dropped in flight.
        let vol = mail.exchange_faulted(
            &pool,
            &mut obs,
            &ExchangeFaults {
                drops: &[0],
                corruptions: &[(0, 0x1), (1, 0x2)],
                verify: true,
                ..ExchangeFaults::default()
            },
        );
        assert_eq!(vol.corruptions_landed, 0);
        assert_eq!(vol.corrupt_batches, 0);
        assert_eq!(vol.dropped, 1);
    }
}
