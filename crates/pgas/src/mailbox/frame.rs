//! Length-prefixed wire codec for a coalesced batch, hardened against
//! truncated and hostile frames.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [count: u64][payload_len: u64][payload: payload_len bytes][crc: u64]
//! ```
//!
//! The trailer CRC is CRC-64/XZ over everything before it (header +
//! payload), so truncation, extension, and any bit flip are all detected.
//! The parser follows the same hostile-input discipline as
//! `checkpoint::restore`: every length is bounds-checked with `checked_add`
//! before use and nothing is allocated from an untrusted length — the
//! decoded payload is a *borrow* into the input buffer.
//!
//! The durable checkpoint files written by the driver wrap their payload in
//! exactly this frame, so the parser is load-bearing for crash restart, not
//! just for tests.

use crate::crc::crc64;

/// Frame header: message count + payload length, 8 bytes each.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Frame trailer: the CRC-64/XZ of header + payload.
pub const FRAME_TRAILER_BYTES: usize = 8;

/// Why a frame failed to decode. `Corrupt` means the structure was sound
/// but the trailer CRC mismatched — the content cannot be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than header + trailer, or fewer than the declared
    /// payload requires.
    Truncated { need: u64, have: u64 },
    /// Bytes left over after the declared payload and trailer — a frame is
    /// exact, so trailing garbage means the length field lies.
    TrailingBytes { extra: u64 },
    /// Declared payload length overflows the addressable frame size.
    LengthOverflow { payload_len: u64 },
    /// Trailer CRC mismatch: the frame was damaged in flight or at rest.
    Corrupt { expected: u64, got: u64 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "frame has {extra} trailing byte(s)")
            }
            FrameError::LengthOverflow { payload_len } => {
                write!(f, "frame payload length {payload_len} overflows")
            }
            FrameError::Corrupt { expected, got } => write!(
                f,
                "frame CRC mismatch: expected {expected:#018x}, got {got:#018x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Why a frame failed to *stream* in: either the underlying reader failed
/// (including a clean truncation, surfaced as
/// [`std::io::ErrorKind::UnexpectedEof`]) or the bytes that did arrive
/// violate the frame structure.
#[derive(Debug)]
pub enum FrameStreamError {
    /// The reader failed or the stream ended mid-frame.
    Io(std::io::Error),
    /// The frame arrived whole but is structurally or cryptographically bad.
    Frame(FrameError),
}

impl std::fmt::Display for FrameStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameStreamError::Io(e) => write!(f, "frame stream i/o: {e}"),
            FrameStreamError::Frame(e) => write!(f, "frame stream: {e}"),
        }
    }
}

impl std::error::Error for FrameStreamError {}

impl From<std::io::Error> for FrameStreamError {
    fn from(e: std::io::Error) -> Self {
        FrameStreamError::Io(e)
    }
}

impl From<FrameError> for FrameStreamError {
    fn from(e: FrameError) -> Self {
        FrameStreamError::Frame(e)
    }
}

/// Fill `buf` from `r`, looping over arbitrarily short reads. Unlike
/// `Read::read_exact` the partial-read behavior is pinned here, because the
/// process transport's correctness argument depends on it: a `read` that
/// returns fewer bytes than asked (a TCP segment boundary, a signal) must
/// never be mistaken for end-of-stream, and a genuine EOF mid-fill must
/// surface as a typed error, never as a short buffer silently treated as
/// complete.
fn fill_exact<R: std::io::Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "stream ended {} bytes into a {}-byte fill",
                        filled,
                        buf.len()
                    ),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read exactly one frame from a byte stream, returning `(count, payload)`.
///
/// The in-memory [`decode`] requires the whole frame resident up front; this
/// is its streaming sibling for sockets and files, hardened the same way:
/// the declared payload length is validated against `max_payload` *before*
/// any allocation, a short read never panics or mis-frames (the fill loop
/// tolerates arbitrary split points), and a truncated stream surfaces as
/// [`FrameStreamError::Io`] with [`std::io::ErrorKind::UnexpectedEof`]. On
/// success the stream is positioned exactly after the frame's CRC trailer,
/// so self-delimiting frames can be read back-to-back.
pub fn read_frame<R: std::io::Read>(
    r: &mut R,
    max_payload: u64,
) -> Result<(u64, Vec<u8>), FrameStreamError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    fill_exact(r, &mut header)?;
    let count = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    if payload_len > max_payload {
        return Err(FrameError::LengthOverflow { payload_len }.into());
    }
    let mut rest = vec![0u8; payload_len as usize + FRAME_TRAILER_BYTES];
    fill_exact(r, &mut rest)?;
    let body_end = payload_len as usize;
    let expected = u64::from_le_bytes(rest[body_end..].try_into().expect("8 bytes"));
    let mut crc = crate::crc::Crc64::new();
    crc.update(&header);
    crc.update(&rest[..body_end]);
    let got = crc.finish();
    if got != expected {
        return Err(FrameError::Corrupt { expected, got }.into());
    }
    rest.truncate(body_end);
    Ok((count, rest))
}

/// Encode `payload` (carrying `count` logical messages) as one frame.
pub fn encode(count: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len() + FRAME_TRAILER_BYTES);
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode one frame, returning `(count, payload)`. The payload borrows from
/// `bytes`; no allocation is driven by untrusted lengths.
pub fn decode(bytes: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    let have = bytes.len() as u64;
    let floor = (FRAME_HEADER_BYTES + FRAME_TRAILER_BYTES) as u64;
    if have < floor {
        return Err(FrameError::Truncated { need: floor, have });
    }
    let count = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    // `floor + payload_len` with checked_add: a hostile length near u64::MAX
    // must not wrap into a small "need".
    let need = match floor.checked_add(payload_len) {
        Some(n) => n,
        None => return Err(FrameError::LengthOverflow { payload_len }),
    };
    if have < need {
        return Err(FrameError::Truncated { need, have });
    }
    if have > need {
        return Err(FrameError::TrailingBytes { extra: have - need });
    }
    // Structure is sound; payload_len fits in usize because the whole frame
    // is already resident in memory.
    let body_end = FRAME_HEADER_BYTES + payload_len as usize;
    let expected = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    let got = crc64(&bytes[..body_end]);
    if got != expected {
        return Err(FrameError::Corrupt { expected, got });
    }
    Ok((count, &bytes[FRAME_HEADER_BYTES..body_end]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SplitMix64;

    #[test]
    fn roundtrips() {
        for len in [0usize, 1, 7, 256, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let frame = encode(len as u64 / 3, &payload);
            assert_eq!(frame.len(), FRAME_HEADER_BYTES + len + FRAME_TRAILER_BYTES);
            let (count, body) = decode(&frame).expect("clean frame decodes");
            assert_eq!(count, len as u64 / 3);
            assert_eq!(body, payload.as_slice());
        }
    }

    #[test]
    fn rejects_truncation_extension_and_overflow() {
        let frame = encode(3, &[1, 2, 3, 4, 5]);
        assert!(matches!(
            decode(&frame[..frame.len() - 1]),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&frame[..4]),
            Err(FrameError::Truncated { .. })
        ));
        let mut long = frame.clone();
        long.push(0);
        assert!(matches!(
            decode(&long),
            Err(FrameError::TrailingBytes { extra: 1 })
        ));
        // A hostile length near u64::MAX must not wrap the bounds check.
        let mut hostile = frame.clone();
        hostile[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(&hostile),
            Err(FrameError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode(2, b"integrity matters");
        for bit in 0..frame.len() * 8 {
            let mut dam = frame.clone();
            dam[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode(&dam).is_err(),
                "bit flip at {bit} decoded successfully"
            );
        }
    }

    /// Fuzz-style seeded hammering alongside the batch-bytes pin test:
    /// random blobs, random truncations and random flips must never panic
    /// and never validate as the original frame.
    #[test]
    fn fuzz_decode_never_panics() {
        let mut rng = SplitMix64::new(0x5DC_F4A2);
        let payload: Vec<u8> = (0..500).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let frame = encode(17, &payload);
        for _ in 0..2000 {
            let mut blob = frame.clone();
            match rng.next_u64() % 3 {
                0 => {
                    let cut = (rng.next_u64() as usize) % (blob.len() + 1);
                    blob.truncate(cut);
                }
                1 => {
                    let flips = 1 + rng.next_u64() % 4;
                    for _ in 0..flips {
                        let bit = (rng.next_u64() as usize) % (blob.len() * 8);
                        blob[bit / 8] ^= 1 << (bit % 8);
                    }
                }
                _ => {
                    let len = (rng.next_u64() as usize) % 64;
                    blob = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
                }
            }
            if blob == frame {
                continue; // flips cancelled out — genuinely clean
            }
            if let Ok((count, body)) = decode(&blob) {
                // A 64-bit CRC collision within 2000 structured mutations
                // would be astronomically unlikely; treat it as failure.
                panic!("damaged frame validated: count={count}, len={}", body.len());
            }
        }
        // And the pristine frame still decodes after all that.
        assert!(decode(&frame).is_ok());
    }

    /// A reader that hands out at most `chunk` bytes per `read` call and can
    /// cut the stream dead at `cutoff` — the adversarial substrate for the
    /// streaming-reader fuzz below.
    struct Chunked<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
        cutoff: usize,
    }

    impl std::io::Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let end = self.data.len().min(self.cutoff);
            if self.pos >= end {
                return Ok(0);
            }
            let n = buf.len().min(self.chunk).min(end - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// Satellite pin: the streaming reader must decode identically no matter
    /// where the transport splits its reads — every chunk size from 1 byte
    /// up, including pathological 1-byte trickles across both length fields.
    #[test]
    fn read_frame_is_split_point_invariant() {
        let payload: Vec<u8> = (0..313).map(|i| (i * 7 % 256) as u8).collect();
        let frame = encode(11, &payload);
        for chunk in [1usize, 2, 3, 5, 7, 15, 16, 17, 64, 1024] {
            let mut r = Chunked {
                data: &frame,
                pos: 0,
                chunk,
                cutoff: usize::MAX,
            };
            let (count, body) = read_frame(&mut r, 1 << 20)
                .unwrap_or_else(|e| panic!("chunk {chunk}: clean frame failed: {e}"));
            assert_eq!(count, 11);
            assert_eq!(body, payload);
        }
    }

    /// Truncating the stream at *every* byte offset must yield a typed
    /// `UnexpectedEof` — never a panic, never a short frame passed off as
    /// complete, never a mis-framed success.
    #[test]
    fn read_frame_rejects_every_truncation_point() {
        let frame = encode(3, b"cut me anywhere");
        for cutoff in 0..frame.len() {
            for chunk in [1usize, 4, 64] {
                let mut r = Chunked {
                    data: &frame,
                    pos: 0,
                    chunk,
                    cutoff,
                };
                match read_frame(&mut r, 1 << 20) {
                    Err(FrameStreamError::Io(e)) => {
                        assert_eq!(
                            e.kind(),
                            std::io::ErrorKind::UnexpectedEof,
                            "cutoff {cutoff}: wrong error kind"
                        );
                    }
                    Err(other) => panic!("cutoff {cutoff}: wrong error class: {other}"),
                    Ok(_) => panic!("cutoff {cutoff}: truncated stream decoded"),
                }
            }
        }
    }

    /// Seeded hammering of the streaming reader: random flips, truncations
    /// and hostile length fields through random chunk sizes never panic and
    /// never validate damaged bytes; back-to-back frames stay delimited.
    #[test]
    fn read_frame_fuzz_never_panics_or_misframes() {
        let mut rng = SplitMix64::new(0x00D_FACE);
        let payload: Vec<u8> = (0..257).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let frame = encode(9, &payload);
        for _ in 0..2000 {
            let mut blob = frame.clone();
            match rng.next_u64() % 3 {
                0 => {
                    let cut = (rng.next_u64() as usize) % (blob.len() + 1);
                    blob.truncate(cut);
                }
                1 => {
                    let bit = (rng.next_u64() as usize) % (blob.len() * 8);
                    blob[bit / 8] ^= 1 << (bit % 8);
                }
                _ => {
                    // Hostile declared length (possibly huge) with the rest
                    // of the frame left as-is.
                    let lie = rng.next_u64();
                    blob[8..16].copy_from_slice(&lie.to_le_bytes());
                }
            }
            if blob == frame {
                continue;
            }
            let chunk = 1 + (rng.next_u64() as usize) % 64;
            let mut r = Chunked {
                data: &blob,
                pos: 0,
                chunk,
                cutoff: usize::MAX,
            };
            // The cap mirrors the transport's: no allocation beyond it.
            if let Ok((count, body)) = read_frame(&mut r, 1 << 20) {
                assert!(
                    count == 9 && body == payload,
                    "damaged stream validated differently: count={count}"
                );
            }
        }
        // Two pristine frames back-to-back: the reader must stop exactly at
        // the trailer so the second frame decodes from the same stream.
        let mut two = frame.clone();
        let second = encode(1, b"next");
        two.extend_from_slice(&second);
        let mut r = Chunked {
            data: &two,
            pos: 0,
            chunk: 3,
            cutoff: usize::MAX,
        };
        let (c1, b1) = read_frame(&mut r, 1 << 20).expect("first frame");
        assert_eq!((c1, b1.as_slice()), (9, payload.as_slice()));
        let (c2, b2) = read_frame(&mut r, 1 << 20).expect("second frame");
        assert_eq!((c2, b2.as_slice()), (1, b"next".as_slice()));
    }
}
