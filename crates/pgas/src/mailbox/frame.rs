//! Length-prefixed wire codec for a coalesced batch, hardened against
//! truncated and hostile frames.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [count: u64][payload_len: u64][payload: payload_len bytes][crc: u64]
//! ```
//!
//! The trailer CRC is CRC-64/XZ over everything before it (header +
//! payload), so truncation, extension, and any bit flip are all detected.
//! The parser follows the same hostile-input discipline as
//! `checkpoint::restore`: every length is bounds-checked with `checked_add`
//! before use and nothing is allocated from an untrusted length — the
//! decoded payload is a *borrow* into the input buffer.
//!
//! The durable checkpoint files written by the driver wrap their payload in
//! exactly this frame, so the parser is load-bearing for crash restart, not
//! just for tests.

use crate::crc::crc64;

/// Frame header: message count + payload length, 8 bytes each.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Frame trailer: the CRC-64/XZ of header + payload.
pub const FRAME_TRAILER_BYTES: usize = 8;

/// Why a frame failed to decode. `Corrupt` means the structure was sound
/// but the trailer CRC mismatched — the content cannot be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than header + trailer, or fewer than the declared
    /// payload requires.
    Truncated { need: u64, have: u64 },
    /// Bytes left over after the declared payload and trailer — a frame is
    /// exact, so trailing garbage means the length field lies.
    TrailingBytes { extra: u64 },
    /// Declared payload length overflows the addressable frame size.
    LengthOverflow { payload_len: u64 },
    /// Trailer CRC mismatch: the frame was damaged in flight or at rest.
    Corrupt { expected: u64, got: u64 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "frame has {extra} trailing byte(s)")
            }
            FrameError::LengthOverflow { payload_len } => {
                write!(f, "frame payload length {payload_len} overflows")
            }
            FrameError::Corrupt { expected, got } => write!(
                f,
                "frame CRC mismatch: expected {expected:#018x}, got {got:#018x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode `payload` (carrying `count` logical messages) as one frame.
pub fn encode(count: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len() + FRAME_TRAILER_BYTES);
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode one frame, returning `(count, payload)`. The payload borrows from
/// `bytes`; no allocation is driven by untrusted lengths.
pub fn decode(bytes: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    let have = bytes.len() as u64;
    let floor = (FRAME_HEADER_BYTES + FRAME_TRAILER_BYTES) as u64;
    if have < floor {
        return Err(FrameError::Truncated { need: floor, have });
    }
    let count = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    // `floor + payload_len` with checked_add: a hostile length near u64::MAX
    // must not wrap into a small "need".
    let need = match floor.checked_add(payload_len) {
        Some(n) => n,
        None => return Err(FrameError::LengthOverflow { payload_len }),
    };
    if have < need {
        return Err(FrameError::Truncated { need, have });
    }
    if have > need {
        return Err(FrameError::TrailingBytes { extra: have - need });
    }
    // Structure is sound; payload_len fits in usize because the whole frame
    // is already resident in memory.
    let body_end = FRAME_HEADER_BYTES + payload_len as usize;
    let expected = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    let got = crc64(&bytes[..body_end]);
    if got != expected {
        return Err(FrameError::Corrupt { expected, got });
    }
    Ok((count, &bytes[FRAME_HEADER_BYTES..body_end]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SplitMix64;

    #[test]
    fn roundtrips() {
        for len in [0usize, 1, 7, 256, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let frame = encode(len as u64 / 3, &payload);
            assert_eq!(frame.len(), FRAME_HEADER_BYTES + len + FRAME_TRAILER_BYTES);
            let (count, body) = decode(&frame).expect("clean frame decodes");
            assert_eq!(count, len as u64 / 3);
            assert_eq!(body, payload.as_slice());
        }
    }

    #[test]
    fn rejects_truncation_extension_and_overflow() {
        let frame = encode(3, &[1, 2, 3, 4, 5]);
        assert!(matches!(
            decode(&frame[..frame.len() - 1]),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&frame[..4]),
            Err(FrameError::Truncated { .. })
        ));
        let mut long = frame.clone();
        long.push(0);
        assert!(matches!(
            decode(&long),
            Err(FrameError::TrailingBytes { extra: 1 })
        ));
        // A hostile length near u64::MAX must not wrap the bounds check.
        let mut hostile = frame.clone();
        hostile[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(&hostile),
            Err(FrameError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode(2, b"integrity matters");
        for bit in 0..frame.len() * 8 {
            let mut dam = frame.clone();
            dam[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode(&dam).is_err(),
                "bit flip at {bit} decoded successfully"
            );
        }
    }

    /// Fuzz-style seeded hammering alongside the batch-bytes pin test:
    /// random blobs, random truncations and random flips must never panic
    /// and never validate as the original frame.
    #[test]
    fn fuzz_decode_never_panics() {
        let mut rng = SplitMix64::new(0x5DC_F4A2);
        let payload: Vec<u8> = (0..500).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let frame = encode(17, &payload);
        for _ in 0..2000 {
            let mut blob = frame.clone();
            match rng.next_u64() % 3 {
                0 => {
                    let cut = (rng.next_u64() as usize) % (blob.len() + 1);
                    blob.truncate(cut);
                }
                1 => {
                    let flips = 1 + rng.next_u64() % 4;
                    for _ in 0..flips {
                        let bit = (rng.next_u64() as usize) % (blob.len() * 8);
                        blob[bit / 8] ^= 1 << (bit % 8);
                    }
                }
                _ => {
                    let len = (rng.next_u64() as usize) % 64;
                    blob = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
                }
            }
            if blob == frame {
                continue; // flips cancelled out — genuinely clean
            }
            if let Ok((count, body)) = decode(&blob) {
                // A 64-bit CRC collision within 2000 structured mutations
                // would be astronomically unlikely; treat it as failure.
                panic!("damaged frame validated: count={count}, len={}", body.len());
            }
        }
        // And the pristine frame still decodes after all that.
        assert!(decode(&frame).is_ok());
    }
}
