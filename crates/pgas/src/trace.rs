//! Structured runtime tracing: span-style timers feeding a bounded event
//! ring.
//!
//! The observability substrate of the runtime. [`Bsp::superstep`] records one
//! event per superstep — wall-clock duration, point-to-point and bulk message
//! counts and bytes — and any other layer can open ad-hoc [`Span`]s against
//! the same log. Storage is a fixed-capacity [`EventRing`] from the shared
//! telemetry crate, so a week-long run cannot grow an unbounded trace: the
//! ring keeps the most recent [`Trace::capacity`] events and counts the rest
//! in [`Trace::dropped_events`]. Timestamps come from the workspace-wide
//! [`MonotonicClock`] helper rather than per-call-site `Instant` bookkeeping.
//!
//! Volume accounting is decoupled from event storage: [`Trace::finish`]
//! accumulates cumulative span counts and communication volume whenever the
//! trace is runtime-enabled — even in builds without the `trace` cargo
//! feature, and even after ring wraparound — so [`Trace::total_volume`]
//! never silently reads zero.
//!
//! Everything stays off the hot path: with tracing disabled (the default)
//! the per-superstep cost is a single branch, and the `trace` cargo feature
//! removes even that at compile time.
//!
//! [`Bsp::superstep`]: crate::bsp::Bsp::superstep

use simcov_telemetry::{EventRing, MonotonicClock};

/// Default event-ring retention; see [`Trace::with_capacity`].
pub const DEFAULT_TRACE_CAPACITY: usize = 16 * 1024;

/// One finished span in the event log. Times are nanoseconds relative to the
/// trace origin, so events from one trace are directly comparable and
/// serialize compactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (0, 1, 2, ... in completion order).
    pub seq: u64,
    /// What this span measured (e.g. `"superstep"`).
    pub label: &'static str,
    /// Start offset from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub wall_ns: u64,
    /// Point-to-point messages attributed to this span.
    pub messages: u64,
    /// Point-to-point payload bytes attributed to this span.
    pub bytes: u64,
    /// Aggregated bulk messages attributed to this span.
    pub bulk_messages: u64,
    /// Bulk payload bytes attributed to this span.
    pub bulk_bytes: u64,
}

/// An open span: created by [`Trace::span`], closed by [`Trace::finish`] (or
/// dropped without recording when tracing is disabled).
#[derive(Debug)]
pub struct Span {
    label: &'static str,
    start_ns: Option<u64>,
}

impl Span {
    /// A span that records no timing when finished (volume still counts if
    /// the trace is enabled).
    pub fn disabled(label: &'static str) -> Self {
        Span {
            label,
            start_ns: None,
        }
    }
}

/// A monotonic event log over a bounded ring, with cumulative volume
/// counters that survive ring wraparound.
///
/// Disabled traces record nothing and allocate nothing; `Trace::default()`
/// is disabled so embedding a `Trace` in runtime structs costs one bool on
/// the hot path.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    clock: Option<MonotonicClock>,
    ring: Option<EventRing<TraceEvent>>,
    capacity: usize,
    seq: u64,
    /// Cumulative volume over every finished span, ring drops included.
    volume: SpanVolume,
    /// Cumulative wall nanoseconds over every *timed* finished span.
    wall_ns_total: u64,
    /// Count of finished spans (timed or not), ring drops included.
    finished: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace whose origin is "now", with default ring capacity.
    pub fn enabled() -> Self {
        let mut t = Trace::default();
        t.enable();
        t
    }

    /// An enabled trace retaining at most `capacity` events (rounded up to a
    /// power of two).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut t = Trace {
            capacity,
            ..Trace::default()
        };
        t.enable();
        t
    }

    /// Whether spans record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on (idempotent; the origin is set on first enable).
    pub fn enable(&mut self) {
        self.enabled = true;
        if self.clock.is_none() {
            self.clock = Some(MonotonicClock::new());
        }
        if self.ring.is_none() {
            let cap = if self.capacity == 0 {
                DEFAULT_TRACE_CAPACITY
            } else {
                self.capacity
            };
            let ring = EventRing::new(cap);
            self.capacity = ring.capacity();
            self.ring = Some(ring);
        }
    }

    /// Ring retention capacity (0 while disabled and never enabled).
    pub fn capacity(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.capacity())
    }

    /// Events lost to ring wraparound (their volume is still counted).
    pub fn dropped_events(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.dropped())
    }

    /// Total spans finished while enabled, including any whose events were
    /// later dropped from the ring.
    pub fn finished_spans(&self) -> u64 {
        self.finished
    }

    /// Open a span. Cheap no-op (no clock read) when disabled.
    pub fn span(&self, label: &'static str) -> Span {
        match (self.enabled, &self.clock) {
            (true, Some(clock)) => Span {
                label,
                start_ns: Some(clock.now_ns()),
            },
            _ => Span::disabled(label),
        }
    }

    /// Close a span, attributing communication volume to it.
    ///
    /// Volume and span counts accumulate whenever the trace is enabled —
    /// even for untimed spans (builds without the `trace` feature open them
    /// via [`Span::disabled`]) — so counters never silently read zero. A
    /// ring event with timing is recorded only for spans opened while
    /// enabled.
    pub fn finish(&mut self, span: Span, volume: SpanVolume) {
        if !self.enabled {
            return;
        }
        self.volume.messages += volume.messages;
        self.volume.bytes += volume.bytes;
        self.volume.bulk_messages += volume.bulk_messages;
        self.volume.bulk_bytes += volume.bulk_bytes;
        self.finished += 1;
        let (Some(start_ns), Some(clock), Some(ring)) = (span.start_ns, &self.clock, &self.ring)
        else {
            return;
        };
        let wall_ns = clock.now_ns().saturating_sub(start_ns);
        self.wall_ns_total += wall_ns;
        let seq = self.seq;
        self.seq += 1;
        ring.push(TraceEvent {
            seq,
            label: span.label,
            start_ns,
            wall_ns,
            messages: volume.messages,
            bytes: volume.bytes,
            bulk_messages: volume.bulk_messages,
            bulk_bytes: volume.bulk_bytes,
        });
    }

    /// The retained event log, in completion order (oldest first). After
    /// ring wraparound this is the most recent [`Trace::capacity`] events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.as_ref().map_or_else(Vec::new, |r| r.snapshot())
    }

    /// Retained events recorded under one label.
    pub fn events_for(&self, label: &'static str) -> impl Iterator<Item = TraceEvent> {
        self.events().into_iter().filter(move |e| e.label == label)
    }

    /// Cumulative `(messages + bulk_messages, bytes + bulk_bytes)` over all
    /// finished spans — comparable against [`crate::CommCounters`] totals.
    /// Maintained outside the ring, so wraparound and feature-gated builds
    /// never zero it.
    pub fn total_volume(&self) -> SpanVolume {
        self.volume
    }

    /// Total wall-clock nanoseconds across all timed spans.
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns_total
    }
}

/// Communication volume attributed to a span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanVolume {
    pub messages: u64,
    pub bytes: u64,
    pub bulk_messages: u64,
    pub bulk_bytes: u64,
}

impl SpanVolume {
    pub fn new(messages: u64, bytes: u64, bulk_messages: u64, bulk_bytes: u64) -> Self {
        SpanVolume {
            messages,
            bytes,
            bulk_messages,
            bulk_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        let s = t.span("superstep");
        t.finish(s, SpanVolume::new(10, 100, 1, 50));
        assert!(t.events().is_empty());
        assert_eq!(t.total_volume(), SpanVolume::default());
        assert_eq!(t.finished_spans(), 0);
    }

    #[test]
    fn enabled_trace_is_monotonic() {
        let mut t = Trace::enabled();
        for i in 0..5u64 {
            let s = t.span("superstep");
            std::thread::sleep(std::time::Duration::from_micros(50));
            t.finish(s, SpanVolume::new(i, i * 8, 0, 0));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 5);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert!(e.wall_ns > 0, "span must have measured time");
        }
        // Completion order implies non-decreasing start offsets here (spans
        // are sequential).
        for w in evs.windows(2) {
            assert!(w[1].start_ns >= w[0].start_ns);
        }
        let v = t.total_volume();
        assert_eq!(v.messages, 1 + 2 + 3 + 4);
        assert_eq!(v.bytes, (1 + 2 + 3 + 4) * 8);
        assert!(t.total_wall_ns() > 0);
    }

    #[test]
    fn enable_is_idempotent_and_late() {
        let mut t = Trace::disabled();
        let s = t.span("early");
        t.finish(s, SpanVolume::default());
        assert!(t.events().is_empty(), "pre-enable spans are dropped");
        t.enable();
        t.enable();
        let s = t.span("late");
        t.finish(s, SpanVolume::new(1, 2, 3, 4));
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].label, "late");
    }

    #[test]
    fn label_filter() {
        let mut t = Trace::enabled();
        for label in ["a", "b", "a"] {
            let s = t.span(label);
            t.finish(s, SpanVolume::default());
        }
        assert_eq!(t.events_for("a").count(), 2);
        assert_eq!(t.events_for("b").count(), 1);
        assert_eq!(t.events_for("c").count(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_cumulative_volume() {
        let mut t = Trace::with_capacity(4);
        assert_eq!(t.capacity(), 4);
        for i in 0..10u64 {
            let s = t.span("superstep");
            t.finish(s, SpanVolume::new(1, 8, 0, 0));
            let _ = i;
        }
        assert_eq!(t.events().len(), 4, "ring retains the most recent events");
        assert_eq!(t.dropped_events(), 6);
        assert_eq!(t.finished_spans(), 10);
        // Volume is cumulative across drops: counters never read low.
        assert_eq!(t.total_volume(), SpanVolume::new(10, 80, 0, 0));
        let evs = t.events();
        assert_eq!(evs[0].seq, 6, "oldest retained event after wrap");
        assert_eq!(evs[3].seq, 9);
    }

    #[test]
    fn untimed_spans_still_count_volume() {
        // Builds without the `trace` feature open spans via
        // `Span::disabled`: no ring event, but volume must still land.
        let mut t = Trace::enabled();
        t.finish(Span::disabled("superstep"), SpanVolume::new(3, 24, 1, 9));
        assert!(t.events().is_empty());
        assert_eq!(t.finished_spans(), 1);
        assert_eq!(t.total_volume(), SpanVolume::new(3, 24, 1, 9));
    }
}
