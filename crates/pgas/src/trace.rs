//! Structured runtime tracing: span-style timers feeding a monotonic event
//! log.
//!
//! The observability substrate of the runtime. [`Bsp::superstep`] records one
//! event per superstep — wall-clock duration, point-to-point and bulk message
//! counts and bytes — and any other layer can open ad-hoc [`Span`]s against
//! the same log. Everything is zero-dependency and stays off the hot path:
//! with tracing disabled (the default) the per-superstep cost is a single
//! branch, and the `trace` cargo feature removes even that at compile time.
//!
//! [`Bsp::superstep`]: crate::bsp::Bsp::superstep

use std::time::Instant;

/// One finished span in the event log. Times are nanoseconds relative to the
/// trace origin, so events from one trace are directly comparable and
/// serialize compactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (0, 1, 2, ... in completion order).
    pub seq: u64,
    /// What this span measured (e.g. `"superstep"`).
    pub label: &'static str,
    /// Start offset from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub wall_ns: u64,
    /// Point-to-point messages attributed to this span.
    pub messages: u64,
    /// Point-to-point payload bytes attributed to this span.
    pub bytes: u64,
    /// Aggregated bulk messages attributed to this span.
    pub bulk_messages: u64,
    /// Bulk payload bytes attributed to this span.
    pub bulk_bytes: u64,
}

/// An open span: created by [`Trace::span`], closed by [`Trace::finish`] (or
/// dropped without recording when tracing is disabled).
#[derive(Debug)]
pub struct Span {
    label: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// A span that records nothing when finished.
    pub fn disabled(label: &'static str) -> Self {
        Span { label, start: None }
    }
}

/// A monotonic event log with an origin instant.
///
/// Disabled traces record nothing and allocate nothing; `Trace::default()`
/// is disabled so embedding a `Trace` in runtime structs costs one bool on
/// the hot path.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    origin: Option<Instant>,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace whose origin is "now".
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            origin: Some(Instant::now()),
            events: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on (idempotent; the origin is set on first enable).
    pub fn enable(&mut self) {
        self.enabled = true;
        if self.origin.is_none() {
            self.origin = Some(Instant::now());
        }
    }

    /// Open a span. Cheap no-op (no clock read) when disabled.
    pub fn span(&self, label: &'static str) -> Span {
        if !self.enabled {
            return Span::disabled(label);
        }
        Span {
            label,
            start: Some(Instant::now()),
        }
    }

    /// Close a span, attributing communication volume to it. No-op for
    /// spans opened while the trace was disabled.
    pub fn finish(&mut self, span: Span, volume: SpanVolume) {
        let (Some(start), Some(origin)) = (span.start, self.origin) else {
            return;
        };
        let seq = self.events.len() as u64;
        self.events.push(TraceEvent {
            seq,
            label: span.label,
            start_ns: start.duration_since(origin).as_nanos() as u64,
            wall_ns: start.elapsed().as_nanos() as u64,
            messages: volume.messages,
            bytes: volume.bytes,
            bulk_messages: volume.bulk_messages,
            bulk_bytes: volume.bulk_bytes,
        });
    }

    /// The full event log, in completion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events recorded under one label.
    pub fn events_for<'a>(
        &'a self,
        label: &'static str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Sum of `(messages + bulk_messages, bytes + bulk_bytes)` over all
    /// events — comparable against [`crate::CommCounters`] totals.
    pub fn total_volume(&self) -> SpanVolume {
        let mut v = SpanVolume::default();
        for e in &self.events {
            v.messages += e.messages;
            v.bytes += e.bytes;
            v.bulk_messages += e.bulk_messages;
            v.bulk_bytes += e.bulk_bytes;
        }
        v
    }

    /// Total wall-clock nanoseconds across all recorded spans.
    pub fn total_wall_ns(&self) -> u64 {
        self.events.iter().map(|e| e.wall_ns).sum()
    }
}

/// Communication volume attributed to a span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanVolume {
    pub messages: u64,
    pub bytes: u64,
    pub bulk_messages: u64,
    pub bulk_bytes: u64,
}

impl SpanVolume {
    pub fn new(messages: u64, bytes: u64, bulk_messages: u64, bulk_bytes: u64) -> Self {
        SpanVolume {
            messages,
            bytes,
            bulk_messages,
            bulk_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        let s = t.span("superstep");
        t.finish(s, SpanVolume::new(10, 100, 1, 50));
        assert!(t.events().is_empty());
        assert_eq!(t.total_volume(), SpanVolume::default());
    }

    #[test]
    fn enabled_trace_is_monotonic() {
        let mut t = Trace::enabled();
        for i in 0..5u64 {
            let s = t.span("superstep");
            std::thread::sleep(std::time::Duration::from_micros(50));
            t.finish(s, SpanVolume::new(i, i * 8, 0, 0));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 5);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert!(e.wall_ns > 0, "span must have measured time");
        }
        // Completion order implies non-decreasing start offsets here (spans
        // are sequential).
        for w in evs.windows(2) {
            assert!(w[1].start_ns >= w[0].start_ns);
        }
        let v = t.total_volume();
        assert_eq!(v.messages, 1 + 2 + 3 + 4);
        assert_eq!(v.bytes, (1 + 2 + 3 + 4) * 8);
        assert!(t.total_wall_ns() > 0);
    }

    #[test]
    fn enable_is_idempotent_and_late() {
        let mut t = Trace::disabled();
        let s = t.span("early");
        t.finish(s, SpanVolume::default());
        assert!(t.events().is_empty(), "pre-enable spans are dropped");
        t.enable();
        t.enable();
        let s = t.span("late");
        t.finish(s, SpanVolume::new(1, 2, 3, 4));
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].label, "late");
    }

    #[test]
    fn label_filter() {
        let mut t = Trace::enabled();
        for label in ["a", "b", "a"] {
            let s = t.span(label);
            t.finish(s, SpanVolume::default());
        }
        assert_eq!(t.events_for("a").count(), 2);
        assert_eq!(t.events_for("b").count(), 1);
        assert_eq!(t.events_for("c").count(), 0);
    }
}
