//! Process transport: ranks' mailboxes held by real OS worker processes.
//!
//! The default [`crate::Bsp`] path exchanges coalesced batches through
//! in-process double-buffered mailboxes — fast, but every "rank death" is
//! simulated. This module adds the second transport the paper's UPC++ layer
//! implies: each rank is backed by a **worker process** (forked, or exec'd
//! as `simcov --rank-worker`) that holds the rank's in-flight inbox frames,
//! reached over localhost TCP sockets. Killing a worker is a genuine crash:
//! its sockets reset, its retained frames are gone, and the parent discovers
//! the loss the way a distributed runtime does — at the barrier.
//!
//! # Wire protocol
//!
//! Every socket message is `[kind: u8][aux: u64][len: u64][body]` (little
//! endian). The parent drives; workers only ever reply to `FLUSH`:
//!
//! | kind  | direction | aux       | body                                  |
//! |-------|-----------|-----------|---------------------------------------|
//! | HELLO | w → p     | rank      | session token (8 bytes)               |
//! | BEGIN | p → w     | superstep | — (worker drops retained frames)      |
//! | PUT   | p → w     | src rank  | one CRC64-sealed batch frame          |
//! | FLUSH | p → w     | nonce     | — (worker replies INBOX)              |
//! | INBOX | w → p     | nonce     | `[n][src u64][frame]*`, ascending src |
//! | STALL | p → w     | ns        | — (worker sleeps before next reply)   |
//! | EXIT  | p → w     | —         | —                                     |
//!
//! A batch frame is exactly [`crate::mailbox::frame`]'s sealed layout with
//! the bucket's messages encoded via [`WireCodec`]; the INBOX body carries
//! no per-frame length because frames are self-delimiting (parsed with the
//! partial-read-hardened [`frame::read_frame`]).
//!
//! # Superstep round trip
//!
//! Rank compute stays in the parent (that is what keeps the recovered
//! trajectory bitwise identical to the in-process run); what crosses the
//! wire is the *entire barrier exchange*. Per superstep the parent sends
//! `BEGIN`, `PUT`s each non-empty (src, dst) bucket to dst's worker,
//! `FLUSH`es, and decodes each worker's `INBOX` back into the very outbox
//! buckets the logical exchange then delivers — so a frame garbled or lost
//! on the wire really does corrupt or lose the delivered messages unless
//! the retry machinery heals it.
//!
//! # Deadlines, retry, and failure classification
//!
//! Every connection carries read/write deadlines. A `FLUSH` whose reply
//! misses the read deadline (with zero bytes consumed) is retried with
//! exponential backoff — `FLUSH` is idempotent because workers retain their
//! frames until the next `BEGIN`, so a re-`FLUSH` *is* the retransmit path.
//! A garbled or short inbox is likewise re-requested. At the barrier each
//! peer is classified:
//!
//! - **closed** (EOF / reset / broken pipe) → the worker crashed → its rank
//!   joins [`SuperstepFailure::dead_ranks`];
//! - **timed out** (deadline + retry budget exhausted, or a deadline struck
//!   mid-message where the stream can no longer be re-framed) → likewise;
//! - **garbage frame** beyond the retry budget → an
//!   [`IntegrityFailure`](crate::fault::IntegrityFailure), the same typed
//!   escalation an unhealed in-process corruption takes.
//!
//! Either way the driver's existing ladder (retransmit → rollback → elastic
//! re-partition) takes over, and [`ExchangeTransport::rebuilt`] respawns a
//! fresh worker set for the surviving rank count — or degrades gracefully
//! back to the in-process path if respawning fails.
//!
//! [`SuperstepFailure::dead_ranks`]: crate::fault::SuperstepFailure

use crate::mailbox::frame::{self, FrameStreamError};
use crate::mailbox::Outbox;
use crate::wire::{decode_bucket, encode_bucket, WireCodec, WireWrite};
use simcov_telemetry::WireStats;
use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const MSG_HELLO: u8 = 1;
const MSG_BEGIN: u8 = 2;
const MSG_PUT: u8 = 3;
const MSG_FLUSH: u8 = 4;
const MSG_INBOX: u8 = 5;
const MSG_STALL: u8 = 6;
const MSG_EXIT: u8 = 7;

/// `[kind][aux][len]` framing of every socket message.
const MSG_HEADER_BYTES: usize = 17;

/// Upper bound on any single socket message body or frame payload; a
/// hostile or corrupted length field can never drive a larger allocation.
const MAX_BODY_BYTES: u64 = 1 << 30;

/// Stale `INBOX` replies tolerated while hunting the current nonce before
/// the peer is declared protocol-broken.
const MAX_STALE_REPLIES: u32 = 64;

const SIGKILL: i32 = 9;

extern "C" {
    fn fork() -> i32;
    fn kill(pid: i32, sig: i32) -> i32;
    fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
    fn _exit(code: i32) -> !;
}

/// How worker processes come to exist.
#[derive(Clone, Debug)]
pub enum SpawnMode {
    /// `fork()` without exec: the child runs [`run_rank_worker`] directly.
    /// The right mode for library use and tests — nothing about the host
    /// binary's CLI is assumed.
    Fork,
    /// Spawn `program [args…] --rank-worker --connect A --rank N --token T`.
    /// The `simcov` CLI uses this with its own executable path.
    Exec {
        program: std::path::PathBuf,
        args: Vec<String>,
    },
}

/// One scheduled wire-level fault (distinct from the logical
/// [`FaultPlan`](crate::fault::FaultPlan), whose events keep their exact
/// in-process semantics and counters under this transport).
#[derive(Clone, Debug)]
pub struct WireFault {
    /// Global superstep index the fault fires at.
    pub superstep: u64,
    /// Destination rank (interpreted modulo the current rank count).
    pub rank: usize,
    pub kind: WireFaultKind,
}

/// What strikes the wire.
#[derive(Clone, Debug)]
pub enum WireFaultKind {
    /// SIGKILL the rank's worker process at the start of the barrier —
    /// a *real* crash the parent only discovers through its sockets.
    KillWorker,
    /// XOR one seeded bit into the received inbox bytes. `sticky` garbles
    /// every retry too, exhausting the budget into a typed integrity
    /// failure; otherwise the first re-`FLUSH` heals it.
    GarbleInbox { seed: u64, sticky: bool },
    /// Discard the received inbox once, forcing a deadline-free retransmit.
    DropInbox,
    /// Make the worker sleep `stall_ns` before its next reply; longer than
    /// the full deadline × retry budget, this classifies the peer as timed
    /// out.
    StallPeer { stall_ns: u64 },
}

/// Deterministic schedule of wire faults, consumed as supersteps pass.
#[derive(Clone, Debug, Default)]
pub struct WireFaultPlan {
    events: Vec<WireFault>,
}

impl WireFaultPlan {
    pub fn none() -> Self {
        Self::default()
    }

    pub fn push(&mut self, fault: WireFault) {
        self.events.push(fault);
    }

    pub fn kill_worker(mut self, superstep: u64, rank: usize) -> Self {
        self.events.push(WireFault {
            superstep,
            rank,
            kind: WireFaultKind::KillWorker,
        });
        self
    }

    pub fn garble(mut self, superstep: u64, rank: usize, seed: u64, sticky: bool) -> Self {
        self.events.push(WireFault {
            superstep,
            rank,
            kind: WireFaultKind::GarbleInbox { seed, sticky },
        });
        self
    }

    pub fn drop_inbox(mut self, superstep: u64, rank: usize) -> Self {
        self.events.push(WireFault {
            superstep,
            rank,
            kind: WireFaultKind::DropInbox,
        });
        self
    }

    pub fn stall(mut self, superstep: u64, rank: usize, stall_ns: u64) -> Self {
        self.events.push(WireFault {
            superstep,
            rank,
            kind: WireFaultKind::StallPeer { stall_ns },
        });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn due_kills(&mut self, superstep: u64, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.events.retain(|ev| {
            if ev.superstep == superstep && matches!(ev.kind, WireFaultKind::KillWorker) {
                out.push(ev.rank % n);
                false
            } else {
                true
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    fn due_for_peer(&mut self, superstep: u64, dst: usize, n: usize) -> PeerFaults {
        let mut due = PeerFaults::default();
        self.events.retain(|ev| {
            if ev.superstep != superstep || ev.rank % n != dst {
                return true;
            }
            match ev.kind {
                WireFaultKind::GarbleInbox { seed, sticky } => due.garble = Some((seed, sticky)),
                WireFaultKind::DropInbox => due.drop_once = true,
                WireFaultKind::StallPeer { stall_ns } => due.stall_ns = Some(stall_ns),
                WireFaultKind::KillWorker => return true, // handled up front
            }
            false
        });
        due
    }
}

#[derive(Default)]
struct PeerFaults {
    garble: Option<(u64, bool)>,
    drop_once: bool,
    stall_ns: Option<u64>,
}

/// Socket/process tuning for the transport. Retry semantics deliberately
/// mirror the driver's `RecoveryPolicy`: a bounded retry count with
/// exponential backoff `base << (attempt - 1)`.
#[derive(Clone, Debug)]
pub struct ProcessTransportConfig {
    pub spawn: SpawnMode,
    /// Per-connection read deadline (one `FLUSH` → `INBOX` wait).
    pub read_timeout_ns: u64,
    /// Per-connection write deadline.
    pub write_timeout_ns: u64,
    /// Delivery attempts beyond the first before a peer is classified.
    pub max_retries: u32,
    /// Exponential backoff base between retries.
    pub backoff_base_ns: u64,
    /// Worker handshake deadline at spawn/respawn.
    pub handshake_timeout_ns: u64,
    /// Deterministic wire-fault schedule (empty by default).
    pub wire_faults: WireFaultPlan,
}

impl ProcessTransportConfig {
    /// Fork-mode defaults: 1 s deadlines, 8 retries, 1 ms backoff base —
    /// the same retry/backoff shape as `RecoveryPolicy::default()`.
    pub fn forked() -> Self {
        ProcessTransportConfig {
            spawn: SpawnMode::Fork,
            read_timeout_ns: 1_000_000_000,
            write_timeout_ns: 1_000_000_000,
            max_retries: 8,
            backoff_base_ns: 1_000_000,
            handshake_timeout_ns: 10_000_000_000,
            wire_faults: WireFaultPlan::none(),
        }
    }

    /// Exec-mode defaults over a worker program (usually `current_exe()`).
    pub fn exec(program: std::path::PathBuf) -> Self {
        ProcessTransportConfig {
            spawn: SpawnMode::Exec {
                program,
                args: Vec::new(),
            },
            ..Self::forked()
        }
    }

    pub fn with_deadlines(mut self, read_ns: u64, write_ns: u64) -> Self {
        self.read_timeout_ns = read_ns;
        self.write_timeout_ns = write_ns;
        self
    }

    pub fn with_retry(mut self, max_retries: u32, backoff_base_ns: u64) -> Self {
        self.max_retries = max_retries;
        self.backoff_base_ns = backoff_base_ns;
        self
    }

    pub fn with_wire_faults(mut self, plan: WireFaultPlan) -> Self {
        self.wire_faults = plan;
        self
    }
}

/// Which transport a simulation's BSP runtime exchanges through. The
/// executor configs accept this so callers pick per run; trajectories are
/// bitwise identical either way.
#[derive(Clone, Debug, Default)]
pub enum TransportMode {
    /// In-process double-buffered mailboxes (the default).
    #[default]
    InProcess,
    /// One worker process per rank over local sockets.
    Process(ProcessTransportConfig),
}

/// Aggregate wire-side counters. Strictly separate from
/// [`CommCounters`](crate::CommCounters): logical volume metering is
/// transport-invariant (that is what keeps step records bitwise identical
/// across transports), while everything here is wire overhead.
#[derive(Clone, Debug, Default)]
pub struct TransportCounters {
    pub frames_sent: u64,
    pub frames_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Inbox deliveries re-requested after a garbled or dropped reply.
    pub wire_retransmits: u64,
    /// Read-deadline expiries that were retried.
    pub deadline_retries: u64,
    /// Peers whose socket closed under the parent (worker crashed).
    pub peers_closed: u64,
    /// Peers that exhausted the deadline retry budget.
    pub peers_timed_out: u64,
    pub workers_spawned: u64,
    pub workers_respawned: u64,
    /// Times the runtime fell back to the in-process path because a worker
    /// set could not be (re)spawned.
    pub degraded: u64,
    /// Per-connection statistics, one entry per current peer.
    pub per_peer: Vec<WireStats>,
}

/// What one barrier round trip concluded about the peer set.
#[derive(Clone, Debug, Default)]
pub struct WireOutcome {
    /// Ranks whose worker is gone (closed or timed out), ascending.
    pub dead_peers: Vec<usize>,
    /// Ranks whose inbox stayed garbage past the retry budget, ascending.
    pub unhealed_garbled: Vec<usize>,
}

/// The transport seam [`crate::Bsp`] drives when a process transport is
/// attached. The in-process mailbox path is the `None` side of the seam;
/// implementations of this trait put a real wire (and a real failure
/// domain) under the same exchange.
pub trait ExchangeTransport<M>: Send {
    /// Ship every non-empty outbox bucket to its destination worker and
    /// read back what the workers actually hold, replacing the buckets with
    /// the round-tripped contents. Never fails outright: per-peer faults
    /// are classified in the returned [`WireOutcome`].
    fn round_trip(&mut self, superstep: u64, outboxes: &mut [Outbox<M>]) -> WireOutcome;

    /// SIGKILL a rank's worker (the logical `RankDeath` fault becomes a
    /// real crash under this transport). Returns whether a live worker was
    /// there to kill.
    fn kill_rank(&mut self, rank: usize) -> bool;

    /// Replace the worker set for a rebuilt domain of `n_ranks`. Returning
    /// `false` means the transport could not re-establish itself; the
    /// caller degrades to the in-process path.
    fn rebuilt(&mut self, n_ranks: usize) -> bool;

    /// Current wire counters (cumulative across rebuilds).
    fn counters(&self) -> TransportCounters;
}

enum WorkerPid {
    Forked(i32),
    Spawned(std::process::Child),
    Reaped,
}

struct Worker {
    pid: WorkerPid,
    stream: Option<TcpStream>,
}

impl Worker {
    /// SIGKILL and reap. Idempotent; drops the stream so subsequent I/O
    /// classifies the peer as closed.
    fn kill(&mut self) {
        match std::mem::replace(&mut self.pid, WorkerPid::Reaped) {
            WorkerPid::Forked(pid) => unsafe {
                kill(pid, SIGKILL);
                waitpid(pid, std::ptr::null_mut(), 0);
            },
            WorkerPid::Spawned(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            WorkerPid::Reaped => {}
        }
        self.stream = None;
    }
}

/// Socket-backed [`ExchangeTransport`] over one worker process per rank.
pub struct ProcessTransport<M> {
    cfg: ProcessTransportConfig,
    n_ranks: usize,
    listener: TcpListener,
    addr: String,
    token: u64,
    workers: Vec<Worker>,
    nonce: u64,
    counters: TransportCounters,
    _msg: PhantomData<fn() -> M>,
}

/// Why a deadline-bounded read gave up.
enum ReadFailure {
    /// EOF / reset / broken pipe: the peer process is gone.
    Closed,
    /// Deadline expired with zero bytes consumed — the stream is still
    /// aligned on a message boundary, so a retry is safe.
    TimedOutClean,
    /// Deadline expired mid-message: the stream can no longer be framed.
    TimedOutDirty,
    /// Anything else — an unclassifiable I/O error or a protocol violation
    /// (fatal for the peer either way).
    Protocol,
}

fn classify_io(e: io::Error) -> ReadFailure {
    match e.kind() {
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => ReadFailure::Closed,
        _ => ReadFailure::Protocol,
    }
}

/// Fill `buf` under the stream's read deadline, distinguishing a clean
/// zero-progress timeout from a mid-message one.
fn fill_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    consumed_any: bool,
) -> Result<(), ReadFailure> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadFailure::Closed),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(if filled == 0 && !consumed_any {
                    ReadFailure::TimedOutClean
                } else {
                    ReadFailure::TimedOutDirty
                });
            }
            Err(e) => return Err(classify_io(e)),
        }
    }
    Ok(())
}

/// Read one `[kind][aux][len][body]` message under the read deadline.
fn read_msg_deadline(stream: &mut TcpStream) -> Result<(u8, u64, Vec<u8>), ReadFailure> {
    let mut head = [0u8; MSG_HEADER_BYTES];
    fill_deadline(stream, &mut head, false)?;
    let kind = head[0];
    let aux = u64::from_le_bytes(head[1..9].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(head[9..17].try_into().expect("8 bytes"));
    if len > MAX_BODY_BYTES {
        return Err(ReadFailure::Protocol);
    }
    let mut body = vec![0u8; len as usize];
    fill_deadline(stream, &mut body, true)?;
    Ok((kind, aux, body))
}

fn write_msg(stream: &mut TcpStream, kind: u8, aux: u64, body: &[u8]) -> io::Result<()> {
    let mut head = [0u8; MSG_HEADER_BYTES];
    head[0] = kind;
    head[1..9].copy_from_slice(&aux.to_le_bytes());
    head[9..17].copy_from_slice(&(body.len() as u64).to_le_bytes());
    stream.write_all(&head)?;
    stream.write_all(body)?;
    Ok(())
}

/// Exponential backoff matching `RecoveryPolicy`: `base << (attempt - 1)`,
/// saturating.
fn backoff_ns(base: u64, attempt: u32) -> u64 {
    if attempt <= 1 {
        base
    } else {
        base.checked_shl(attempt - 1).unwrap_or(u64::MAX)
    }
}

/// A best-effort unique session token: workers echo it in `HELLO` so a
/// stray local connection cannot impersonate a rank.
fn session_token() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ (std::process::id() as u64).rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15
}

impl<M: WireCodec> ProcessTransport<M> {
    /// Bind the rendezvous socket and spawn one worker per rank.
    pub fn spawn(n_ranks: usize, cfg: ProcessTransportConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?.to_string();
        let mut t = ProcessTransport {
            cfg,
            n_ranks: 0,
            listener,
            addr,
            token: session_token(),
            workers: Vec::new(),
            nonce: 0,
            counters: TransportCounters::default(),
            _msg: PhantomData,
        };
        t.spawn_all(n_ranks)?;
        Ok(t)
    }

    /// Spawn `n` workers and complete their handshakes. All processes are
    /// created *before* any connection is accepted so no child inherits a
    /// duplicate of another worker's accepted socket — a SIGKILL must
    /// surface as EOF at the parent, and a stray inherited file descriptor
    /// would keep the dead worker's connection artificially open.
    fn spawn_all(&mut self, n: usize) -> io::Result<()> {
        let mut pids = Vec::with_capacity(n);
        for rank in 0..n {
            pids.push(self.spawn_one(rank)?);
        }
        self.counters.workers_spawned += n as u64;

        self.listener.set_nonblocking(true)?;
        let deadline = Instant::now() + Duration::from_nanos(self.cfg.handshake_timeout_ns);
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut accepted = 0;
        while accepted < n {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream
                        .set_read_timeout(Some(Duration::from_nanos(self.cfg.read_timeout_ns)))?;
                    stream
                        .set_write_timeout(Some(Duration::from_nanos(self.cfg.write_timeout_ns)))?;
                    let (kind, aux, body) = match read_msg_deadline(&mut stream) {
                        Ok(m) => m,
                        Err(_) => continue, // a broken dialer; keep waiting
                    };
                    let rank = aux as usize;
                    if kind != MSG_HELLO
                        || rank >= n
                        || body.len() != 8
                        || u64::from_le_bytes(body.try_into().expect("8 bytes")) != self.token
                        || streams[rank].is_some()
                    {
                        continue; // wrong token / duplicate rank: reject
                    }
                    streams[rank] = Some(stream);
                    accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        for pid in &mut pids {
                            Worker {
                                pid: std::mem::replace(pid, WorkerPid::Reaped),
                                stream: None,
                            }
                            .kill();
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("worker handshake: {accepted}/{n} ranks reported in time"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }

        self.workers = pids
            .into_iter()
            .zip(streams)
            .map(|(pid, stream)| Worker { pid, stream })
            .collect();
        self.n_ranks = n;
        self.counters.per_peer = (0..n).map(WireStats::new).collect();
        Ok(())
    }

    fn spawn_one(&self, rank: usize) -> io::Result<WorkerPid> {
        match &self.cfg.spawn {
            SpawnMode::Fork => {
                let pid = unsafe { fork() };
                if pid < 0 {
                    return Err(io::Error::last_os_error());
                }
                if pid == 0 {
                    // Child. Run the worker loop and leave via _exit so no
                    // parent-side destructors or test harness code runs in
                    // this process, whatever happens — including a panic.
                    let addr = self.addr.clone();
                    let token = self.token;
                    let code = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_rank_worker(&addr, rank, token)
                    }))
                    .map(|r| if r.is_ok() { 0 } else { 1 })
                    .unwrap_or(2);
                    unsafe { _exit(code) }
                }
                Ok(WorkerPid::Forked(pid))
            }
            SpawnMode::Exec { program, args } => {
                let child = std::process::Command::new(program)
                    .args(args)
                    .arg("--rank-worker")
                    .arg("--connect")
                    .arg(&self.addr)
                    .arg("--rank")
                    .arg(rank.to_string())
                    .arg("--token")
                    .arg(self.token.to_string())
                    .stdin(std::process::Stdio::null())
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null())
                    .spawn()?;
                Ok(WorkerPid::Spawned(child))
            }
        }
    }

    fn peer_stat(&mut self, dst: usize) -> &mut WireStats {
        &mut self.counters.per_peer[dst]
    }

    /// Mark a peer dead by closure and meter it (idempotent per peer).
    fn close_peer(&mut self, dst: usize) {
        if self.workers[dst].stream.take().is_some() {
            self.counters.peers_closed += 1;
            self.peer_stat(dst).alive = false;
        }
    }

    fn timeout_peer(&mut self, dst: usize) {
        if self.workers[dst].stream.take().is_some() {
            self.counters.peers_timed_out += 1;
            self.peer_stat(dst).alive = false;
        }
    }

    /// Send one message to a peer, classifying any failure as closure.
    /// Returns whether the peer is still usable.
    fn send_to(&mut self, dst: usize, kind: u8, aux: u64, body: &[u8]) -> bool {
        let Some(stream) = self.workers[dst].stream.as_mut() else {
            return false;
        };
        match write_msg(stream, kind, aux, body) {
            Ok(()) => {
                self.counters.bytes_sent += (MSG_HEADER_BYTES + body.len()) as u64;
                self.peer_stat(dst).bytes_sent += (MSG_HEADER_BYTES + body.len()) as u64;
                true
            }
            Err(_) => {
                self.close_peer(dst);
                false
            }
        }
    }

    /// Read `INBOX` replies until the current nonce appears, skipping stale
    /// replies left over from earlier deadline retries.
    fn read_inbox(&mut self, dst: usize, nonce: u64) -> Result<Vec<u8>, ReadFailure> {
        let Some(stream) = self.workers[dst].stream.as_mut() else {
            return Err(ReadFailure::Closed);
        };
        for _ in 0..MAX_STALE_REPLIES {
            let (kind, aux, body) = read_msg_deadline(stream)?;
            if kind != MSG_INBOX {
                return Err(ReadFailure::Protocol);
            }
            if aux == nonce {
                return Ok(body);
            }
            let _ = body; // stale reply from a timed-out FLUSH: discard
        }
        Err(ReadFailure::Protocol) // peer floods stale INBOX replies
    }

    /// Parse an `INBOX` body into per-source decoded buckets, enforcing the
    /// canonical ascending-src layout.
    fn parse_inbox(&self, body: &[u8]) -> Option<Vec<(usize, Vec<M>)>> {
        let mut cur: &[u8] = body;
        let mut count_buf = [0u8; 8];
        cur.read_exact(&mut count_buf).ok()?;
        let n_entries = u64::from_le_bytes(count_buf);
        if n_entries > self.n_ranks as u64 {
            return None;
        }
        let mut entries = Vec::with_capacity(n_entries as usize);
        let mut last_src: Option<usize> = None;
        for _ in 0..n_entries {
            let mut src_buf = [0u8; 8];
            cur.read_exact(&mut src_buf).ok()?;
            let src = u64::from_le_bytes(src_buf) as usize;
            if src >= self.n_ranks || last_src.is_some_and(|p| p >= src) {
                return None;
            }
            last_src = Some(src);
            let (count, payload) = match frame::read_frame(&mut cur, MAX_BODY_BYTES) {
                Ok(f) => f,
                Err(FrameStreamError::Io(_)) | Err(FrameStreamError::Frame(_)) => return None,
            };
            entries.push((src, decode_bucket::<M>(count, &payload)?));
        }
        if !cur.is_empty() {
            return None;
        }
        Some(entries)
    }
}

impl<M: WireCodec> ExchangeTransport<M> for ProcessTransport<M> {
    fn round_trip(&mut self, superstep: u64, outboxes: &mut [Outbox<M>]) -> WireOutcome {
        let n = self.n_ranks;
        debug_assert_eq!(outboxes.len(), n, "one outbox per rank");
        let mut outcome = WireOutcome::default();

        // Scheduled worker kills first: a crash "just before the barrier".
        let mut plan = std::mem::take(&mut self.cfg.wire_faults);
        for rank in plan.due_kills(superstep, n) {
            self.kill_rank(rank);
        }

        // BEGIN: workers drop frames retained from the previous superstep.
        for dst in 0..n {
            self.send_to(dst, MSG_BEGIN, superstep, &[]);
        }

        // PUT every non-empty (src, dst) bucket to dst's worker as one
        // sealed frame. Sources iterate ascending, matching the canonical
        // inbox order the worker reproduces.
        for (src, outbox) in outboxes.iter().enumerate().take(n) {
            for dst in 0..n {
                let bucket = outbox.bucket(dst);
                if bucket.is_empty() {
                    continue;
                }
                let payload = encode_bucket(bucket);
                let sealed = frame::encode(bucket.len() as u64, &payload);
                if self.send_to(dst, MSG_PUT, src as u64, &sealed) {
                    self.counters.frames_sent += 1;
                    self.peer_stat(dst).frames_sent += 1;
                }
            }
        }

        // FLUSH each peer and install what actually came back, healing
        // garbled/dropped/late replies through deadline + backoff retries.
        for dst in 0..n {
            if self.workers[dst].stream.is_none() {
                continue;
            }
            let faults = plan.due_for_peer(superstep, dst, n);
            let mut drop_once = faults.drop_once;
            let mut garble_pending = faults.garble.is_some();
            if let Some(ns) = faults.stall_ns {
                if !self.send_to(dst, MSG_STALL, ns, &[]) {
                    continue;
                }
            }

            let mut attempt: u32 = 0;
            loop {
                self.nonce += 1;
                let nonce = self.nonce;
                if !self.send_to(dst, MSG_FLUSH, nonce, &[]) {
                    break;
                }
                let mut retry = |this: &mut Self| -> bool {
                    attempt += 1;
                    if attempt > this.cfg.max_retries {
                        return false;
                    }
                    std::thread::sleep(Duration::from_nanos(backoff_ns(
                        this.cfg.backoff_base_ns,
                        attempt,
                    )));
                    true
                };
                match self.read_inbox(dst, nonce) {
                    Ok(mut body) => {
                        self.counters.bytes_received += (MSG_HEADER_BYTES + body.len()) as u64;
                        self.peer_stat(dst).bytes_received +=
                            (MSG_HEADER_BYTES + body.len()) as u64;
                        if drop_once {
                            // The reply evaporates on the wire: re-request.
                            drop_once = false;
                            self.counters.wire_retransmits += 1;
                            self.peer_stat(dst).retries += 1;
                            if retry(self) {
                                continue;
                            }
                            self.timeout_peer(dst);
                            break;
                        }
                        if let Some((seed, sticky)) = faults.garble {
                            if (sticky || garble_pending) && !body.is_empty() {
                                garble_pending = false;
                                let bit = seed % (body.len() as u64 * 8);
                                body[(bit / 8) as usize] ^= 1 << (bit % 8);
                            }
                        }
                        match self.parse_inbox(&body) {
                            Some(entries) => {
                                // Everything PUT must have come back; a
                                // missing source is indistinguishable from
                                // a damaged inbox and retries the same way.
                                let expected: Vec<usize> = (0..n)
                                    .filter(|&src| !outboxes[src].bucket(dst).is_empty())
                                    .collect();
                                let got: Vec<usize> = entries.iter().map(|(src, _)| *src).collect();
                                if expected != got {
                                    self.counters.wire_retransmits += 1;
                                    self.peer_stat(dst).retries += 1;
                                    if retry(self) {
                                        continue;
                                    }
                                    self.timeout_peer(dst);
                                    outcome.unhealed_garbled.push(dst);
                                    break;
                                }
                                for (src, msgs) in entries {
                                    self.counters.frames_received += 1;
                                    self.peer_stat(dst).frames_received += 1;
                                    outboxes[src].replace_bucket(dst, msgs);
                                }
                                break;
                            }
                            None => {
                                self.counters.wire_retransmits += 1;
                                self.peer_stat(dst).retries += 1;
                                if retry(self) {
                                    continue;
                                }
                                self.timeout_peer(dst);
                                outcome.unhealed_garbled.push(dst);
                                break;
                            }
                        }
                    }
                    Err(ReadFailure::TimedOutClean) => {
                        self.counters.deadline_retries += 1;
                        self.peer_stat(dst).retries += 1;
                        if retry(self) {
                            continue;
                        }
                        self.timeout_peer(dst);
                        break;
                    }
                    Err(ReadFailure::TimedOutDirty) => {
                        // Mid-message deadline: the stream cannot be
                        // re-framed, so the peer is lost however alive the
                        // process might be.
                        self.timeout_peer(dst);
                        break;
                    }
                    Err(ReadFailure::Closed) => {
                        self.close_peer(dst);
                        break;
                    }
                    Err(ReadFailure::Protocol) => {
                        self.close_peer(dst);
                        break;
                    }
                }
            }
        }
        self.cfg.wire_faults = plan;

        for (rank, w) in self.workers.iter().enumerate() {
            if w.stream.is_none() && !outcome.unhealed_garbled.contains(&rank) {
                outcome.dead_peers.push(rank);
            }
        }
        outcome.dead_peers.sort_unstable();
        outcome.unhealed_garbled.sort_unstable();
        outcome
    }

    fn kill_rank(&mut self, rank: usize) -> bool {
        if rank >= self.workers.len() {
            return false;
        }
        let had = matches!(
            self.workers[rank].pid,
            WorkerPid::Forked(_) | WorkerPid::Spawned(_)
        );
        self.workers[rank].kill();
        if had {
            self.peer_stat(rank).alive = false;
        }
        had
    }

    fn rebuilt(&mut self, n_ranks: usize) -> bool {
        for w in &mut self.workers {
            w.kill();
        }
        self.workers.clear();
        match self.spawn_all(n_ranks) {
            Ok(()) => {
                self.counters.workers_respawned += n_ranks as u64;
                true
            }
            Err(_) => {
                self.n_ranks = 0;
                self.counters.degraded += 1;
                false
            }
        }
    }

    fn counters(&self) -> TransportCounters {
        self.counters.clone()
    }
}

impl<M> Drop for ProcessTransport<M> {
    fn drop(&mut self) {
        // SIGKILL rather than a cooperative EXIT: a worker wedged writing
        // an INBOX nobody will read would block a graceful wait forever,
        // and the workers hold nothing durable.
        for w in &mut self.workers {
            w.kill();
        }
    }
}

/// Blocking read of one socket message (worker side: no deadlines — a
/// worker's life is bounded by its parent's socket).
fn worker_read_msg(stream: &mut TcpStream) -> io::Result<(u8, u64, Vec<u8>)> {
    let mut head = [0u8; MSG_HEADER_BYTES];
    stream.read_exact(&mut head)?;
    let kind = head[0];
    let aux = u64::from_le_bytes(head[1..9].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(head[9..17].try_into().expect("8 bytes"));
    if len > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized message body",
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok((kind, aux, body))
}

/// The worker process entry point: connect back to the parent, identify
/// (`HELLO` with the session token), then serve the frame-holder protocol
/// until `EXIT`, a protocol violation, or the parent's disappearance.
///
/// Exposed publicly so a host binary can implement
/// `--rank-worker --connect A --rank N --token T` (the `simcov` CLI does).
pub fn run_rank_worker(connect: &str, rank: usize, token: u64) -> io::Result<()> {
    let mut stream = TcpStream::connect(connect)?;
    stream.set_nodelay(true)?;
    write_msg(&mut stream, MSG_HELLO, rank as u64, &token.to_le_bytes())?;

    // Frames retained for the current superstep, by source rank. Retention
    // until the next BEGIN is what makes FLUSH idempotent — a re-FLUSH
    // after a lost or garbled reply is a genuine retransmission.
    let mut retained: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut pending_stall_ns: u64 = 0;
    loop {
        let (kind, aux, body) = match worker_read_msg(&mut stream) {
            Ok(m) => m,
            Err(_) => return Ok(()), // parent gone: nothing to clean up
        };
        match kind {
            MSG_BEGIN => retained.clear(),
            MSG_PUT => retained.push((aux, body)),
            MSG_STALL => pending_stall_ns = aux,
            MSG_FLUSH => {
                if pending_stall_ns > 0 {
                    std::thread::sleep(Duration::from_nanos(pending_stall_ns));
                    pending_stall_ns = 0;
                }
                retained.sort_by_key(|(src, _)| *src);
                let mut out = Vec::new();
                out.put_u64(retained.len() as u64);
                for (src, sealed) in &retained {
                    out.put_u64(*src);
                    out.extend_from_slice(sealed);
                }
                write_msg(&mut stream, MSG_INBOX, aux, &out)?;
            }
            MSG_EXIT => return Ok(()),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown message kind {kind}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::Outbox;

    fn staged(n: usize) -> Vec<Outbox<u64>> {
        let mut obs: Vec<Outbox<u64>> = (0..n).map(|_| Outbox::for_ranks(n)).collect();
        for (src, outbox) in obs.iter_mut().enumerate() {
            for dst in 0..n {
                if src != dst {
                    for k in 0..3u64 {
                        outbox.send(dst, (src as u64) * 1000 + (dst as u64) * 10 + k);
                    }
                }
            }
        }
        obs
    }

    fn fast_cfg() -> ProcessTransportConfig {
        ProcessTransportConfig::forked()
            .with_deadlines(500_000_000, 500_000_000)
            .with_retry(3, 100_000)
    }

    #[test]
    fn healthy_round_trip_is_lossless_and_bit_identical() {
        let n = 4;
        let mut t: ProcessTransport<u64> =
            ProcessTransport::spawn(n, fast_cfg()).expect("spawn workers");
        let reference = staged(n);
        let mut obs = staged(n);
        for superstep in 0..3u64 {
            let outcome = t.round_trip(superstep, &mut obs);
            assert!(outcome.dead_peers.is_empty(), "{outcome:?}");
            assert!(outcome.unhealed_garbled.is_empty());
        }
        for (src, (a, b)) in reference.iter().zip(&obs).enumerate() {
            for dst in 0..n {
                assert_eq!(
                    a.bucket(dst),
                    b.bucket(dst),
                    "bucket ({src}, {dst}) changed across the wire"
                );
            }
        }
        let c = t.counters();
        assert_eq!(c.frames_sent, 3 * (n * (n - 1)) as u64);
        assert_eq!(c.frames_received, c.frames_sent);
        assert_eq!(c.wire_retransmits, 0);
        assert_eq!(c.peers_closed + c.peers_timed_out, 0);
        assert_eq!(c.per_peer.len(), n);
        assert!(c.per_peer.iter().all(|p| p.alive));
    }

    #[test]
    fn killed_worker_classifies_as_closed_peer() {
        let n = 3;
        let mut t: ProcessTransport<u64> =
            ProcessTransport::spawn(n, fast_cfg()).expect("spawn workers");
        assert!(t.kill_rank(1), "worker 1 was alive");
        let mut obs = staged(n);
        let outcome = t.round_trip(0, &mut obs);
        assert_eq!(outcome.dead_peers, vec![1]);
        assert!(outcome.unhealed_garbled.is_empty());
        // Survivors still round-tripped cleanly.
        assert_eq!(obs[0].bucket(2), staged(n)[0].bucket(2));
        assert!(!t.counters().per_peer[1].alive, "peer 1 marked down");
    }

    #[test]
    fn scheduled_kill_is_discovered_at_the_barrier() {
        let n = 3;
        let cfg = fast_cfg().with_wire_faults(WireFaultPlan::none().kill_worker(1, 2));
        let mut t: ProcessTransport<u64> = ProcessTransport::spawn(n, cfg).expect("spawn workers");
        let mut obs = staged(n);
        assert!(t.round_trip(0, &mut obs).dead_peers.is_empty());
        let mut obs = staged(n);
        let outcome = t.round_trip(1, &mut obs);
        assert_eq!(outcome.dead_peers, vec![2]);
    }

    #[test]
    fn garbled_inbox_heals_by_retransmit() {
        let n = 2;
        let cfg = fast_cfg().with_wire_faults(WireFaultPlan::none().garble(0, 1, 0xBEEF, false));
        let mut t: ProcessTransport<u64> = ProcessTransport::spawn(n, cfg).expect("spawn workers");
        let reference = staged(n);
        let mut obs = staged(n);
        let outcome = t.round_trip(0, &mut obs);
        assert!(outcome.dead_peers.is_empty(), "{outcome:?}");
        assert!(outcome.unhealed_garbled.is_empty());
        assert_eq!(obs[0].bucket(1), reference[0].bucket(1), "healed delivery");
        assert!(
            t.counters().wire_retransmits >= 1,
            "the heal was a re-FLUSH"
        );
    }

    #[test]
    fn sticky_garble_exhausts_budget_into_unhealed() {
        let n = 2;
        let cfg = fast_cfg()
            .with_retry(2, 50_000)
            .with_wire_faults(WireFaultPlan::none().garble(0, 1, 0x1CE, true));
        let mut t: ProcessTransport<u64> = ProcessTransport::spawn(n, cfg).expect("spawn workers");
        let mut obs = staged(n);
        let outcome = t.round_trip(0, &mut obs);
        assert_eq!(outcome.unhealed_garbled, vec![1]);
        assert!(!outcome.dead_peers.contains(&1), "garbage is not death");
    }

    #[test]
    fn dropped_inbox_heals_by_retransmit() {
        let n = 2;
        let cfg = fast_cfg().with_wire_faults(WireFaultPlan::none().drop_inbox(0, 0));
        let mut t: ProcessTransport<u64> = ProcessTransport::spawn(n, cfg).expect("spawn workers");
        let reference = staged(n);
        let mut obs = staged(n);
        let outcome = t.round_trip(0, &mut obs);
        assert!(outcome.dead_peers.is_empty());
        assert_eq!(obs[1].bucket(0), reference[1].bucket(0));
        assert!(t.counters().wire_retransmits >= 1);
    }

    #[test]
    fn stalled_peer_past_deadline_times_out() {
        let n = 2;
        // 30 ms deadline, 1 retry: a 500 ms stall cannot be survived.
        let cfg = ProcessTransportConfig::forked()
            .with_deadlines(30_000_000, 500_000_000)
            .with_retry(1, 100_000)
            .with_wire_faults(WireFaultPlan::none().stall(0, 1, 500_000_000));
        let mut t: ProcessTransport<u64> = ProcessTransport::spawn(n, cfg).expect("spawn workers");
        let mut obs = staged(n);
        let outcome = t.round_trip(0, &mut obs);
        assert_eq!(outcome.dead_peers, vec![1]);
        assert!(t.counters().peers_timed_out >= 1);
        assert!(t.counters().deadline_retries >= 1);
    }

    #[test]
    fn short_stall_is_survived_by_deadline_retries() {
        let n = 2;
        // 40 ms deadline, 6 retries: a 100 ms stall heals through retries.
        let cfg = ProcessTransportConfig::forked()
            .with_deadlines(40_000_000, 500_000_000)
            .with_retry(6, 100_000)
            .with_wire_faults(WireFaultPlan::none().stall(0, 1, 100_000_000));
        let mut t: ProcessTransport<u64> = ProcessTransport::spawn(n, cfg).expect("spawn workers");
        let reference = staged(n);
        let mut obs = staged(n);
        let outcome = t.round_trip(0, &mut obs);
        assert!(outcome.dead_peers.is_empty(), "{outcome:?}");
        assert_eq!(obs[0].bucket(1), reference[0].bucket(1));
        assert!(t.counters().deadline_retries >= 1);
    }

    #[test]
    fn rebuilt_respawns_a_fresh_worker_set() {
        let n = 4;
        let mut t: ProcessTransport<u64> =
            ProcessTransport::spawn(n, fast_cfg()).expect("spawn workers");
        t.kill_rank(3);
        assert!(t.rebuilt(3), "respawn over survivors");
        let reference = staged(3);
        let mut obs = staged(3);
        let outcome = t.round_trip(7, &mut obs);
        assert!(outcome.dead_peers.is_empty(), "{outcome:?}");
        for src in 0..3 {
            for dst in 0..3 {
                assert_eq!(obs[src].bucket(dst), reference[src].bucket(dst));
            }
        }
        let c = t.counters();
        assert_eq!(c.workers_spawned, 7);
        assert_eq!(c.workers_respawned, 3);
        assert_eq!(c.per_peer.len(), 3);
    }
}
