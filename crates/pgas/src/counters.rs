//! Communication metering.
//!
//! The cost model (in `gpusim::cost`) converts these counters into simulated
//! network time. Counters distinguish point-to-point traffic (RPCs / halo
//! copies) from collectives (reductions), since their latency models differ.

/// Accumulated communication volume for one runtime instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommCounters {
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Per-event point-to-point messages (RPCs).
    pub messages: u64,
    /// Per-event payload bytes.
    pub bytes: u64,
    /// Aggregated bulk puts (boundary strips / halo buffers): one per
    /// (sender, receiver, wave). Their *count* scales with steps, not with
    /// boundary size — the distinction matters for scale extrapolation.
    pub bulk_messages: u64,
    /// Bulk put payload bytes.
    pub bulk_bytes: u64,
    /// Coalesced exchange batches shipped: one per (src, dst) rank pair
    /// with traffic per superstep, however many logical messages it carries.
    pub batches: u64,
    /// On-wire bytes of those batches: one
    /// [`BATCH_HEADER_BYTES`](crate::mailbox::BATCH_HEADER_BYTES) framing
    /// header per batch plus every message payload counted exactly once.
    pub batch_bytes: u64,
    /// Collective (allreduce) invocations.
    pub allreduces: u64,
    /// Bytes contributed per rank per allreduce, summed.
    pub allreduce_bytes: u64,
    /// Maximum messages sent by any single rank in any superstep — the
    /// per-step communication critical path.
    pub max_rank_messages: u64,
    /// Maximum bytes sent by any single rank in any superstep.
    pub max_rank_bytes: u64,
    /// Injected slow-rank stalls observed at barriers (fault layer).
    pub stalls: u64,
    /// Total simulated straggler lateness, nanoseconds.
    pub stall_ns: u64,
    /// Messages the exactly-once delivery layer discarded as duplicates.
    pub duplicates_suppressed: u64,
    /// Messages lost in flight (each loss also fails its superstep).
    pub dropped_messages: u64,
    /// Inboxes whose delivery order was permuted by an injected
    /// [`DeliveryShuffle`](crate::fault::FaultKind::DeliveryShuffle) fault.
    pub shuffled_inboxes: u64,
    /// CRC64 trailer bytes shipped with verified batches (8 per batch; 0
    /// when integrity verification is off — the healthy default).
    pub integrity_bytes: u64,
    /// Injected in-flight corruptions that actually changed a batch.
    pub corruptions_landed: u64,
    /// Coalesced batches whose delivery-side CRC64 mismatched.
    pub corrupt_batches: u64,
    /// Corrupt batches healed by an in-barrier retransmit.
    pub retransmits: u64,
}

impl CommCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another counter set (e.g. from a second runtime phase).
    pub fn merge(&mut self, o: &CommCounters) {
        self.supersteps += o.supersteps;
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.bulk_messages += o.bulk_messages;
        self.bulk_bytes += o.bulk_bytes;
        self.batches += o.batches;
        self.batch_bytes += o.batch_bytes;
        self.allreduces += o.allreduces;
        self.allreduce_bytes += o.allreduce_bytes;
        self.max_rank_messages = self.max_rank_messages.max(o.max_rank_messages);
        self.max_rank_bytes = self.max_rank_bytes.max(o.max_rank_bytes);
        self.stalls += o.stalls;
        self.stall_ns += o.stall_ns;
        self.duplicates_suppressed += o.duplicates_suppressed;
        self.dropped_messages += o.dropped_messages;
        self.shuffled_inboxes += o.shuffled_inboxes;
        self.integrity_bytes += o.integrity_bytes;
        self.corruptions_landed += o.corruptions_landed;
        self.corrupt_batches += o.corrupt_batches;
        self.retransmits += o.retransmits;
    }

    /// Take the current values, resetting to zero.
    pub fn take(&mut self) -> CommCounters {
        std::mem::take(self)
    }
}

/// Wire-size estimation for metered messages. Implemented by application
/// message types; the default derives from `size_of`, which is accurate for
/// the plain-old-data messages SIMCoV exchanges.
pub trait WireSize {
    fn wire_size(&self) -> usize;

    /// Is this an aggregated bulk put (vs a per-event RPC)? Bulk puts are
    /// metered in [`CommCounters::bulk_messages`].
    fn is_bulk(&self) -> bool {
        false
    }
}

impl<T: Copy> WireSize for T {
    fn wire_size(&self) -> usize {
        std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_take() {
        let mut a = CommCounters {
            supersteps: 1,
            messages: 10,
            bytes: 100,
            bulk_messages: 2,
            bulk_bytes: 1000,
            batches: 3,
            batch_bytes: 1100,
            allreduces: 2,
            allreduce_bytes: 64,
            max_rank_messages: 4,
            max_rank_bytes: 40,
            stalls: 1,
            stall_ns: 500,
            duplicates_suppressed: 2,
            dropped_messages: 1,
            shuffled_inboxes: 1,
            integrity_bytes: 16,
            corruptions_landed: 2,
            corrupt_batches: 2,
            retransmits: 1,
        };
        let b = CommCounters {
            supersteps: 2,
            messages: 5,
            bytes: 50,
            bulk_messages: 1,
            bulk_bytes: 500,
            batches: 2,
            batch_bytes: 550,
            allreduces: 1,
            allreduce_bytes: 32,
            max_rank_messages: 7,
            max_rank_bytes: 30,
            stalls: 2,
            stall_ns: 300,
            duplicates_suppressed: 1,
            dropped_messages: 0,
            shuffled_inboxes: 2,
            integrity_bytes: 8,
            corruptions_landed: 1,
            corrupt_batches: 1,
            retransmits: 1,
        };
        a.merge(&b);
        assert_eq!(a.supersteps, 3);
        assert_eq!(a.messages, 15);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.bulk_messages, 3);
        assert_eq!(a.bulk_bytes, 1500);
        assert_eq!(a.batches, 5);
        assert_eq!(a.batch_bytes, 1650);
        assert_eq!(a.allreduces, 3);
        assert_eq!(a.allreduce_bytes, 96);
        assert_eq!(a.max_rank_messages, 7);
        assert_eq!(a.max_rank_bytes, 40);
        assert_eq!(a.stalls, 3);
        assert_eq!(a.stall_ns, 800);
        assert_eq!(a.duplicates_suppressed, 3);
        assert_eq!(a.dropped_messages, 1);
        assert_eq!(a.shuffled_inboxes, 3);
        assert_eq!(a.integrity_bytes, 24);
        assert_eq!(a.corruptions_landed, 3);
        assert_eq!(a.corrupt_batches, 3);
        assert_eq!(a.retransmits, 2);

        let taken = a.take();
        assert_eq!(taken.messages, 15);
        assert_eq!(a, CommCounters::default());
    }

    #[test]
    fn wire_size_of_pod() {
        assert_eq!(42u64.wire_size(), 8);
        assert_eq!((1u32, 2u32).wire_size(), 8);
    }
}
