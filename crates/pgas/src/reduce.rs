//! Reductions across rank contributions.
//!
//! Models the UPC++ reduction directive SIMCoV uses to log per-step
//! statistics (§3.3): each rank contributes a partial value and every rank
//! observes the combined result. The combine order is fixed (rank order,
//! left fold) so floating-point results are reproducible, and the simulated
//! collective follows a binomial tree of depth ⌈log₂ n⌉ — the latency shape
//! the cost model charges.

use crate::counters::CommCounters;

/// Depth of a binomial reduction tree over `n` participants.
pub fn tree_depth(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Combine per-rank contributions with `f`, left-folded in rank order, and
/// meter the collective on `counters` (`bytes_per_rank` is the wire size of
/// one contribution). Returns the globally combined value, which in a real
/// PGAS run would be broadcast back to every rank.
pub fn allreduce<T: Clone, F: Fn(T, T) -> T>(
    contributions: &[T],
    f: F,
    bytes_per_rank: usize,
    counters: &mut CommCounters,
) -> T {
    assert!(
        !contributions.is_empty(),
        "allreduce needs at least one rank"
    );
    counters.allreduces += 1;
    counters.allreduce_bytes += (bytes_per_rank * contributions.len()) as u64;
    let mut it = contributions.iter().cloned();
    let first = it.next().expect("nonempty");
    it.fold(first, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_values() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(4), 2);
        assert_eq!(tree_depth(5), 3);
        assert_eq!(tree_depth(128), 7);
        assert_eq!(tree_depth(2048), 11);
    }

    #[test]
    fn allreduce_sums_and_meters() {
        let mut c = CommCounters::new();
        let total = allreduce(&[1u64, 2, 3, 4], |a, b| a + b, 8, &mut c);
        assert_eq!(total, 10);
        assert_eq!(c.allreduces, 1);
        assert_eq!(c.allreduce_bytes, 32);
    }

    #[test]
    fn allreduce_order_is_rank_order() {
        // Non-commutative combine exposes the fold order.
        let mut c = CommCounters::new();
        let s = allreduce(
            &["a".to_string(), "b".into(), "c".into()],
            |a, b| a + &b,
            1,
            &mut c,
        );
        assert_eq!(s, "abc");
    }

    #[test]
    #[should_panic]
    fn empty_allreduce_panics() {
        let mut c = CommCounters::new();
        allreduce::<u64, _>(&[], |a, b| a + b, 8, &mut c);
    }
}
