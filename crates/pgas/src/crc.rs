//! Zero-dependency CRC64 and the [`Payload`] integrity trait.
//!
//! Silent data corruption (SDC) defense needs a cheap, collision-resistant
//! digest that both sides of a transfer can compute without a reference run.
//! This module implements CRC-64/XZ (reflected ECMA-182 polynomial
//! `0xC96C5795D7870F42`, init/xorout `!0`) with a compile-time 256-entry
//! table — no external crates, suitable for the offline container.
//!
//! [`Payload`] is the hook that lets the runtime digest and (for fault
//! injection) bit-flip application message types without knowing their
//! layout. Plain-old-data `Copy` types get a blanket no-op impl — they are
//! treated as *opaque* by the SDC layer (never targeted by the injector,
//! contributing nothing to batch digests). Real message types (`CpuMsg`,
//! `GpuMsg`) override all three methods so every wire bit is covered.

/// Reflected ECMA-182 polynomial (CRC-64/XZ).
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// Streaming CRC-64/XZ. Feed bytes with [`Crc64::update`] (or the typed
/// helpers), read the digest with [`Crc64::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    pub fn new() -> Self {
        Crc64 { state: !0 }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s = TABLE[((s ^ b as u64) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    pub fn write_u8(&mut self, v: u8) {
        self.update(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    pub fn write_u128(&mut self, v: u128) {
        self.update(&v.to_le_bytes());
    }

    /// Digest a float by its bit pattern — bitwise identity is the contract,
    /// so `-0.0` and `0.0` hash differently on purpose.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Length prefixes are digested as `u64` so the digest is
    /// platform-independent.
    pub fn write_len(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub fn finish(&self) -> u64 {
        !self.state
    }
}

/// One-shot CRC-64/XZ of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(bytes);
    c.finish()
}

/// Integrity hooks for metered message types: digest the wire content into a
/// batch checksum, and (for SDC fault injection) flip one seeded bit.
///
/// The defaults make a type *opaque*: it digests to nothing and reports no
/// corruptible bits, so the payload-corruption injector skips it. The
/// blanket impl below gives every `Copy` POD that behavior for free —
/// mirroring the [`WireSize`](crate::counters::WireSize) blanket — while
/// application message types override all three methods.
pub trait Payload {
    /// Fold this message's wire content into `crc`. Must cover every bit
    /// [`Payload::corrupt`] can touch, or corruption passes silently.
    fn digest(&self, _crc: &mut Crc64) {}

    /// Flip one bit of the wire content, chosen deterministically from
    /// `seed`. XOR semantics: applying the same seed twice restores the
    /// original bytes (that is how an in-barrier retransmit is modeled).
    fn corrupt(&mut self, _seed: u64) {}

    /// Does this message expose bits the injector may flip? The injector
    /// only targets messages answering `true`.
    fn corruptible(&self) -> bool {
        false
    }
}

impl<T: Copy> Payload for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_xz_check_value() {
        // The canonical CRC-64/XZ check: crc("123456789").
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let mut c = Crc64::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc64(&data));
    }

    #[test]
    fn typed_writers_match_byte_stream() {
        let mut a = Crc64::new();
        a.write_u64(0xDEAD_BEEF_0123_4567);
        a.write_f32(1.5);
        a.write_u8(9);
        let mut b = Crc64::new();
        b.update(&0xDEAD_BEEF_0123_4567u64.to_le_bytes());
        b.update(&1.5f32.to_bits().to_le_bytes());
        b.update(&[9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let mut data = vec![0u8; 64];
        let clean = crc64(&data);
        for bit in [0usize, 13, 255, 511] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc64(&data), clean, "bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc64(&data), clean);
    }

    #[test]
    fn copy_types_are_opaque_payloads() {
        let x = 42u64;
        assert!(!x.corruptible());
        let mut c = Crc64::new();
        x.digest(&mut c);
        assert_eq!(c.finish(), Crc64::new().finish());
    }
}
