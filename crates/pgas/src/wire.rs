//! Byte-level message codec for the process transport.
//!
//! The in-process mailbox path moves `M` values between ranks by `memcpy`
//! (`Vec::append`), so it never needs a serialized form. The process
//! transport does: every coalesced (src, dst) bucket crosses a socket as one
//! CRC64-sealed frame (see [`crate::mailbox::frame`]) whose payload is the
//! concatenation of the bucket's messages encoded through [`WireCodec`].
//!
//! Decoding follows the same hostile-input discipline as the frame parser:
//! every read is bounds-checked against the remaining buffer, and no
//! allocation is sized from an untrusted length without first capping it by
//! the bytes actually present. A frame that passed its CRC can still be
//! structurally hostile to a *different* message schema (version skew, a
//! buggy peer), so `decode` returns `None` rather than trusting anything.

/// Bounds-checked little-endian reader over a received payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed? Decoders check this to reject padded
    /// or over-long payloads.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    pub fn read_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub fn read_bool(&mut self) -> Option<bool> {
        match self.read_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None, // a canonical encoder only ever writes 0 or 1
        }
    }

    pub fn read_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    pub fn read_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    pub fn read_u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|s| u128::from_le_bytes(s.try_into().expect("16 bytes")))
    }

    pub fn read_f32(&mut self) -> Option<f32> {
        self.read_u32().map(f32::from_bits)
    }

    /// Read a length prefix for a sequence whose elements occupy at least
    /// `elem_floor` encoded bytes each. A length that could not possibly fit
    /// in the remaining buffer is rejected before any allocation.
    pub fn read_len(&mut self, elem_floor: usize) -> Option<usize> {
        let len = self.read_u64()?;
        let floor = elem_floor.max(1) as u64;
        if len > self.remaining() as u64 / floor {
            return None;
        }
        Some(len as usize)
    }
}

/// Little-endian writer helpers mirroring [`WireReader`].
pub trait WireWrite {
    fn put_u8(&mut self, v: u8);
    fn put_bool(&mut self, v: bool);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_u128(&mut self, v: u128);
    fn put_f32(&mut self, v: f32);
}

impl WireWrite for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_bool(&mut self, v: bool) {
        self.push(v as u8);
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u128(&mut self, v: u128) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

/// A message type that can cross a process boundary. Encoding must be
/// canonical (one byte sequence per value) so a round-tripped bucket is
/// bit-identical to the staged one — the process transport's counter and
/// trajectory identity with the in-process path depends on it.
pub trait WireCodec: Sized {
    /// Append this message's canonical encoding.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one message; `None` on any structural violation.
    fn decode(r: &mut WireReader<'_>) -> Option<Self>;
}

/// Encode a whole (src, dst) bucket as one contiguous payload.
pub fn encode_bucket<M: WireCodec>(bucket: &[M]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in bucket {
        m.encode(&mut out);
    }
    out
}

/// Decode a bucket payload that claims `count` messages. Fails if the
/// payload holds more, fewer, or structurally invalid messages.
pub fn decode_bucket<M: WireCodec>(count: u64, payload: &[u8]) -> Option<Vec<M>> {
    // Every message encodes to at least one byte, so a count the payload
    // cannot possibly hold is rejected before any allocation or iteration —
    // a hostile count must not even drive loop trips.
    if count > payload.len() as u64 {
        return None;
    }
    let mut r = WireReader::new(payload);
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(M::decode(&mut r)?);
    }
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

impl WireCodec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.read_u8()
    }
}

impl WireCodec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.read_u32()
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.read_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrips() {
        let bucket: Vec<u64> = vec![0, 1, u64::MAX, 0xDEAD_BEEF];
        let payload = encode_bucket(&bucket);
        assert_eq!(payload.len(), 32);
        let back: Vec<u64> = decode_bucket(4, &payload).expect("clean payload");
        assert_eq!(back, bucket);
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let payload = encode_bucket(&[7u64, 8, 9]);
        assert!(decode_bucket::<u64>(2, &payload).is_none(), "undercount");
        assert!(decode_bucket::<u64>(4, &payload).is_none(), "overcount");
        assert!(
            decode_bucket::<u64>(3, &payload[..20]).is_none(),
            "truncated"
        );
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // A u64::MAX claim against a tiny payload must fail fast — no OOM
        // from the capacity hint and no 2^64 decode-loop trips.
        assert!(decode_bucket::<u64>(u64::MAX, &[0u8; 8]).is_none());
        assert!(decode_bucket::<u8>(u64::MAX, &[]).is_none());
    }

    #[test]
    fn read_len_caps_by_remaining_bytes() {
        let mut buf = Vec::new();
        buf.put_u64(1 << 40);
        let mut r = WireReader::new(&buf);
        assert!(r.read_len(16).is_none(), "impossible length rejected");
        let mut buf = Vec::new();
        buf.put_u64(2);
        buf.put_u32(1);
        buf.put_u32(2);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_len(4), Some(2));
        assert_eq!(r.read_u32(), Some(1));
        assert_eq!(r.read_u32(), Some(2));
        assert!(r.is_exhausted());
    }

    #[test]
    fn non_canonical_bool_is_rejected() {
        let mut r = WireReader::new(&[2]);
        assert!(r.read_bool().is_none());
    }
}
