//! Superstep execution over logical ranks.
//!
//! A [`Bsp`] instance owns the per-rank inboxes for one message type. Each
//! [`Bsp::superstep`] call runs a rank function over all ranks in parallel,
//! giving each its inbox (messages addressed to it during the *previous*
//! superstep) and an [`Outbox`] for new messages. This mirrors UPC++ RPCs as
//! SIMCoV uses them: enqueue during compute, observe effects after the next
//! progress/barrier boundary.
//!
//! Delivery is canonicalized: a rank's inbox holds messages ordered by
//! (source rank, emission order within the source). Together with the
//! counter-based model RNG this makes multi-rank execution bit-reproducible.
//!
//! The exchange itself runs on the double-buffered lock-free mailbox layer
//! (see [`crate::mailbox`]): outboxes are bucketed by destination, each
//! (src, dst) pair coalesces into one length-prefixed batch at the barrier,
//! and the per-rank inbox buffers swap front/back so allocations are reused.

use crate::counters::{CommCounters, WireSize};
use crate::crc::Payload;
use crate::fault::{
    CorruptionKind, FaultKind, FaultPlan, IntegrityAction, IntegrityDetector, IntegrityFailure,
    IntegrityRecord, PendingStateCorruption, SuperstepError, SuperstepFailure,
};
use crate::mailbox::{ExchangeFaults, Mailboxes, Outbox};
use crate::pool::WorkPool;
#[cfg(not(feature = "trace"))]
use crate::trace::Span;
use crate::trace::{SpanVolume, Trace};
use crate::transport::{
    ExchangeTransport, ProcessTransport, ProcessTransportConfig, TransportCounters, WireOutcome,
};
use crate::wire::WireCodec;
use simcov_telemetry::{Histogram, RankWalls, SpanKind, Telemetry};
use std::sync::Mutex;

/// Corrupt batches healed per superstep before the superstep is failed and
/// the driver's rollback tier takes over. Real interconnects bound the
/// retransmit window the same way; tests lower it to force the escalation.
pub const DEFAULT_RETRANSMIT_BUDGET: u64 = 8;

/// A BSP domain over `n_ranks` logical ranks exchanging messages of type `M`.
pub struct Bsp<M> {
    n_ranks: usize,
    /// Double-buffered inboxes (front read during compute, back assembled at
    /// the barrier).
    mail: Mailboxes<M>,
    /// Per-rank bucketed outboxes, reused superstep over superstep.
    outboxes: Vec<Outbox<M>>,
    pub counters: CommCounters,
    /// Per-superstep event log (disabled by default; see
    /// [`Bsp::enable_trace`]).
    pub trace: Trace,
    /// Scheduled fault injections (empty by default; see
    /// [`Bsp::inject_faults`]).
    plan: FaultPlan,
    /// Compute + verify per-batch CRC64 checksums at every exchange.
    /// Auto-engaged when the armed plan schedules corruption; off on the
    /// healthy hot path.
    verify_batches: bool,
    /// Corrupt batches healed in-barrier per superstep before escalating.
    retransmit_budget: u64,
    /// State-corruption strikes collected from the plan, awaiting the
    /// executor (the BSP cannot touch application state).
    pending_state: Vec<PendingStateCorruption>,
    /// In-barrier batch heals awaiting the driver's metrics drain.
    integrity_records: Vec<IntegrityRecord>,
    /// Unified telemetry handle (disabled by default; see
    /// [`Bsp::attach_telemetry`]). When enabled, every superstep records a
    /// span hierarchy: superstep → per-rank compute + exchange.
    telemetry: Telemetry,
    /// Superstep wall-clock histogram registered on the telemetry registry.
    superstep_hist: Option<Histogram>,
    /// Per-superstep rank wall clocks awaiting the driver's health drain.
    rank_walls: Vec<RankWalls>,
    /// Reusable per-rank wall scratch (one slot per rank, unique writer).
    wall_scratch: Vec<u64>,
    /// Optional process transport (see [`crate::transport`]): when attached,
    /// every barrier exchange round-trips the staged buckets through
    /// per-rank worker processes before logical delivery.
    transport: Option<Box<dyn ExchangeTransport<M>>>,
    /// Last wire-counter snapshot from the transport; survives graceful
    /// degradation back to the in-process path.
    wire_counters: TransportCounters,
}

impl<M: Send + Sync + WireSize + Payload> Bsp<M> {
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks >= 1);
        Bsp {
            n_ranks,
            mail: Mailboxes::new(n_ranks),
            outboxes: (0..n_ranks).map(|_| Outbox::for_ranks(n_ranks)).collect(),
            counters: CommCounters::new(),
            trace: Trace::disabled(),
            plan: FaultPlan::none(),
            verify_batches: false,
            retransmit_budget: DEFAULT_RETRANSMIT_BUDGET,
            pending_state: Vec::new(),
            integrity_records: Vec::new(),
            telemetry: Telemetry::disabled(),
            superstep_hist: None,
            rank_walls: Vec::new(),
            wall_scratch: Vec::new(),
            transport: None,
            wire_counters: TransportCounters::default(),
        }
    }

    /// Arm a fault schedule. Events fire at the global superstep index
    /// recorded in [`CommCounters::supersteps`], which keeps increasing
    /// across rollbacks — a replayed superstep never re-fires a past fault.
    ///
    /// Arming a plan that schedules corruption auto-engages batch
    /// verification for the rest of the run (every coalesced batch then
    /// carries a CRC64 trailer verified at delivery).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.verify_batches = self.verify_batches || plan.has_corruption();
        self.plan = plan;
    }

    /// The currently armed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Force batch CRC verification on even without a corruption plan
    /// (used by overhead benches and the false-positive sweeps).
    pub fn enable_integrity(&mut self) {
        self.verify_batches = true;
    }

    /// Is per-batch CRC verification engaged?
    pub fn integrity_enabled(&self) -> bool {
        self.verify_batches
    }

    /// Cap the corrupt batches healed in-barrier per superstep; anything
    /// beyond fails the superstep with an [`IntegrityFailure`].
    pub fn set_retransmit_budget(&mut self, budget: u64) {
        self.retransmit_budget = budget;
    }

    /// Drain the state-corruption strikes collected so far. The executor
    /// applies each to the owning rank's resident state *after* the driver
    /// seals the step, so the seal-scrub catches the flip before the next
    /// step consumes it.
    pub fn take_pending_state_corruptions(&mut self) -> Vec<PendingStateCorruption> {
        std::mem::take(&mut self.pending_state)
    }

    /// Drain the in-barrier heal records (one per retransmitted batch) for
    /// the metrics stream. `step` is left 0 — the driver stamps it.
    pub fn take_integrity_records(&mut self) -> Vec<IntegrityRecord> {
        std::mem::take(&mut self.integrity_records)
    }

    /// Consume this runtime and return a fresh one over `n_ranks` ranks,
    /// carrying the cumulative counters, trace log and remaining fault plan
    /// forward. Used by recovery: after a rank death the driver rolls back
    /// to a checkpoint and rebuilds the domain across the survivors —
    /// in-flight messages from the failed epoch must not leak into the new
    /// one, so inboxes start empty. Integrity settings and still-pending
    /// state corruption carry over: a DRAM bit flip does not heal itself
    /// just because the epoch was rebuilt.
    pub fn rebuilt(self, n_ranks: usize) -> Bsp<M> {
        assert!(n_ranks >= 1);
        // Respawn the transport's worker set for the new domain; if that
        // fails, degrade gracefully to the in-process path rather than
        // abandon the recovery (the wire counters record the degradation).
        let mut wire_counters = self.wire_counters;
        let transport = match self.transport {
            Some(mut t) => {
                let ok = t.rebuilt(n_ranks);
                wire_counters = t.counters();
                if ok {
                    Some(t)
                } else {
                    None
                }
            }
            None => None,
        };
        Bsp {
            n_ranks,
            mail: Mailboxes::new(n_ranks),
            outboxes: (0..n_ranks).map(|_| Outbox::for_ranks(n_ranks)).collect(),
            counters: self.counters,
            trace: self.trace,
            plan: self.plan,
            verify_batches: self.verify_batches,
            retransmit_budget: self.retransmit_budget,
            pending_state: self.pending_state,
            integrity_records: self.integrity_records,
            telemetry: self.telemetry,
            superstep_hist: self.superstep_hist,
            rank_walls: self.rank_walls,
            wall_scratch: Vec::new(),
            transport,
            wire_counters,
        }
    }

    /// Start recording one trace event per superstep (wall-clock plus
    /// delivered message/byte volume). Without the `trace` cargo feature
    /// this enables the log but supersteps record nothing.
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// Attach a unified telemetry handle. With an enabled handle every
    /// superstep records a span hierarchy (superstep → per-rank compute +
    /// exchange, parented under the driver's published step span), samples
    /// per-rank wall clocks for the health monitor, and feeds the superstep
    /// wall histogram on the handle's registry. A disabled handle (the
    /// default) costs one branch per superstep.
    pub fn attach_telemetry(&mut self, t: Telemetry) {
        self.superstep_hist = t.registry().map(|r| {
            r.histogram(
                "pgas_superstep_wall_ns",
                "Wall-clock nanoseconds per BSP superstep",
            )
        });
        self.telemetry = t;
    }

    /// The attached telemetry handle (disabled unless
    /// [`Bsp::attach_telemetry`] installed an enabled one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Drain the per-superstep rank wall-clock samples collected since the
    /// last drain (empty unless an enabled telemetry handle is attached).
    /// Walls include injected slow-rank stall time, so seeded stragglers
    /// are visible to the health monitor.
    pub fn take_rank_walls(&mut self) -> Vec<RankWalls> {
        std::mem::take(&mut self.rank_walls)
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Messages currently pending for `rank` (delivered next superstep).
    pub fn pending(&self, rank: usize) -> usize {
        self.mail.pending(rank)
    }

    /// Execute one superstep: `f(rank, state, inbox, outbox) -> R` runs for
    /// every rank (in parallel on `pool`), then all outboxes are delivered.
    /// Returns the per-rank results in rank order.
    ///
    /// Infallible wrapper over [`Bsp::try_superstep`]: with no fault plan
    /// armed a superstep cannot fail; with one armed, an unhandled failure
    /// panics (drivers that arm faults use `try_superstep` and recover).
    pub fn superstep<S, R, F>(&mut self, pool: &WorkPool, states: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send + Default,
        F: Fn(usize, &mut S, &[M], &mut Outbox<M>) -> R + Sync,
    {
        self.try_superstep(pool, states, f)
            .unwrap_or_else(|e| panic!("unrecovered superstep failure: {e}"))
    }

    /// Execute one superstep, reporting failures instead of panicking.
    ///
    /// Faults due at this superstep (per the armed [`FaultPlan`]) are
    /// injected: dead ranks never run and leave their heartbeat slot cold;
    /// dropped outboxes are discarded in flight; duplicated outboxes are
    /// delivered once with the copies metered in
    /// [`CommCounters::duplicates_suppressed`]; stalls are metered in
    /// [`CommCounters::stalls`]. At the barrier, missing heartbeats and
    /// message loss surface as [`SuperstepFailure`].
    ///
    /// On `Err` the runtime's inboxes are *not* trustworthy (the failed
    /// epoch's messages are partially delivered) — callers roll back to a
    /// checkpoint and rebuild via [`Bsp::rebuilt`]. The superstep counter
    /// still advances, so the retried superstep gets a fresh fault index.
    ///
    /// With integrity verification engaged, every coalesced batch is CRC64
    /// verified at delivery. Corrupt batches are healed by in-barrier
    /// retransmits up to the budget; beyond it the superstep fails with
    /// [`SuperstepError::Integrity`]. A structural failure (dead ranks,
    /// lost messages) takes precedence when both strike the same superstep.
    pub fn try_superstep<S, R, F>(
        &mut self,
        pool: &WorkPool,
        states: &mut [S],
        f: F,
    ) -> Result<Vec<R>, SuperstepError>
    where
        S: Send,
        R: Send + Default,
        F: Fn(usize, &mut S, &[M], &mut Outbox<M>) -> R + Sync,
    {
        assert_eq!(states.len(), self.n_ranks, "one state per rank");
        // Without the `trace` feature the span is untimed, but `finish`
        // still accumulates volume so counters never silently read zero.
        #[cfg(feature = "trace")]
        let span = self.trace.span("superstep");
        #[cfg(not(feature = "trace"))]
        let span = Span::disabled("superstep");
        let step_index = self.counters.supersteps;
        let tel = self.telemetry.clone();
        let tel_on = tel.is_enabled();
        let ss_open = tel.open();

        // Collect faults due now. Ranks are interpreted modulo the current
        // rank count so plans stay valid after an elastic shrink.
        let mut killed: Vec<usize> = Vec::new();
        let mut drops: Vec<usize> = Vec::new();
        let mut dups: Vec<usize> = Vec::new();
        let mut shuffles: Vec<(usize, u64)> = Vec::new();
        let mut corruptions: Vec<(usize, u64)> = Vec::new();
        let mut stalls: Vec<(usize, u64)> = Vec::new();
        if !self.plan.is_exhausted() {
            let n = self.n_ranks;
            for ev in self.plan.take_due(step_index) {
                let rank = ev.rank % n;
                match ev.kind {
                    FaultKind::RankDeath => killed.push(rank),
                    FaultKind::MessageDrop => drops.push(rank),
                    FaultKind::MessageDuplicate => dups.push(rank),
                    FaultKind::SlowRank { stall_ns } => {
                        self.counters.stalls += 1;
                        self.counters.stall_ns += stall_ns;
                        // Attribute the stall to its rank so telemetry walls
                        // (and the straggler detector) see it.
                        stalls.push((rank, stall_ns));
                    }
                    FaultKind::DeliveryShuffle { seed } => {
                        // Distinct permutation per (superstep, rank), still
                        // fully determined by the planted seed.
                        let stream = seed
                            .wrapping_add(step_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                            .wrapping_add((rank as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                        shuffles.push((rank, stream));
                    }
                    FaultKind::PayloadCorruption { seed } => corruptions.push((rank, seed)),
                    FaultKind::StateCorruption { seed } => {
                        self.pending_state.push(PendingStateCorruption {
                            superstep: step_index,
                            rank,
                            seed,
                        });
                    }
                }
            }
            killed.sort_unstable();
            killed.dedup();
        }

        // Under a process transport a scheduled rank death is a *real*
        // crash: the rank's worker process is SIGKILLed along with the
        // logical skip, so the wire discovers the same dead set the
        // heartbeat scan does.
        if !killed.is_empty() {
            if let Some(t) = self.transport.as_mut() {
                for &rank in &killed {
                    t.kill_rank(rank);
                }
            }
        }

        for ob in &mut self.outboxes {
            ob.clear();
        }

        // Per-rank result, outbox and heartbeat slots, written exclusively
        // by the rank that owns them.
        let mut results: Vec<R> = (0..self.n_ranks).map(|_| R::default()).collect();
        let mut heartbeats: Vec<bool> = vec![false; self.n_ranks];
        if tel_on {
            self.wall_scratch.clear();
            self.wall_scratch.resize(self.n_ranks, 0);
        }

        {
            struct Slots<S, R, M> {
                states: *mut S,
                results: *mut R,
                outboxes: *mut Outbox<M>,
                heartbeats: *mut bool,
                walls: *mut u64,
            }
            // SAFETY: each index is claimed by exactly one pool worker
            // (WorkPool::run_indexed guarantees single execution per index),
            // so each rank's state/result/outbox/heartbeat/wall slot has a
            // unique writer.
            unsafe impl<S, R, M> Sync for Slots<S, R, M> {}
            let slots = Slots {
                states: states.as_mut_ptr(),
                results: results.as_mut_ptr(),
                outboxes: self.outboxes.as_mut_ptr(),
                heartbeats: heartbeats.as_mut_ptr(),
                // Dangling when telemetry is off (scratch stays empty); the
                // closure only dereferences it under `tel_on`.
                walls: self.wall_scratch.as_mut_ptr(),
            };
            let inboxes = self.mail.front();
            let f = &f;
            let killed = &killed;
            let tel = &tel;
            let ss_id = ss_open.id;
            // Bind a reference so the closure captures the whole `Slots`
            // (which is `Sync`) rather than its raw-pointer fields.
            let slots = &slots;
            pool.run_indexed(self.n_ranks, |rank| {
                if killed.binary_search(&rank).is_ok() {
                    // Injected death: the rank vanishes before computing,
                    // leaving its heartbeat slot cold for the barrier check.
                    return;
                }
                // Open the rank's compute span and publish it as the track
                // parent so device-level kernel phases nest under it. Track
                // `rank + 1` has this rank as its unique writer.
                let compute = tel.open();
                if tel_on {
                    tel.set_track_parent(rank + 1, compute.id);
                }
                // SAFETY: see Slots above — `rank` is unique per invocation.
                let (state, result, outbox) = unsafe {
                    (
                        &mut *slots.states.add(rank),
                        &mut *slots.results.add(rank),
                        &mut *slots.outboxes.add(rank),
                    )
                };
                *result = f(rank, state, &inboxes[rank], outbox);
                // SAFETY: unique writer per rank, as above.
                unsafe { *slots.heartbeats.add(rank) = true };
                if tel_on {
                    // SAFETY: unique writer per rank, as above.
                    unsafe {
                        *slots.walls.add(rank) = tel.now_ns().saturating_sub(compute.start_ns)
                    };
                    tel.close(
                        rank + 1,
                        "compute",
                        SpanKind::RankPhase,
                        ss_id,
                        compute,
                        rank as u64,
                        0,
                    );
                }
            });
        }

        // Workers have quiesced: the coordinator is now the unique writer on
        // every track. Fold injected stalls into the sampled walls (a
        // metered stall is wall time the real rank would have burned) and
        // mark them on the rank's timeline.
        if tel_on {
            for &(rank, stall_ns) in &stalls {
                if let Some(w) = self.wall_scratch.get_mut(rank) {
                    *w += stall_ns;
                }
                tel.instant(rank + 1, "stall", ss_open.id, rank as u64, stall_ns);
            }
        }

        // Barrier, part 1 — heartbeat scan: any rank that did not check in
        // is structurally detected as dead, however it was lost.
        let mut dead_ranks: Vec<usize> = heartbeats
            .iter()
            .enumerate()
            .filter(|(_, alive)| !**alive)
            .map(|(rank, _)| rank)
            .collect();

        // Barrier, part 2 — exchange. Duplicated outboxes are delivered
        // once by the exactly-once layer with the copies metered; dropped
        // outboxes are lost in flight and fail the superstep below. The
        // mailbox layer assembles the next superstep's inboxes in parallel
        // and swaps the double buffers.
        for &src in &dups {
            if !drops.contains(&src) {
                self.counters.duplicates_suppressed += self.outboxes[src].len() as u64;
            }
        }
        let exchange = tel.open();
        // With a process transport attached the staged buckets round-trip
        // through the worker processes first: what the logical exchange
        // below delivers is exactly what came back over the wire, so a
        // frame lost or garbled past the retry budget has real effect.
        // Buckets bound for a dead peer keep their staged originals, which
        // keeps the volume metering transport-invariant.
        let wire = match self.transport.as_mut() {
            Some(t) => {
                let outcome = t.round_trip(step_index, &mut self.outboxes);
                self.wire_counters = t.counters();
                outcome
            }
            None => WireOutcome::default(),
        };
        if !wire.dead_peers.is_empty() {
            dead_ranks.extend(wire.dead_peers.iter().copied());
            dead_ranks.sort_unstable();
            dead_ranks.dedup();
        }
        let vol = self.mail.exchange_faulted(
            pool,
            &mut self.outboxes,
            &ExchangeFaults {
                drops: &drops,
                shuffles: &shuffles,
                corruptions: &corruptions,
                verify: self.verify_batches || !corruptions.is_empty(),
                retransmit_budget: self.retransmit_budget,
            },
        );
        self.counters.supersteps += 1;
        self.counters.messages += vol.msgs;
        self.counters.bytes += vol.bytes;
        self.counters.bulk_messages += vol.bulk_msgs;
        self.counters.bulk_bytes += vol.bulk_bytes;
        self.counters.batches += vol.batches;
        self.counters.batch_bytes += vol.batch_bytes;
        self.counters.max_rank_messages = self.counters.max_rank_messages.max(vol.max_rank_msgs);
        self.counters.max_rank_bytes = self.counters.max_rank_bytes.max(vol.max_rank_bytes);
        self.counters.dropped_messages += vol.dropped;
        self.counters.shuffled_inboxes += shuffles.len() as u64;
        self.counters.integrity_bytes += vol.integrity_bytes;
        self.counters.corruptions_landed += vol.corruptions_landed;
        self.counters.corrupt_batches += vol.corrupt_batches;
        self.counters.retransmits += vol.retransmits;
        for _ in 0..vol.retransmits {
            self.integrity_records.push(IntegrityRecord {
                step: 0,          // stamped by the driver when drained
                injected_step: 0, // likewise
                superstep: step_index,
                injected_superstep: step_index,
                kind: CorruptionKind::Payload,
                detector: IntegrityDetector::BatchCrc,
                action: IntegrityAction::Retransmit,
            });
        }
        self.trace.finish(
            span,
            SpanVolume::new(vol.msgs, vol.bytes, vol.bulk_msgs, vol.bulk_bytes),
        );
        if tel_on {
            tel.close(
                0,
                "exchange",
                SpanKind::RankPhase,
                ss_open.id,
                exchange,
                vol.msgs + vol.bulk_msgs,
                vol.bytes + vol.bulk_bytes,
            );
            if let Some(h) = &self.superstep_hist {
                h.observe(tel.now_ns().saturating_sub(ss_open.start_ns));
            }
            tel.close(
                0,
                "superstep",
                SpanKind::Superstep,
                tel.step_parent(),
                ss_open,
                step_index,
                vol.bytes + vol.bulk_bytes,
            );
            self.rank_walls.push(RankWalls {
                superstep: step_index,
                walls: self.wall_scratch.clone(),
            });
            if self.transport.is_some() {
                if let Some(reg) = tel.registry() {
                    for s in &self.wire_counters.per_peer {
                        s.publish(reg);
                    }
                }
            }
        }
        if !dead_ranks.is_empty() || vol.dropped > 0 {
            return Err(SuperstepError::Failure(SuperstepFailure {
                superstep: step_index,
                dead_ranks,
                dropped_messages: vol.dropped,
            }));
        }
        if vol.unhealed > 0 {
            return Err(SuperstepError::Integrity(IntegrityFailure {
                superstep: step_index,
                corrupt_batches: vol.corrupt_batches,
                healed: vol.retransmits,
                unhealed: vol.unhealed,
            }));
        }
        if !wire.unhealed_garbled.is_empty() {
            // Wire garbage past the retry budget is an integrity failure of
            // its own, metered on the transport — CommCounters stay exactly
            // what the logical exchange produced.
            return Err(SuperstepError::Integrity(IntegrityFailure {
                superstep: step_index,
                corrupt_batches: wire.unhealed_garbled.len() as u64,
                healed: 0,
                unhealed: wire.unhealed_garbled.len() as u64,
            }));
        }
        Ok(results)
    }
}

impl<M: Send + Sync + WireSize + Payload + WireCodec + 'static> Bsp<M> {
    /// Attach a process transport: spawn one worker process per rank and
    /// round-trip every subsequent barrier exchange through them. Requires
    /// `M: WireCodec` — messages must actually cross a process boundary.
    pub fn attach_process_transport(&mut self, cfg: ProcessTransportConfig) -> std::io::Result<()> {
        let t = ProcessTransport::<M>::spawn(self.n_ranks, cfg)?;
        self.wire_counters = t.counters();
        self.transport = Some(Box::new(t));
        Ok(())
    }
}

impl<M> Bsp<M> {
    /// Is a process transport currently attached (false after degradation)?
    pub fn has_transport(&self) -> bool {
        self.transport.is_some()
    }

    /// Wire-side counters from the attached (or degraded) transport.
    pub fn transport_counters(&self) -> &TransportCounters {
        &self.wire_counters
    }
}

/// A shared accumulator for cheap global tallies from within a superstep
/// (used where UPC++ code would use an atomic fetch-add on a dist_object).
#[derive(Default)]
pub struct SharedTally {
    value: Mutex<u64>,
}

impl SharedTally {
    pub fn new() -> Self {
        Self::default()
    }
    fn lock(&self) -> std::sync::MutexGuard<'_, u64> {
        self.value.lock().unwrap_or_else(|e| e.into_inner())
    }
    pub fn add(&self, v: u64) {
        *self.lock() += v;
    }
    pub fn get(&self) -> u64 {
        *self.lock()
    }
    pub fn reset(&self) -> u64 {
        std::mem::take(&mut *self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_next_superstep_in_order() {
        let pool = WorkPool::new(2);
        let mut bsp: Bsp<u64> = Bsp::new(4);
        let mut states = vec![0u64; 4];

        // Superstep 1: every rank sends (rank*10 + k) for k in 0..3 to rank 0.
        bsp.superstep(&pool, &mut states, |rank, _s, inbox, out| {
            assert!(inbox.is_empty());
            for k in 0..3u64 {
                out.send(0, rank as u64 * 10 + k);
            }
        });

        // Superstep 2: rank 0 sees all 12 messages, ordered by source rank.
        let results = bsp.superstep(&pool, &mut states, |rank, _s, inbox, _out| {
            if rank == 0 {
                let expect: Vec<u64> = (0..4u64)
                    .flat_map(|r| (0..3).map(move |k| r * 10 + k))
                    .collect();
                assert_eq!(inbox, expect.as_slice());
                inbox.len() as u64
            } else {
                assert!(inbox.is_empty());
                0
            }
        });
        assert_eq!(results[0], 12);
        assert_eq!(bsp.counters.supersteps, 2);
        assert_eq!(bsp.counters.messages, 12);
        assert_eq!(bsp.counters.bytes, 12 * 8);
        assert_eq!(bsp.counters.max_rank_messages, 3);
        // Coalescing: the 12 messages ship as 4 (src, dst=0) batches, each
        // paying the framing header once with payloads counted once.
        assert_eq!(bsp.counters.batches, 4);
        assert_eq!(
            bsp.counters.batch_bytes,
            4 * crate::mailbox::BATCH_HEADER_BYTES + 12 * 8
        );
    }

    #[test]
    fn delivery_shuffle_permutes_but_preserves_content() {
        use crate::fault::FaultPlan;
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<u64> = Bsp::new(4);
        bsp.inject_faults(FaultPlan::shuffled(0xC0FFEE, 4, 8));
        let mut states = vec![Vec::<u64>::new(); 4];
        bsp.superstep(&pool, &mut states, |rank, _s, _i, out| {
            for k in 0..4u64 {
                out.send(0, rank as u64 * 10 + k);
            }
        });
        bsp.superstep(&pool, &mut states, |_rank, s, inbox, _out| {
            *s = inbox.to_vec();
        });
        let canonical: Vec<u64> = (0..4u64)
            .flat_map(|r| (0..4).map(move |k| r * 10 + k))
            .collect();
        assert_ne!(states[0], canonical, "16 messages: shuffle must reorder");
        let mut sorted = states[0].clone();
        sorted.sort_unstable();
        assert_eq!(sorted, canonical, "every message delivered exactly once");
        assert_eq!(bsp.counters.shuffled_inboxes, 8, "4 ranks x 2 supersteps");
        assert_eq!(bsp.counters.messages, 16, "shuffles never change volume");
    }

    #[test]
    fn states_are_mutated_per_rank() {
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<()> = Bsp::new(8);
        let mut states: Vec<u64> = (0..8).collect();
        bsp.superstep(&pool, &mut states, |rank, s, _inbox, _out| {
            *s += rank as u64;
        });
        for (rank, s) in states.iter().enumerate() {
            assert_eq!(*s, 2 * rank as u64);
        }
    }

    #[test]
    fn determinism_under_parallelism() {
        // Run the same two-superstep exchange with different pool sizes and
        // compare the full delivered inbox contents.
        let run_safe = |threads: usize| -> Vec<Vec<u32>> {
            let pool = WorkPool::new(threads);
            let mut bsp: Bsp<u32> = Bsp::new(6);
            let mut states = vec![Vec::<u32>::new(); 6];
            bsp.superstep(&pool, &mut states, |rank, _s, _i, out| {
                for d in 0..6 {
                    if d != rank {
                        out.send(d, (rank * 100 + d) as u32);
                    }
                }
            });
            bsp.superstep(&pool, &mut states, |_rank, s, inbox, _out| {
                *s = inbox.to_vec();
            });
            states
        };
        let a = run_safe(0);
        let b = run_safe(3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn send_to_invalid_rank_panics() {
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<u8> = Bsp::new(2);
        let mut states = vec![(); 2];
        bsp.superstep(&pool, &mut states, |_r, _s, _i, out| out.send(5, 1));
    }

    #[test]
    fn injected_rank_death_is_detected_at_barrier() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let pool = WorkPool::new(2);
        let mut bsp: Bsp<u32> = Bsp::new(4);
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 1,
            rank: 2,
            kind: FaultKind::RankDeath,
        }]));
        let mut states = vec![0u32; 4];
        // Superstep 0: clean.
        bsp.try_superstep(&pool, &mut states, |_r, s, _i, _o| {
            *s += 1;
        })
        .expect("no fault due yet");
        // Superstep 1: rank 2 dies — its state is untouched and the barrier
        // reports exactly that rank missing.
        let err = bsp
            .try_superstep(&pool, &mut states, |_r, s, _i, _o| {
                *s += 1;
            })
            .expect_err("rank death must fail the superstep");
        let SuperstepError::Failure(err) = err else {
            panic!("expected a structural failure, got {err}");
        };
        assert_eq!(err.superstep, 1);
        assert_eq!(err.dead_ranks, vec![2]);
        assert_eq!(err.dropped_messages, 0);
        assert_eq!(states, vec![2, 2, 1, 2]);
        assert_eq!(bsp.counters.supersteps, 2, "failed supersteps still count");
    }

    #[test]
    fn dropped_outbox_fails_the_superstep() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<u64> = Bsp::new(3);
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 0,
            rank: 1,
            kind: FaultKind::MessageDrop,
        }]));
        let mut states = vec![(); 3];
        let err = bsp
            .try_superstep(&pool, &mut states, |rank, _s, _i, out| {
                out.send((rank + 1) % 3, rank as u64);
            })
            .expect_err("message loss must fail the superstep");
        let SuperstepError::Failure(err) = err else {
            panic!("expected a structural failure, got {err}");
        };
        assert!(err.dead_ranks.is_empty());
        assert_eq!(err.dropped_messages, 1);
        assert_eq!(bsp.counters.dropped_messages, 1);
        // Rank 1's message never arrived; the other two were delivered.
        assert_eq!(bsp.pending(0), 1);
        assert_eq!(bsp.pending(1), 1);
        assert_eq!(bsp.pending(2), 0);
    }

    #[test]
    fn duplicates_are_suppressed_not_failures() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<u64> = Bsp::new(2);
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 0,
            rank: 0,
            kind: FaultKind::MessageDuplicate,
        }]));
        let mut states = vec![(); 2];
        bsp.try_superstep(&pool, &mut states, |rank, _s, _i, out| {
            out.send(1 - rank, 7u64);
            out.send(1 - rank, 8u64);
        })
        .expect("duplication is not a failure");
        // Exactly-once delivery: each inbox still holds one copy of each.
        assert_eq!(bsp.pending(0), 2);
        assert_eq!(bsp.pending(1), 2);
        assert_eq!(bsp.counters.duplicates_suppressed, 2);
        assert_eq!(bsp.counters.messages, 4, "suppressed copies not metered");
    }

    #[test]
    fn stalls_are_metered_only() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<()> = Bsp::new(2);
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 0,
            rank: 1,
            kind: FaultKind::SlowRank { stall_ns: 12_345 },
        }]));
        let mut states = vec![0u32; 2];
        bsp.try_superstep(&pool, &mut states, |_r, s, _i, _o| *s += 1)
            .expect("a stall is not a failure");
        assert_eq!(states, vec![1, 1]);
        assert_eq!(bsp.counters.stalls, 1);
        assert_eq!(bsp.counters.stall_ns, 12_345);
    }

    #[test]
    fn rebuilt_shrinks_and_carries_counters() {
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<u64> = Bsp::new(4);
        let mut states = vec![(); 4];
        bsp.superstep(&pool, &mut states, |rank, _s, _i, out| {
            out.send((rank + 1) % 4, 1u64);
        });
        assert_eq!(bsp.counters.messages, 4);
        let bsp = bsp.rebuilt(3);
        assert_eq!(bsp.n_ranks(), 3);
        // Counters carried, stale in-flight messages discarded.
        assert_eq!(bsp.counters.messages, 4);
        for r in 0..3 {
            assert_eq!(bsp.pending(r), 0);
        }
    }

    #[test]
    fn plan_ranks_wrap_after_shrink() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<()> = Bsp::new(4);
        // Rank 3 will not exist once the domain shrinks to 2 ranks; the
        // event must still fire (on rank 3 % 2 == 1).
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 0,
            rank: 3,
            kind: FaultKind::RankDeath,
        }]));
        let mut bsp = bsp.rebuilt(2);
        let mut states = vec![(); 2];
        let err = bsp
            .try_superstep(&pool, &mut states, |_r, _s, _i, _o| {})
            .expect_err("wrapped rank death");
        let SuperstepError::Failure(err) = err else {
            panic!("expected a structural failure, got {err}");
        };
        assert_eq!(err.dead_ranks, vec![1]);
    }

    /// A corruptible test message: one u64 whose bits are fully covered by
    /// the digest (the blanket no-op `Payload` impl applies to `u64` itself,
    /// so a newtype carries the real impl).
    #[derive(Clone, Debug, PartialEq, Default)]
    struct Word(u64);

    impl WireSize for Word {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl crate::crc::Payload for Word {
        fn digest(&self, crc: &mut crate::crc::Crc64) {
            crc.write_u64(self.0);
        }
        fn corrupt(&mut self, seed: u64) {
            self.0 ^= 1 << (seed % 64);
        }
        fn corruptible(&self) -> bool {
            true
        }
    }

    #[test]
    fn payload_corruption_is_healed_within_the_barrier() {
        use crate::fault::{FaultEvent, FaultPlan};
        let pool = WorkPool::new(0);
        let run = |plan: FaultPlan| -> (Vec<Vec<u64>>, CommCounters) {
            let mut bsp: Bsp<Word> = Bsp::new(3);
            bsp.inject_faults(plan);
            let mut states = vec![Vec::<u64>::new(); 3];
            bsp.superstep(&pool, &mut states, |rank, _s, _i, out| {
                for d in 0..3 {
                    if d != rank {
                        out.send(d, Word((rank * 100 + d) as u64));
                    }
                }
            });
            bsp.superstep(&pool, &mut states, |_rank, s, inbox, _o| {
                *s = inbox.iter().map(|w| w.0).collect();
            });
            (states, bsp.counters)
        };
        let (clean, clean_counters) = run(FaultPlan::none());
        let (healed, counters) = run(FaultPlan::from_events(vec![FaultEvent {
            superstep: 0,
            rank: 1,
            kind: FaultKind::PayloadCorruption { seed: 0xFEED },
        }]));
        assert_eq!(clean, healed, "healed delivery must be pristine");
        assert_eq!(counters.corruptions_landed, 1);
        assert_eq!(counters.corrupt_batches, 1, "the flip was detected");
        assert_eq!(counters.retransmits, 1, "and healed in-barrier");
        assert_eq!(clean_counters.corrupt_batches, 0);
        assert_eq!(clean_counters.integrity_bytes, 0, "defense off when clean");
        assert!(counters.integrity_bytes > 0, "verified batches ship CRCs");
    }

    #[test]
    fn exhausted_retransmit_budget_surfaces_integrity_failure() {
        use crate::fault::{FaultEvent, FaultPlan};
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<Word> = Bsp::new(2);
        bsp.set_retransmit_budget(0);
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 0,
            rank: 0,
            kind: FaultKind::PayloadCorruption { seed: 7 },
        }]));
        let mut states = vec![(); 2];
        let err = bsp
            .try_superstep(&pool, &mut states, |rank, _s, _i, out| {
                out.send(1 - rank, Word(rank as u64));
            })
            .expect_err("zero budget must fail the superstep");
        let SuperstepError::Integrity(err) = err else {
            panic!("expected an integrity failure, got {err}");
        };
        assert_eq!(err.superstep, 0);
        assert_eq!(err.corrupt_batches, 1);
        assert_eq!(err.healed, 0);
        assert_eq!(err.unhealed, 1);
        assert_eq!(bsp.counters.supersteps, 1, "failed supersteps still count");
    }

    #[test]
    fn state_corruption_is_collected_for_the_executor() {
        use crate::fault::{FaultEvent, FaultPlan};
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<Word> = Bsp::new(4);
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 1,
            rank: 6, // wraps to rank 2 on a 4-rank domain
            kind: FaultKind::StateCorruption { seed: 0xAB },
        }]));
        assert!(bsp.integrity_enabled(), "corruption plan engages integrity");
        let mut states = vec![(); 4];
        for _ in 0..3 {
            bsp.try_superstep(&pool, &mut states, |_r, _s, _i, _o| {})
                .expect("state corruption alone never fails a superstep");
        }
        let pending = bsp.take_pending_state_corruptions();
        assert_eq!(
            pending,
            vec![PendingStateCorruption {
                superstep: 1,
                rank: 2,
                seed: 0xAB
            }]
        );
        assert!(bsp.take_pending_state_corruptions().is_empty(), "drained");
    }

    #[test]
    fn shared_tally() {
        let t = SharedTally::new();
        let pool = WorkPool::new(3);
        pool.run_indexed(100, |_| t.add(1));
        assert_eq!(t.get(), 100);
        assert_eq!(t.reset(), 100);
        assert_eq!(t.get(), 0);
    }

    use crate::transport::{ProcessTransportConfig, WireFaultPlan};

    fn fast_transport() -> ProcessTransportConfig {
        ProcessTransportConfig::forked()
            .with_deadlines(500_000_000, 500_000_000)
            .with_retry(3, 100_000)
    }

    /// Run a fixed all-to-all workload; every rank accumulates everything it
    /// has ever received. Returns (per-rank sums, final counters).
    fn ring_workload(bsp: &mut Bsp<u64>, supersteps: u64) -> (Vec<u64>, CommCounters) {
        let pool = WorkPool::new(2);
        let n = bsp.n_ranks();
        let mut states = vec![0u64; n];
        for step in 0..supersteps {
            bsp.superstep(&pool, &mut states, |rank, s, inbox, out| {
                for m in inbox {
                    *s += m;
                }
                for dst in 0..n {
                    if dst != rank {
                        out.send(dst, (rank as u64) * 100 + step);
                    }
                }
            });
        }
        (states, bsp.counters)
    }

    #[test]
    fn process_transport_is_bitwise_identical_to_in_process() {
        let mut inproc: Bsp<u64> = Bsp::new(4);
        let (ref_states, ref_counters) = ring_workload(&mut inproc, 5);

        let mut wired: Bsp<u64> = Bsp::new(4);
        wired
            .attach_process_transport(fast_transport())
            .expect("spawn workers");
        let (states, counters) = ring_workload(&mut wired, 5);

        assert_eq!(states, ref_states, "delivered content diverged");
        assert_eq!(counters, ref_counters, "comm metering diverged");
        let wc = wired.transport_counters();
        assert!(wc.frames_sent > 0, "traffic actually crossed the wire");
        assert_eq!(wc.frames_received, wc.frames_sent);
    }

    #[test]
    fn rank_death_under_transport_is_a_real_worker_crash() {
        use crate::fault::FaultEvent;
        let pool = WorkPool::new(2);
        let mut bsp: Bsp<u64> = Bsp::new(3);
        bsp.attach_process_transport(fast_transport())
            .expect("spawn workers");
        bsp.inject_faults(FaultPlan::from_events(vec![FaultEvent {
            superstep: 1,
            rank: 1,
            kind: FaultKind::RankDeath,
        }]));
        let mut states = vec![0u64; 3];
        bsp.try_superstep(&pool, &mut states, |rank, _s, _i, out| {
            out.send((rank + 1) % 3, rank as u64);
        })
        .expect("superstep 0 healthy");
        let err = bsp
            .try_superstep(&pool, &mut states, |rank, _s, _i, out| {
                out.send((rank + 1) % 3, rank as u64);
            })
            .expect_err("rank 1 died");
        let SuperstepError::Failure(err) = err else {
            panic!("expected structural failure, got {err}");
        };
        assert_eq!(err.dead_ranks, vec![1], "wire and heartbeat agree");

        // The recovery path: rebuild over the survivors respawns workers
        // and the domain keeps exchanging over the wire.
        let mut bsp = bsp.rebuilt(2);
        assert!(bsp.has_transport(), "respawned, not degraded");
        let mut states = vec![0u64; 2];
        bsp.superstep(&pool, &mut states, |rank, _s, _i, out| {
            out.send(1 - rank, 7);
        });
        let got = bsp.superstep(&pool, &mut states, |_r, _s, inbox, _o| inbox.to_vec());
        assert_eq!(got, vec![vec![7], vec![7]]);
        assert!(bsp.transport_counters().workers_respawned >= 2);
    }

    #[test]
    fn unhealed_wire_garble_is_a_typed_integrity_failure() {
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<u64> = Bsp::new(2);
        let cfg = fast_transport()
            .with_retry(2, 50_000)
            .with_wire_faults(WireFaultPlan::none().garble(0, 1, 0xBAD, true));
        bsp.attach_process_transport(cfg).expect("spawn workers");
        let mut states = vec![0u64; 2];
        let err = bsp
            .try_superstep(&pool, &mut states, |rank, _s, _i, out| {
                out.send(1 - rank, rank as u64);
            })
            .expect_err("sticky garble exhausts the retry budget");
        let SuperstepError::Integrity(err) = err else {
            panic!("expected integrity failure, got {err}");
        };
        assert_eq!(err.unhealed, 1);
        assert_eq!(err.healed, 0);
        // The logical comm counters never saw the wire corruption.
        assert_eq!(bsp.counters.corrupt_batches, 0);
        assert_eq!(bsp.counters.retransmits, 0);
        assert!(bsp.transport_counters().wire_retransmits >= 1);
    }
}
