//! Superstep execution over logical ranks.
//!
//! A [`Bsp`] instance owns the per-rank inboxes for one message type. Each
//! [`Bsp::superstep`] call runs a rank function over all ranks in parallel,
//! giving each its inbox (messages addressed to it during the *previous*
//! superstep) and an [`Outbox`] for new messages. This mirrors UPC++ RPCs as
//! SIMCoV uses them: enqueue during compute, observe effects after the next
//! progress/barrier boundary.
//!
//! Delivery is canonicalized: a rank's inbox holds messages ordered by
//! (source rank, emission order within the source). Together with the
//! counter-based model RNG this makes multi-rank execution bit-reproducible.

use crate::counters::{CommCounters, WireSize};
use crate::pool::WorkPool;
#[cfg(feature = "trace")]
use crate::trace::SpanVolume;
use crate::trace::Trace;
use std::sync::Mutex;

/// Per-rank message staging for one superstep.
pub struct Outbox<M> {
    msgs: Vec<(usize, M)>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queue `msg` for delivery to `dest` at the next superstep boundary
    /// (the RPC analogue).
    pub fn send(&mut self, dest: usize, msg: M) {
        self.msgs.push((dest, msg));
    }

    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// A BSP domain over `n_ranks` logical ranks exchanging messages of type `M`.
pub struct Bsp<M> {
    n_ranks: usize,
    inboxes: Vec<Vec<M>>,
    pub counters: CommCounters,
    /// Per-superstep event log (disabled by default; see
    /// [`Bsp::enable_trace`]).
    pub trace: Trace,
}

impl<M: Send + Sync + WireSize> Bsp<M> {
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks >= 1);
        Bsp {
            n_ranks,
            inboxes: (0..n_ranks).map(|_| Vec::new()).collect(),
            counters: CommCounters::new(),
            trace: Trace::disabled(),
        }
    }

    /// Start recording one trace event per superstep (wall-clock plus
    /// delivered message/byte volume). Without the `trace` cargo feature
    /// this enables the log but supersteps record nothing.
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Messages currently pending for `rank` (delivered next superstep).
    pub fn pending(&self, rank: usize) -> usize {
        self.inboxes[rank].len()
    }

    /// Execute one superstep: `f(rank, state, inbox, outbox) -> R` runs for
    /// every rank (in parallel on `pool`), then all outboxes are delivered.
    /// Returns the per-rank results in rank order.
    pub fn superstep<S, R, F>(&mut self, pool: &WorkPool, states: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send + Default,
        F: Fn(usize, &mut S, &[M], &mut Outbox<M>) -> R + Sync,
    {
        assert_eq!(states.len(), self.n_ranks, "one state per rank");
        #[cfg(feature = "trace")]
        let span = self.trace.span("superstep");
        let inboxes = std::mem::replace(
            &mut self.inboxes,
            (0..self.n_ranks).map(|_| Vec::new()).collect(),
        );

        // Per-rank result and outbox slots, written exclusively by the rank
        // that owns them.
        let mut results: Vec<R> = (0..self.n_ranks).map(|_| R::default()).collect();
        let mut outboxes: Vec<Outbox<M>> = (0..self.n_ranks).map(|_| Outbox::new()).collect();

        {
            struct Slots<S, R, M> {
                states: *mut S,
                results: *mut R,
                outboxes: *mut Outbox<M>,
            }
            // SAFETY: each index is claimed by exactly one pool worker
            // (WorkPool::run_indexed guarantees single execution per index),
            // so each rank's state/result/outbox slot has a unique writer.
            unsafe impl<S, R, M> Sync for Slots<S, R, M> {}
            let slots = Slots {
                states: states.as_mut_ptr(),
                results: results.as_mut_ptr(),
                outboxes: outboxes.as_mut_ptr(),
            };
            let inboxes = &inboxes;
            let f = &f;
            // Bind a reference so the closure captures the whole `Slots`
            // (which is `Sync`) rather than its raw-pointer fields.
            let slots = &slots;
            pool.run_indexed(self.n_ranks, |rank| {
                // SAFETY: see Slots above — `rank` is unique per invocation.
                let (state, result, outbox) = unsafe {
                    (
                        &mut *slots.states.add(rank),
                        &mut *slots.results.add(rank),
                        &mut *slots.outboxes.add(rank),
                    )
                };
                *result = f(rank, state, &inboxes[rank], outbox);
            });
        }

        // Deliver: iterate sources in rank order so each destination inbox
        // is ordered by (source rank, emission order).
        let mut step_msgs = 0u64;
        let mut step_bytes = 0u64;
        let mut max_rank_msgs = 0u64;
        let mut max_rank_bytes = 0u64;
        let mut step_bulk_msgs = 0u64;
        let mut step_bulk_bytes = 0u64;
        for ob in outboxes {
            let mut rank_msgs = 0u64;
            let mut rank_bytes = 0u64;
            for (dest, msg) in ob.msgs {
                assert!(dest < self.n_ranks, "message to nonexistent rank {dest}");
                let sz = msg.wire_size() as u64;
                if msg.is_bulk() {
                    step_bulk_msgs += 1;
                    step_bulk_bytes += sz;
                } else {
                    rank_msgs += 1;
                    rank_bytes += sz;
                }
                self.inboxes[dest].push(msg);
            }
            step_msgs += rank_msgs;
            step_bytes += rank_bytes;
            max_rank_msgs = max_rank_msgs.max(rank_msgs);
            max_rank_bytes = max_rank_bytes.max(rank_bytes);
        }
        self.counters.supersteps += 1;
        self.counters.messages += step_msgs;
        self.counters.bytes += step_bytes;
        self.counters.bulk_messages += step_bulk_msgs;
        self.counters.bulk_bytes += step_bulk_bytes;
        self.counters.max_rank_messages = self.counters.max_rank_messages.max(max_rank_msgs);
        self.counters.max_rank_bytes = self.counters.max_rank_bytes.max(max_rank_bytes);
        #[cfg(feature = "trace")]
        self.trace.finish(
            span,
            SpanVolume::new(step_msgs, step_bytes, step_bulk_msgs, step_bulk_bytes),
        );
        results
    }
}

/// A shared accumulator for cheap global tallies from within a superstep
/// (used where UPC++ code would use an atomic fetch-add on a dist_object).
#[derive(Default)]
pub struct SharedTally {
    value: Mutex<u64>,
}

impl SharedTally {
    pub fn new() -> Self {
        Self::default()
    }
    fn lock(&self) -> std::sync::MutexGuard<'_, u64> {
        self.value.lock().unwrap_or_else(|e| e.into_inner())
    }
    pub fn add(&self, v: u64) {
        *self.lock() += v;
    }
    pub fn get(&self) -> u64 {
        *self.lock()
    }
    pub fn reset(&self) -> u64 {
        std::mem::take(&mut *self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_next_superstep_in_order() {
        let pool = WorkPool::new(2);
        let mut bsp: Bsp<u64> = Bsp::new(4);
        let mut states = vec![0u64; 4];

        // Superstep 1: every rank sends (rank*10 + k) for k in 0..3 to rank 0.
        bsp.superstep(&pool, &mut states, |rank, _s, inbox, out| {
            assert!(inbox.is_empty());
            for k in 0..3u64 {
                out.send(0, rank as u64 * 10 + k);
            }
        });

        // Superstep 2: rank 0 sees all 12 messages, ordered by source rank.
        let results = bsp.superstep(&pool, &mut states, |rank, _s, inbox, _out| {
            if rank == 0 {
                let expect: Vec<u64> = (0..4u64)
                    .flat_map(|r| (0..3).map(move |k| r * 10 + k))
                    .collect();
                assert_eq!(inbox, expect.as_slice());
                inbox.len() as u64
            } else {
                assert!(inbox.is_empty());
                0
            }
        });
        assert_eq!(results[0], 12);
        assert_eq!(bsp.counters.supersteps, 2);
        assert_eq!(bsp.counters.messages, 12);
        assert_eq!(bsp.counters.bytes, 12 * 8);
        assert_eq!(bsp.counters.max_rank_messages, 3);
    }

    #[test]
    fn states_are_mutated_per_rank() {
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<()> = Bsp::new(8);
        let mut states: Vec<u64> = (0..8).collect();
        bsp.superstep(&pool, &mut states, |rank, s, _inbox, _out| {
            *s += rank as u64;
        });
        for (rank, s) in states.iter().enumerate() {
            assert_eq!(*s, 2 * rank as u64);
        }
    }

    #[test]
    fn determinism_under_parallelism() {
        // Run the same two-superstep exchange with different pool sizes and
        // compare the full delivered inbox contents.
        let run_safe = |threads: usize| -> Vec<Vec<u32>> {
            let pool = WorkPool::new(threads);
            let mut bsp: Bsp<u32> = Bsp::new(6);
            let mut states = vec![Vec::<u32>::new(); 6];
            bsp.superstep(&pool, &mut states, |rank, _s, _i, out| {
                for d in 0..6 {
                    if d != rank {
                        out.send(d, (rank * 100 + d) as u32);
                    }
                }
            });
            bsp.superstep(&pool, &mut states, |_rank, s, inbox, _out| {
                *s = inbox.to_vec();
            });
            states
        };
        let a = run_safe(0);
        let b = run_safe(3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn send_to_invalid_rank_panics() {
        let pool = WorkPool::new(0);
        let mut bsp: Bsp<u8> = Bsp::new(2);
        let mut states = vec![(); 2];
        bsp.superstep(&pool, &mut states, |_r, _s, _i, out| out.send(5, 1));
    }

    #[test]
    fn shared_tally() {
        let t = SharedTally::new();
        let pool = WorkPool::new(3);
        pool.run_indexed(100, |_| t.add(1));
        assert_eq!(t.get(), 100);
        assert_eq!(t.reset(), 100);
        assert_eq!(t.get(), 0);
    }
}
