//! # pgas — a BSP-style PGAS runtime (UPC++ stand-in)
//!
//! SIMCoV's original parallelization uses UPC++ [Bachan et al., IPDPS'19]:
//! SPMD ranks, asynchronous remote procedure calls (RPCs), reductions and
//! GPU-to-GPU copies. This crate substitutes that runtime for a
//! single-process setting (see DESIGN.md): **logical ranks** execute
//! *supersteps* on a shared thread pool, RPCs become typed messages delivered
//! at superstep boundaries, and a tree allreduce combines per-rank
//! contributions.
//!
//! SIMCoV's communication is bulk-synchronous per timestep (compute →
//! exchange → apply), so the BSP restriction loses nothing while making
//! execution deterministic: inboxes are canonicalized by source rank, and
//! every rank's compute is a pure function of its state plus its inbox.
//!
//! Communication volumes (messages, bytes) are metered in [`CommCounters`];
//! the `gpusim` cost model converts them into simulated network time.
//!
//! Silent-data-corruption defense lives alongside the fail-stop fault model:
//! [`crc`] provides the zero-dependency CRC64 and the [`Payload`] integrity
//! trait, the mailbox layer checksums every coalesced batch when corruption
//! can strike, and [`fault`] schedules the corruption itself
//! ([`FaultKind::PayloadCorruption`] / [`FaultKind::StateCorruption`]).

pub mod bsp;
pub mod counters;
pub mod crc;
pub mod fault;
pub mod mailbox;
pub mod pool;
pub mod reduce;
pub mod trace;
pub mod transport;
pub mod wire;

pub use bsp::{Bsp, DEFAULT_RETRANSMIT_BUDGET};
pub use counters::CommCounters;
pub use crc::{crc64, Crc64, Payload};
pub use fault::{
    CorruptionKind, FaultEvent, FaultKind, FaultPlan, FaultRates, IntegrityAction,
    IntegrityDetector, IntegrityFailure, IntegrityRecord, PendingStateCorruption, RecoveryRecord,
    SplitMix64, SuperstepError, SuperstepFailure,
};
pub use mailbox::{ExchangeFaults, ExchangeVolume, Mailboxes, Outbox, BATCH_HEADER_BYTES};
pub use pool::WorkPool;
pub use reduce::{allreduce, tree_depth};
pub use trace::{Span, SpanVolume, Trace, TraceEvent};
pub use transport::{
    run_rank_worker, ExchangeTransport, ProcessTransport, ProcessTransportConfig, SpawnMode,
    TransportCounters, TransportMode, WireFault, WireFaultKind, WireFaultPlan, WireOutcome,
};
pub use wire::{decode_bucket, encode_bucket, WireCodec, WireReader, WireWrite};
