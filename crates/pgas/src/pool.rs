//! A persistent work-sharing thread pool.
//!
//! The substrate under both the BSP rank executor and the simulated-GPU
//! block executor. Work items are claimed from an atomic counter (dynamic
//! self-scheduling), so uneven per-item cost — the norm for an ABM with
//! localized activity — balances automatically.
//!
//! The pool is deliberately tiny and allocation-free on the hot path: one
//! `Arc` per `run_indexed` call. With `n_threads == 0` (or 1 available core)
//! work runs inline on the caller, which keeps single-core CI environments
//! honest.
//!
//! ## Panic safety
//!
//! A panicking work item must not deadlock the pool or poison it for later
//! jobs. Every claimed index decrements `remaining` through a drop guard, so
//! the coordinator's completion wait always terminates; the first panic
//! payload is captured, the rest of the job is cancelled (claimed indices
//! are skipped), and the payload is re-raised on the coordinator thread once
//! all workers have quiesced. The coordinator itself never unwinds out of
//! `run_indexed` while workers could still call the job closure — that
//! closure is borrowed from the caller's stack frame.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lock a mutex, ignoring poison: the pool catches work-item panics itself,
/// and none of the guarded sections can panic while holding the lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Job {
    /// Work function `f(index)` for indices in `0..n_items`, borrowed from
    /// the coordinator's stack frame. Valid for the whole job lifetime
    /// because `run_indexed` does not return (or unwind) until `remaining`
    /// reaches zero; never dereferenced after the last index completes.
    work: *const (dyn Fn(usize) + Send + Sync),
    n_items: usize,
    next: AtomicUsize,
    remaining: AtomicUsize,
    /// Set by the first panicking item; cancels the rest of the job.
    panicked: AtomicBool,
    /// The first panic payload, re-raised by the coordinator.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `work` points at an `F: Fn(usize) + Send + Sync` owned by the
// coordinator, which outlives every dereference (see the field docs).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Shared {
    /// Current job (generation-stamped) or `None`.
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    work_ready: Condvar,
    done: Condvar,
    shutdown: AtomicUsize,
}

/// A fixed-size pool executing indexed parallel-for jobs.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl WorkPool {
    /// Create a pool with `n_threads` worker threads. `0` means "run inline
    /// on the caller" (no threads spawned).
    pub fn new(n_threads: usize) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new((0, None)),
            work_ready: Condvar::new(),
            done: Condvar::new(),
            shutdown: AtomicUsize::new(0),
        });
        let workers = (0..n_threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(sh))
            })
            .collect();
        WorkPool {
            shared,
            workers,
            n_threads,
        }
    }

    /// Pool sized to the machine (minus one core for the coordinator), at
    /// least 1 worker when multiple cores exist, inline otherwise.
    pub fn host_sized() -> Self {
        let n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        WorkPool::new(n.saturating_sub(1))
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run `f(i)` for every `i in 0..n_items`, potentially in parallel, and
    /// return when all items are complete. The caller participates in the
    /// work, so the pool makes progress even with zero workers.
    ///
    /// If any item panics, the job is cancelled (not-yet-started items are
    /// skipped), all in-flight items are allowed to finish, and the first
    /// panic is re-raised here. The pool itself stays usable.
    pub fn run_indexed<F>(&self, n_items: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if n_items == 0 {
            return;
        }
        if self.n_threads == 0 || n_items == 1 {
            for i in 0..n_items {
                f(i);
            }
            return;
        }
        // Erase the borrow's lifetime for storage in the shared job slot.
        // SAFETY: see `Job::work` — the pointer is only dereferenced while
        // this frame is pinned below the completion wait.
        let work_ref: &(dyn Fn(usize) + Send + Sync) = &f;
        let work: *const (dyn Fn(usize) + Send + Sync) = unsafe { std::mem::transmute(work_ref) };
        let job = Arc::new(Job {
            work,
            n_items,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_items),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        });

        {
            let mut slot = lock(&self.shared.slot);
            slot.0 += 1;
            slot.1 = Some(Arc::clone(&job));
            self.shared.work_ready.notify_all();
        }

        // The caller helps drain the job. `drain` catches item panics, so
        // this never unwinds while workers still hold the `work` pointer.
        drain(&job);

        // Wait for stragglers.
        let mut slot = lock(&self.shared.slot);
        while job.remaining.load(Ordering::Acquire) != 0 {
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.1 = None;
        drop(slot);

        // All items are accounted for; no thread will touch `f` again.
        let payload = lock(&job.payload).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Decrements `Job::remaining` when dropped, including during an unwind —
/// this is what makes a panicking work item unable to strand the
/// coordinator on the `done` condvar.
struct CompletionGuard<'a>(&'a Job);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.0.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

fn drain(job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_items {
            break;
        }
        let _guard = CompletionGuard(job);
        if job.panicked.load(Ordering::Relaxed) {
            // Job cancelled: account for the claimed index without running.
            continue;
        }
        // SAFETY: `i < n_items`, so the job is not yet complete and the
        // coordinator is still pinned inside `run_indexed`; `work` is valid.
        let work = unsafe { &*job.work };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| work(i))) {
            job.panicked.store(true, Ordering::Relaxed);
            let mut slot = lock(&job.payload);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

fn worker_loop(sh: Arc<Shared>) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut slot = lock(&sh.slot);
            loop {
                if sh.shutdown.load(Ordering::Acquire) != 0 {
                    return;
                }
                if slot.0 != seen_gen {
                    seen_gen = slot.0;
                    if let Some(job) = slot.1.clone() {
                        break job;
                    }
                }
                slot = sh.work_ready.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        drain(&job);
        // Wake the coordinator if this worker finished the last item.
        if job.remaining.load(Ordering::Acquire) == 0 {
            let _guard = lock(&sh.slot);
            sh.done.notify_all();
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(1, Ordering::Release);
        {
            let _guard = lock(&self.shared.slot);
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn inline_pool_runs_everything() {
        let pool = WorkPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run_indexed(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn threaded_pool_runs_everything() {
        let pool = WorkPool::new(3);
        let sum = AtomicU64::new(0);
        pool.run_indexed(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499_500);
    }

    #[test]
    fn repeated_jobs_do_not_cross_talk() {
        let pool = WorkPool::new(2);
        for round in 0..50u64 {
            let count = AtomicU64::new(0);
            pool.run_indexed(64, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        let pool = WorkPool::new(2);
        pool.run_indexed(0, |_| panic!("must not run"));
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let pool = WorkPool::new(4);
        let n = 500;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run_indexed(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn host_sized_constructs() {
        let pool = WorkPool::host_sized();
        let sum = AtomicU64::new(0);
        pool.run_indexed(10, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn uneven_work_completes() {
        let pool = WorkPool::new(3);
        let total = AtomicU64::new(0);
        pool.run_indexed(32, |i| {
            // Wildly uneven per-item cost.
            let mut acc = 0u64;
            for k in 0..(i * 10_000) {
                acc = acc.wrapping_add(k as u64);
            }
            total.fetch_add(acc.wrapping_mul(0).wrapping_add(1), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panicking_item_neither_deadlocks_nor_poisons() {
        let pool = WorkPool::new(3);
        // The panic must propagate to the caller with its payload intact...
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, |i| {
                if i == 17 {
                    panic!("item 17 exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "item 17 exploded");

        // ...and the pool must remain fully usable afterwards.
        for _ in 0..10 {
            let count = AtomicU64::new(0);
            pool.run_indexed(128, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 128);
        }
    }

    #[test]
    fn panic_on_every_item_still_terminates() {
        let pool = WorkPool::new(2);
        for round in 0..5 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.run_indexed(32, |_| panic!("boom"));
            }));
            assert!(r.is_err(), "round {round} must propagate the panic");
        }
        // Still functional.
        let sum = AtomicU64::new(0);
        pool.run_indexed(8, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn inline_pool_propagates_panics() {
        let pool = WorkPool::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(4, |i| {
                if i == 2 {
                    panic!("inline boom");
                }
            });
        }));
        assert!(r.is_err());
        // Usable afterwards.
        pool.run_indexed(4, |_| {});
    }
}
