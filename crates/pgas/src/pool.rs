//! A persistent work-sharing thread pool.
//!
//! The substrate under both the BSP rank executor and the simulated-GPU
//! block executor. Work items are claimed from an atomic counter (dynamic
//! self-scheduling), so uneven per-item cost — the norm for an ABM with
//! localized activity — balances automatically.
//!
//! The pool is deliberately tiny and allocation-free on the hot path: one
//! `Arc` per `run_indexed` call. With `n_threads == 0` (or 1 available core)
//! work runs inline on the caller, which keeps single-core CI environments
//! honest.
//!
//! ## Concurrent jobs
//!
//! Multiple coordinator threads may call [`WorkPool::run_indexed`] on one
//! shared pool at the same time — the sweep job server runs many
//! simulations over a single pool this way. Active jobs sit in a queue;
//! idle workers scan it for any job with unclaimed indices and help drain
//! it, so a pool shared by several simulations load-balances across all of
//! them. Every coordinator also self-drains its own job, which guarantees
//! progress even when all workers are busy elsewhere (and makes nested
//! `run_indexed` calls from inside a work item deadlock-free).
//!
//! ## Panic safety
//!
//! A panicking work item must not deadlock the pool or poison it for later
//! jobs. Every claimed index decrements `remaining` through a drop guard, so
//! the coordinator's completion wait always terminates; the first panic
//! payload is captured, the rest of the job is cancelled (claimed indices
//! are skipped), and the payload is re-raised on the coordinator thread once
//! all workers have quiesced. The coordinator itself never unwinds out of
//! `run_indexed` while workers could still call the job closure — that
//! closure is borrowed from the caller's stack frame. A panic in one job
//! never cancels or perturbs a concurrently running job.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lock a mutex, ignoring poison: the pool catches work-item panics itself,
/// and none of the guarded sections can panic while holding the lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Job {
    /// Work function `f(index)` for indices in `0..n_items`, borrowed from
    /// the coordinator's stack frame. Valid for the whole job lifetime
    /// because `run_indexed` does not return (or unwind) until `remaining`
    /// reaches zero; never dereferenced after the last index completes.
    work: *const (dyn Fn(usize) + Send + Sync),
    n_items: usize,
    next: AtomicUsize,
    remaining: AtomicUsize,
    /// Set by the first panicking item; cancels the rest of the job.
    panicked: AtomicBool,
    /// The first panic payload, re-raised by the coordinator.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Job {
    /// Whether the job still has unclaimed indices a helper could take.
    fn claimable(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n_items
    }
}

// SAFETY: `work` points at an `F: Fn(usize) + Send + Sync` owned by the
// coordinator, which outlives every dereference (see the field docs).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Shared {
    /// All jobs currently in flight, oldest first. Coordinators push on
    /// submit and remove their own entry once `remaining` hits zero;
    /// workers scan for the first job with unclaimed indices.
    queue: Mutex<Vec<Arc<Job>>>,
    work_ready: Condvar,
    done: Condvar,
    shutdown: AtomicUsize,
}

/// A fixed-size pool executing indexed parallel-for jobs. Shareable across
/// threads (`&self` API): concurrent `run_indexed` calls interleave their
/// items over the same workers.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl WorkPool {
    /// Create a pool with `n_threads` worker threads. `0` means "run inline
    /// on the caller" (no threads spawned).
    pub fn new(n_threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            work_ready: Condvar::new(),
            done: Condvar::new(),
            shutdown: AtomicUsize::new(0),
        });
        let workers = (0..n_threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(sh))
            })
            .collect();
        WorkPool {
            shared,
            workers,
            n_threads,
        }
    }

    /// Pool sized to the machine (minus one core for the coordinator), at
    /// least 1 worker when multiple cores exist, inline otherwise.
    pub fn host_sized() -> Self {
        let n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        WorkPool::new(n.saturating_sub(1))
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run `f(i)` for every `i in 0..n_items`, potentially in parallel, and
    /// return when all items are complete. The caller participates in the
    /// work, so the pool makes progress even with zero workers — or with
    /// every worker busy on another coordinator's job.
    ///
    /// If any item panics, the job is cancelled (not-yet-started items are
    /// skipped), all in-flight items are allowed to finish, and the first
    /// panic is re-raised here. The pool itself stays usable, and other
    /// jobs in flight are unaffected.
    pub fn run_indexed<F>(&self, n_items: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if n_items == 0 {
            return;
        }
        if self.n_threads == 0 || n_items == 1 {
            for i in 0..n_items {
                f(i);
            }
            return;
        }
        // Erase the borrow's lifetime for storage in the shared job queue.
        // SAFETY: see `Job::work` — the pointer is only dereferenced while
        // this frame is pinned below the completion wait.
        let work_ref: &(dyn Fn(usize) + Send + Sync) = &f;
        let work: *const (dyn Fn(usize) + Send + Sync) = unsafe { std::mem::transmute(work_ref) };
        let job = Arc::new(Job {
            work,
            n_items,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_items),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        });

        {
            let mut queue = lock(&self.shared.queue);
            queue.push(Arc::clone(&job));
            self.shared.work_ready.notify_all();
        }

        // The caller helps drain its own job. `drain` catches item panics,
        // so this never unwinds while workers still hold the `work` pointer.
        drain(&job);

        // Wait for stragglers, then retire the job from the queue.
        let mut queue = lock(&self.shared.queue);
        while job.remaining.load(Ordering::Acquire) != 0 {
            queue = self
                .shared
                .done
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
        queue.retain(|j| !Arc::ptr_eq(j, &job));
        drop(queue);

        // All items are accounted for; no thread will touch `f` again.
        let payload = lock(&job.payload).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Decrements `Job::remaining` when dropped, including during an unwind —
/// this is what makes a panicking work item unable to strand the
/// coordinator on the `done` condvar.
struct CompletionGuard<'a>(&'a Job);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.0.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

fn drain(job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_items {
            break;
        }
        let _guard = CompletionGuard(job);
        if job.panicked.load(Ordering::Relaxed) {
            // Job cancelled: account for the claimed index without running.
            continue;
        }
        // SAFETY: `i < n_items`, so the job is not yet complete and the
        // coordinator is still pinned inside `run_indexed`; `work` is valid.
        let work = unsafe { &*job.work };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| work(i))) {
            job.panicked.store(true, Ordering::Relaxed);
            let mut slot = lock(&job.payload);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

fn worker_loop(sh: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&sh.queue);
            loop {
                if sh.shutdown.load(Ordering::Acquire) != 0 {
                    return;
                }
                // Oldest claimable job first: fully-claimed jobs awaiting
                // their coordinator's retire pass are skipped.
                if let Some(job) = queue.iter().find(|j| j.claimable()).cloned() {
                    break job;
                }
                queue = sh.work_ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        drain(&job);
        // Wake coordinators if this worker finished the last item of a job.
        // `notify_all` because several coordinators share the `done` condvar.
        if job.remaining.load(Ordering::Acquire) == 0 {
            let _guard = lock(&sh.queue);
            sh.done.notify_all();
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(1, Ordering::Release);
        {
            let _guard = lock(&self.shared.queue);
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn inline_pool_runs_everything() {
        let pool = WorkPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run_indexed(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn threaded_pool_runs_everything() {
        let pool = WorkPool::new(3);
        let sum = AtomicU64::new(0);
        pool.run_indexed(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499_500);
    }

    #[test]
    fn repeated_jobs_do_not_cross_talk() {
        let pool = WorkPool::new(2);
        for round in 0..50u64 {
            let count = AtomicU64::new(0);
            pool.run_indexed(64, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        let pool = WorkPool::new(2);
        pool.run_indexed(0, |_| panic!("must not run"));
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let pool = WorkPool::new(4);
        let n = 500;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run_indexed(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn host_sized_constructs() {
        let pool = WorkPool::host_sized();
        let sum = AtomicU64::new(0);
        pool.run_indexed(10, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn uneven_work_completes() {
        let pool = WorkPool::new(3);
        let total = AtomicU64::new(0);
        pool.run_indexed(32, |i| {
            // Wildly uneven per-item cost.
            let mut acc = 0u64;
            for k in 0..(i * 10_000) {
                acc = acc.wrapping_add(k as u64);
            }
            total.fetch_add(acc.wrapping_mul(0).wrapping_add(1), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panicking_item_neither_deadlocks_nor_poisons() {
        let pool = WorkPool::new(3);
        // The panic must propagate to the caller with its payload intact...
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, |i| {
                if i == 17 {
                    panic!("item 17 exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "item 17 exploded");

        // ...and the pool must remain fully usable afterwards.
        for _ in 0..10 {
            let count = AtomicU64::new(0);
            pool.run_indexed(128, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 128);
        }
    }

    #[test]
    fn panic_on_every_item_still_terminates() {
        let pool = WorkPool::new(2);
        for round in 0..5 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.run_indexed(32, |_| panic!("boom"));
            }));
            assert!(r.is_err(), "round {round} must propagate the panic");
        }
        // Still functional.
        let sum = AtomicU64::new(0);
        pool.run_indexed(8, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn inline_pool_propagates_panics() {
        let pool = WorkPool::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(4, |i| {
                if i == 2 {
                    panic!("inline boom");
                }
            });
        }));
        assert!(r.is_err());
        // Usable afterwards.
        pool.run_indexed(4, |_| {});
    }

    #[test]
    fn concurrent_coordinators_share_one_pool() {
        let pool = Arc::new(WorkPool::new(3));
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let sum = AtomicU64::new(0);
                pool.run_indexed(500, |i| {
                    sum.fetch_add(i as u64 + t, Ordering::Relaxed);
                });
                sum.load(Ordering::Relaxed)
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            let got = h.join().expect("coordinator panicked");
            assert_eq!(got, 124_750 + 500 * t as u64, "coordinator {t}");
        }
    }

    #[test]
    fn panic_in_one_job_does_not_cancel_another() {
        let pool = Arc::new(WorkPool::new(3));
        let ok_pool = Arc::clone(&pool);
        let ok = std::thread::spawn(move || {
            let count = AtomicU64::new(0);
            for _ in 0..20 {
                ok_pool.run_indexed(256, |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            count.load(Ordering::Relaxed)
        });
        for _ in 0..20 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.run_indexed(64, |i| {
                    if i % 7 == 0 {
                        panic!("sacrificial job");
                    }
                });
            }));
            assert!(r.is_err());
        }
        assert_eq!(ok.join().expect("healthy job panicked"), 20 * 256);
    }

    #[test]
    fn nested_run_indexed_makes_progress() {
        // A work item submitting a sub-job must not deadlock: coordinators
        // self-drain, so the nested job completes even with all workers
        // pinned on outer items.
        let pool = Arc::new(WorkPool::new(2));
        let total = AtomicU64::new(0);
        let inner = &pool;
        pool.run_indexed(8, |_| {
            inner.run_indexed(16, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
    }
}
