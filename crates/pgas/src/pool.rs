//! A persistent work-sharing thread pool.
//!
//! The substrate under both the BSP rank executor and the simulated-GPU
//! block executor. Work items are claimed from an atomic counter (dynamic
//! self-scheduling), so uneven per-item cost — the norm for an ABM with
//! localized activity — balances automatically.
//!
//! The pool is deliberately tiny and allocation-free on the hot path: one
//! `Arc` per `run_indexed` call. With `n_threads == 0` (or 1 available core)
//! work runs inline on the caller, which keeps single-core CI environments
//! honest.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

struct Job {
    /// Erased work function: `f(index)` for indices in `0..n_items`.
    work: Box<dyn Fn(usize) + Send + Sync>,
    n_items: usize,
    next: AtomicUsize,
    remaining: AtomicUsize,
}

struct Shared {
    /// Current job (generation-stamped) or `None`.
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    work_ready: Condvar,
    done: Condvar,
    shutdown: AtomicUsize,
}

/// A fixed-size pool executing indexed parallel-for jobs.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl WorkPool {
    /// Create a pool with `n_threads` worker threads. `0` means "run inline
    /// on the caller" (no threads spawned).
    pub fn new(n_threads: usize) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new((0, None)),
            work_ready: Condvar::new(),
            done: Condvar::new(),
            shutdown: AtomicUsize::new(0),
        });
        let workers = (0..n_threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(sh))
            })
            .collect();
        WorkPool {
            shared,
            workers,
            n_threads,
        }
    }

    /// Pool sized to the machine (minus one core for the coordinator), at
    /// least 1 worker when multiple cores exist, inline otherwise.
    pub fn host_sized() -> Self {
        let n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        WorkPool::new(n.saturating_sub(1))
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run `f(i)` for every `i in 0..n_items`, potentially in parallel, and
    /// return when all items are complete. The caller participates in the
    /// work, so the pool makes progress even with zero workers.
    pub fn run_indexed<F>(&self, n_items: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if n_items == 0 {
            return;
        }
        if self.n_threads == 0 || n_items == 1 {
            for i in 0..n_items {
                f(i);
            }
            return;
        }
        // SAFETY of the lifetime erasure below: the job is fully drained
        // (remaining == 0) before this function returns, so the borrow of
        // `f` never escapes the call.
        let work: Box<dyn Fn(usize) + Send + Sync + '_> = Box::new(f);
        let work: Box<dyn Fn(usize) + Send + Sync + 'static> =
            unsafe { std::mem::transmute(work) };
        let job = Arc::new(Job {
            work,
            n_items,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_items),
        });

        {
            let mut slot = self.shared.slot.lock();
            slot.0 += 1;
            slot.1 = Some(Arc::clone(&job));
            self.shared.work_ready.notify_all();
        }

        // The caller helps drain the job.
        drain(&job);

        // Wait for stragglers.
        let mut slot = self.shared.slot.lock();
        while job.remaining.load(Ordering::Acquire) != 0 {
            self.shared.done.wait(&mut slot);
        }
        slot.1 = None;
    }
}

fn drain(job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_items {
            break;
        }
        (job.work)(i);
        job.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

fn worker_loop(sh: Arc<Shared>) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut slot = sh.slot.lock();
            loop {
                if sh.shutdown.load(Ordering::Acquire) != 0 {
                    return;
                }
                if slot.0 != seen_gen {
                    seen_gen = slot.0;
                    if let Some(job) = slot.1.clone() {
                        break job;
                    }
                }
                sh.work_ready.wait(&mut slot);
            }
        };
        drain(&job);
        // Wake the coordinator if this worker finished the last item.
        if job.remaining.load(Ordering::Acquire) == 0 {
            let _guard = sh.slot.lock();
            sh.done.notify_all();
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(1, Ordering::Release);
        {
            let _guard = self.shared.slot.lock();
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn inline_pool_runs_everything() {
        let pool = WorkPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run_indexed(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn threaded_pool_runs_everything() {
        let pool = WorkPool::new(3);
        let sum = AtomicU64::new(0);
        pool.run_indexed(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499_500);
    }

    #[test]
    fn repeated_jobs_do_not_cross_talk() {
        let pool = WorkPool::new(2);
        for round in 0..50u64 {
            let count = AtomicU64::new(0);
            pool.run_indexed(64, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        let pool = WorkPool::new(2);
        pool.run_indexed(0, |_| panic!("must not run"));
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let pool = WorkPool::new(4);
        let n = 500;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run_indexed(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn host_sized_constructs() {
        let pool = WorkPool::host_sized();
        let sum = AtomicU64::new(0);
        pool.run_indexed(10, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn uneven_work_completes() {
        let pool = WorkPool::new(3);
        let total = AtomicU64::new(0);
        pool.run_indexed(32, |i| {
            // Wildly uneven per-item cost.
            let mut acc = 0u64;
            for k in 0..(i * 10_000) {
                acc = acc.wrapping_add(k as u64);
            }
            total.fetch_add(acc.wrapping_mul(0).wrapping_add(1), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }
}
