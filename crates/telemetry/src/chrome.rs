//! Chrome trace-event JSON exporter.
//!
//! Emits the subset of the trace-event format that `chrome://tracing` and
//! Perfetto load: complete spans (`ph:"X"`, microsecond `ts`/`dur`), instant
//! markers (`ph:"i"`), and thread-name metadata (`ph:"M"`). The run maps to
//! one process with one track (tid) per telemetry track — tid 0 is the
//! driver/runtime, tid `r+1` is rank `r` — plus a dedicated GPU-phase track
//! after the rank tracks that collects every [`SpanKind::Kernel`] event, so
//! kernel phases read as one merged GPU timeline the way the paper's
//! profiles present them.
//!
//! Span nesting survives export: each `args` carries the span's `id` and
//! `parent` so tools (and the verify-gate validator) can reconstruct the
//! step → superstep → rank-phase → kernel hierarchy exactly.

use crate::health::{HealthKind, HealthRecord};
use crate::span::{SpanKind, Telemetry};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds to the format's microsecond floats, exact to 1ns.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_thread_name(out: &mut String, tid: usize, name: &str, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{tid},"args":{{"name":"{}"}}}}"#,
        escape_json(name)
    );
    let _ = write!(
        out,
        ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
    );
}

/// Render the telemetry stream (plus health findings) as Chrome trace JSON.
///
/// Reader half of the ring contract: call after the run, while no
/// instrumentation is active.
pub fn render(tel: &Telemetry, health: &[HealthRecord]) -> String {
    let events = tel.events();
    let n_tracks = tel.n_tracks();
    let gpu_tid = n_tracks.max(1); // after the last rank track
    let mut out = String::with_capacity(events.len() * 160 + 4096);
    out.push_str("{\n\"traceEvents\": [\n");
    let mut first = true;

    push_thread_name(&mut out, 0, "driver", &mut first);
    for r in 1..n_tracks {
        push_thread_name(&mut out, r, &format!("rank {}", r - 1), &mut first);
    }
    if events.iter().any(|e| e.kind == SpanKind::Kernel) {
        push_thread_name(&mut out, gpu_tid, "gpu phases", &mut first);
    }

    for e in &events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let tid = if e.kind == SpanKind::Kernel {
            gpu_tid
        } else {
            e.track as usize
        };
        match e.kind {
            SpanKind::Instant => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","cat":"{}","ph":"i","s":"t","pid":0,"tid":{tid},"ts":{},"args":{{"id":{},"parent":{},"level":"{}","a":{},"b":{}}}}}"#,
                    escape_json(e.label),
                    e.kind.name(),
                    us(e.start_ns),
                    e.id,
                    e.parent,
                    e.kind.name(),
                    e.a,
                    e.b
                );
            }
            _ => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","cat":"{}","ph":"X","pid":0,"tid":{tid},"ts":{},"dur":{},"args":{{"id":{},"parent":{},"level":"{}","a":{},"b":{}}}}}"#,
                    escape_json(e.label),
                    e.kind.name(),
                    us(e.start_ns),
                    us(e.dur_ns),
                    e.id,
                    e.parent,
                    e.kind.name(),
                    e.a,
                    e.b
                );
            }
        }
    }

    for h in health {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let (a, b) = match &h.kind {
            HealthKind::Straggler { rank, wall_ns, .. } => (*rank as u64, *wall_ns),
            HealthKind::LoadImbalance {
                max_unit,
                max_active,
                ..
            } => (*max_unit as u64, *max_active),
            HealthKind::CommSpike { bytes, .. } => (h.step, *bytes),
        };
        let _ = write!(
            out,
            r#"{{"name":"{}","cat":"health","ph":"i","s":"g","pid":0,"tid":0,"ts":{},"args":{{"step":{},"superstep":{},"a":{a},"b":{b}}}}}"#,
            h.kind.label(),
            us(h.at_ns),
            h.step,
            h.superstep
        );
    }

    let _ = write!(
        out,
        "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{\"dropped_events\": {}, \"recorded_events\": {}}}\n}}\n",
        tel.dropped(),
        tel.recorded()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    #[test]
    fn render_produces_nested_tracks() {
        let t = Telemetry::enabled(3, 64);
        let step = t.open();
        t.set_step_parent(step.id);
        let ss = t.open();
        let rank = t.open();
        t.set_track_parent(2, rank.id);
        let k = t.open();
        t.kernel_span(2, "kernel:diffusion", k, 1, 2);
        t.close(2, "compute", SpanKind::RankPhase, ss.id, rank, 0, 0);
        t.close(0, "superstep", SpanKind::Superstep, step.id, ss, 3, 4);
        t.close(0, "step", SpanKind::Step, 0, step, 0, 0);
        let health = vec![HealthRecord {
            step: 0,
            superstep: 0,
            at_ns: 500,
            kind: HealthKind::Straggler {
                rank: 1,
                wall_ns: 9000,
                baseline_ns: 100,
                z: 7.5,
            },
        }];
        let json = render(&t, &health);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"kernel:diffusion\""));
        // Kernel events land on the dedicated GPU track (after rank tracks).
        assert!(json.contains("\"cat\":\"kernel\",\"ph\":\"X\",\"pid\":0,\"tid\":3"));
        assert!(json.contains("\"name\":\"gpu phases\""));
        assert!(json.contains("\"name\":\"health:straggler\""));
        assert!(json.contains("\"level\":\"superstep\""));
        // Balanced braces/brackets as a cheap well-formedness check; the
        // full parser round-trip lives in the bench crate's tests.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn labels_are_json_escaped() {
        let t = Telemetry::enabled(1, 8);
        let s = t.open();
        t.close(0, "weird\"label\\with\nstuff", SpanKind::Step, 0, s, 0, 0);
        let json = render(&t, &[]);
        assert!(json.contains(r#"weird\"label\\with\nstuff"#));
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_precision() {
        assert_eq!(us(1_234_567), "1234.567");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(0), "0.000");
    }
}
