//! Prometheus text exposition (version 0.0.4) for a [`Registry`].
//!
//! Output is deterministic for a given registry state: families appear in
//! first-registration order, `# HELP`/`# TYPE` are emitted once per family,
//! and label values are escaped per the exposition spec (`\\`, `\"`, `\n`).
//! Histograms render cumulative `_bucket{le="..."}` series over the log₂
//! bucket bounds, trimmed to the occupied range, plus `_sum` and `_count`.

use crate::registry::{MetricValue, Registry};
use std::fmt::Write as _;

/// Escape a label value: backslash, double quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape HELP text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
}

fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render the registry in Prometheus text exposition format.
pub fn render(reg: &Registry) -> String {
    let snap = reg.snapshot();
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for m in &snap {
        if !seen.contains(&m.name.as_str()) {
            seen.push(&m.name);
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&m.name);
                render_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricValue::Gauge(v) => {
                out.push_str(&m.name);
                render_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {}", render_f64(*v));
            }
            MetricValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                // Cumulative buckets over the occupied log₂ range (always at
                // least the first bucket so empty histograms stay parseable).
                let top = buckets
                    .iter()
                    .rposition(|&b| b > 0)
                    .map_or(0, |i| (i + 1).min(buckets.len() - 1));
                let mut cum = 0u64;
                for (i, b) in buckets.iter().enumerate().take(top + 1) {
                    cum += b;
                    let le = if i >= 63 {
                        "+Inf".to_string()
                    } else {
                        format!("{}", 1u64 << i)
                    };
                    let _ = write!(out, "{}_bucket", m.name);
                    render_labels(&mut out, &m.labels, Some(("le", &le)));
                    let _ = writeln!(out, " {cum}");
                }
                if top < 63 {
                    let _ = write!(out, "{}_bucket", m.name);
                    render_labels(&mut out, &m.labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, " {count}");
                }
                let _ = write!(out, "{}_sum", m.name);
                render_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {sum}");
                let _ = write!(out, "{}_count", m.name);
                render_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {count}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_escapes_label_values() {
        let r = Registry::new();
        let c = r.counter_with(
            "weird_total",
            "has \"quotes\" and\nnewlines",
            &[("path", "a\\b\"c\nd")],
        );
        c.add(7);
        let text = render(&r);
        assert!(
            text.contains(r#"weird_total{path="a\\b\"c\nd"} 7"#),
            "label escaping failed:\n{text}"
        );
        assert!(
            text.contains("# HELP weird_total has \"quotes\" and\\nnewlines"),
            "help escaping failed:\n{text}"
        );
        // The body must stay line-oriented: no raw newline inside a series.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn families_render_once_with_all_series() {
        let r = Registry::new();
        r.counter_with("msgs_total", "messages", &[("rank", "0")])
            .add(3);
        r.counter_with("msgs_total", "messages", &[("rank", "1")])
            .add(4);
        let text = render(&r);
        assert_eq!(text.matches("# TYPE msgs_total counter").count(), 1);
        assert!(text.contains("msgs_total{rank=\"0\"} 3"));
        assert!(text.contains("msgs_total{rank=\"1\"} 4"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", "latency");
        h.observe(1);
        h.observe(1);
        h.observe(3);
        let text = render(&r);
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 5"));
        assert!(text.contains("lat_ns_count 3"));
    }

    #[test]
    fn gauge_renders_special_floats() {
        let r = Registry::new();
        r.gauge("skew", "s").set(f64::INFINITY);
        let text = render(&r);
        assert!(text.contains("skew +Inf"));
    }
}
