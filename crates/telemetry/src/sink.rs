//! The unified per-step record stream: generic [`StepRecord`],
//! [`MetricsSink`], and [`SharedSink`].
//!
//! Every executor emits one structured record per simulation step. The
//! model-level shape of that record is executor-independent, but three
//! fields carry layer-specific payloads (per-phase device work, completed
//! fault recoveries, integrity events) whose types live *above* this crate
//! in the dependency graph. The record is therefore generic over those
//! payloads; `gpusim` pins the concrete aliases (`StepRecord` =
//! `simcov_telemetry::StepRecord<PhaseSnapshot, RecoveryRecord,
//! IntegrityRecord>`) and re-exports them from the old paths, so downstream
//! code keeps compiling unchanged while both executor paths now share one
//! definition.

use std::sync::{Arc, Mutex};

/// One structured record per simulation step, emitted by every executor.
///
/// Generic over the per-phase snapshot (`Ph`), recovery record (`Rec`), and
/// integrity record (`Int`) payload types owned by higher layers. (Not
/// `Copy`: a record owns the recovery/integrity events that completed during
/// the step, which are almost always empty `Vec`s.)
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord<Ph, Rec, Int> {
    /// Step index, consecutive from 0.
    pub step: u64,
    /// Agents in play: T cells resident in tissue.
    pub agents: u64,
    /// Total virion mass (model-level cross-executor comparable).
    pub virions: f64,
    /// Total chemokine mass.
    pub chemokine: f64,
    /// Active work units: active-list voxels (CPU) or active tiles (GPU),
    /// summed over ranks/devices.
    pub active_units: u64,
    /// Point-to-point + bulk messages delivered this step.
    pub comm_messages: u64,
    /// Point-to-point + bulk payload bytes delivered this step.
    pub comm_bytes: u64,
    /// Simulated seconds of this step under the cost model: aggregate phase
    /// cost normalized per rank/device (perfect-balance approximation).
    pub sim_seconds: f64,
    /// Measured wall-clock seconds of this step.
    pub real_seconds: f64,
    /// Per-phase snapshot of this step's aggregate device work.
    pub phases: Ph,
    /// Fault recoveries (rollback + re-partition + replay) that completed
    /// while computing this step. Empty in healthy runs.
    pub recoveries: Vec<Rec>,
    /// Integrity events (detected corruption + the healing tier that fixed
    /// it) attributed to this step. Empty in healthy runs.
    pub integrity: Vec<Int>,
}

// Manual impl: `derive(Default)` would bound `Rec: Default`/`Int: Default`
// even though the `Vec` payloads default to empty regardless.
impl<Ph: Default, Rec, Int> Default for StepRecord<Ph, Rec, Int> {
    fn default() -> Self {
        Self {
            step: 0,
            agents: 0,
            virions: 0.0,
            chemokine: 0.0,
            active_units: 0,
            comm_messages: 0,
            comm_bytes: 0,
            sim_seconds: 0.0,
            real_seconds: 0.0,
            phases: Ph::default(),
            recoveries: Vec::new(),
            integrity: Vec::new(),
        }
    }
}

/// Consumer of per-step records. `Send` so an installed sink never stops a
/// simulation from moving across threads.
pub trait MetricsSink<R>: Send {
    /// Accept one step's record.
    fn record(&mut self, rec: R);
}

/// A cloneable, thread-safe in-memory sink: hand one clone to the
/// simulation and keep another to read the records afterwards.
#[derive(Debug)]
pub struct SharedSink<R> {
    records: Arc<Mutex<Vec<R>>>,
}

// Manual impls: `derive` would needlessly bound `R: Clone`/`R: Default`.
impl<R> Clone for SharedSink<R> {
    fn clone(&self) -> Self {
        Self {
            records: Arc::clone(&self.records),
        }
    }
}

impl<R> Default for SharedSink<R> {
    fn default() -> Self {
        Self {
            records: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl<R> SharedSink<R> {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no records have been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all records accumulated so far, leaving the sink empty —
    /// the streaming consumer's read (each record is observed once).
    pub fn take(&self) -> Vec<R> {
        std::mem::take(&mut *self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<R: Clone> SharedSink<R> {
    /// Copy of all records so far.
    pub fn records(&self) -> Vec<R> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl<R: Send> MetricsSink<R> for SharedSink<R> {
    fn record(&mut self, rec: R) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Rec = StepRecord<u32, u8, u8>;

    #[test]
    fn shared_sink_accumulates_across_clones() {
        let sink: SharedSink<Rec> = SharedSink::new();
        let mut writer = sink.clone();
        for step in 0..3 {
            writer.record(Rec {
                step,
                ..Default::default()
            });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.records()[2].step, 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn records_default_and_compare() {
        let a = Rec::default();
        let mut b = Rec::default();
        assert_eq!(a, b);
        b.agents = 1;
        assert_ne!(a, b);
    }
}
