//! Per-connection wire statistics for the process transport.
//!
//! The `pgas` process transport meters each parent↔worker connection
//! separately; this type is the telemetry-side carrier so those numbers can
//! be published into the shared [`Registry`] as labelled gauges without the
//! transport depending on registry internals. Like all telemetry, publishing
//! is pure observation — the transport behaves identically with or without a
//! registry attached.

use crate::registry::Registry;

/// Cumulative statistics for one parent↔worker connection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Peer rank this connection serves.
    pub peer: usize,
    /// Sealed batch frames pushed to this worker.
    pub frames_sent: u64,
    /// Sealed batch frames read back from this worker's inbox.
    pub frames_received: u64,
    /// Socket bytes written (message headers included).
    pub bytes_sent: u64,
    /// Socket bytes read (message headers included).
    pub bytes_received: u64,
    /// Deliveries retried on this connection (deadline expiries plus
    /// garbled/dropped inbox re-requests).
    pub retries: u64,
    /// Whether the worker was alive at last contact.
    pub alive: bool,
}

impl WireStats {
    pub fn new(peer: usize) -> Self {
        WireStats {
            peer,
            alive: true,
            ..Self::default()
        }
    }

    /// Publish this connection's stats as `pgas_wire_*` gauges labelled by
    /// peer rank.
    pub fn publish(&self, reg: &Registry) {
        let peer = self.peer.to_string();
        let labels: [(&str, &str); 1] = [("peer", peer.as_str())];
        reg.gauge_with(
            "pgas_wire_frames_sent",
            "batch frames sent to this worker",
            &labels,
        )
        .set(self.frames_sent as f64);
        reg.gauge_with(
            "pgas_wire_frames_received",
            "batch frames read back from this worker",
            &labels,
        )
        .set(self.frames_received as f64);
        reg.gauge_with(
            "pgas_wire_bytes_sent",
            "socket bytes written to this worker",
            &labels,
        )
        .set(self.bytes_sent as f64);
        reg.gauge_with(
            "pgas_wire_bytes_received",
            "socket bytes read from this worker",
            &labels,
        )
        .set(self.bytes_received as f64);
        reg.gauge_with(
            "pgas_wire_retries",
            "retried deliveries on this connection",
            &labels,
        )
        .set(self.retries as f64);
        reg.gauge_with(
            "pgas_wire_peer_alive",
            "1 if the worker was alive at last contact",
            &labels,
        )
        .set(if self.alive { 1.0 } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricValue;

    #[test]
    fn publishes_labelled_gauges() {
        let reg = Registry::new();
        let mut s = WireStats::new(2);
        s.frames_sent = 7;
        s.bytes_received = 1234;
        s.alive = false;
        s.publish(&reg);
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.iter()
                .find(|m| m.name == name && m.labels == vec![("peer".into(), "2".into())])
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(get("pgas_wire_frames_sent").value, MetricValue::Gauge(7.0));
        assert_eq!(
            get("pgas_wire_bytes_received").value,
            MetricValue::Gauge(1234.0)
        );
        assert_eq!(get("pgas_wire_peer_alive").value, MetricValue::Gauge(0.0));
    }

    #[test]
    fn republish_overwrites_in_place() {
        let reg = Registry::new();
        let mut s = WireStats::new(0);
        s.retries = 1;
        s.publish(&reg);
        s.retries = 5;
        s.publish(&reg);
        let snap = reg.snapshot();
        let hits: Vec<_> = snap
            .iter()
            .filter(|m| m.name == "pgas_wire_retries")
            .collect();
        assert_eq!(hits.len(), 1, "same series, not a new one");
        assert_eq!(hits[0].value, MetricValue::Gauge(5.0));
    }
}
