//! Online health monitoring over the unified telemetry stream.
//!
//! The monitor watches three anomaly classes, each cheap enough to evaluate
//! inline every step:
//!
//! - **Stragglers** — one rank's superstep wall clock far above its peers'.
//!   A textbook z-score over `n` ranks cannot work here: with one outlier
//!   among `n` samples the achievable z caps at `√(n-1)` (≈1.7 for 4 ranks),
//!   below any sane threshold. Instead each rank is compared leave-one-out
//!   against the *median of the other ranks*, with spread estimated by MAD
//!   (scaled ×1.4826 to be σ-consistent) and floored so near-identical walls
//!   don't divide by ~0. The result behaves like a z-score but actually
//!   fires on a single bad rank.
//! - **Load imbalance** — max/mean skew of per-unit active work items.
//! - **Comm-volume spikes** — per-step exchanged bytes far above an EWMA
//!   baseline of previous steps.
//!
//! Detection is pure observation: the monitor reads walls and counters that
//! the runtime measures anyway, and its records feed the Chrome-trace
//! exporter as instant markers on the same timeline as the spans.

/// Per-superstep wall-clock samples for every rank, drained from the BSP
/// runtime by the driver. Walls include injected stall time so seeded
/// slow-rank faults are visible to the detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankWalls {
    /// Superstep index the samples belong to.
    pub superstep: u64,
    /// Wall nanoseconds per rank, indexed by rank.
    pub walls: Vec<u64>,
}

/// What anomaly a [`HealthRecord`] reports.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthKind {
    /// One rank's superstep wall clock is a leave-one-out outlier.
    Straggler {
        /// The slow rank.
        rank: u32,
        /// Its wall for the superstep, nanoseconds.
        wall_ns: u64,
        /// Median wall of the other ranks, nanoseconds.
        baseline_ns: u64,
        /// Robust z-score of the excess.
        z: f64,
    },
    /// Active work is concentrated on one unit.
    LoadImbalance {
        /// Unit carrying the most active items.
        max_unit: u32,
        /// Its active-item count.
        max_active: u64,
        /// Mean active items per unit.
        mean_active: f64,
        /// `max_active / mean_active`.
        skew: f64,
    },
    /// Step comm volume spiked above the running baseline.
    CommSpike {
        /// Bytes exchanged this step.
        bytes: u64,
        /// EWMA baseline before this step, bytes.
        baseline: f64,
        /// `bytes / baseline`.
        ratio: f64,
    },
}

impl HealthKind {
    /// Stable label used in exporter output.
    pub fn label(&self) -> &'static str {
        match self {
            HealthKind::Straggler { .. } => "health:straggler",
            HealthKind::LoadImbalance { .. } => "health:load-imbalance",
            HealthKind::CommSpike { .. } => "health:comm-spike",
        }
    }
}

/// One detected anomaly, stamped onto the run timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRecord {
    /// Driver step during which the anomaly was observed.
    pub step: u64,
    /// Superstep index (the step's value for step-scoped anomalies).
    pub superstep: u64,
    /// Telemetry-clock timestamp of detection, nanoseconds.
    pub at_ns: u64,
    /// The anomaly.
    pub kind: HealthKind,
}

/// Detector thresholds. Defaults are deliberately conservative: they stay
/// silent on balanced runs and fire on the seeded faults the test suite
/// injects.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Robust z threshold for straggler detection.
    pub straggler_z: f64,
    /// Absolute floor on the spread estimate, nanoseconds. Keeps the
    /// detector quiet when all ranks finish in near-identical time.
    pub straggler_floor_ns: u64,
    /// Minimum max/mean active skew to report.
    pub imbalance_ratio: f64,
    /// Minimum mean active items per unit before skew is meaningful.
    pub imbalance_floor: f64,
    /// Minimum bytes/baseline ratio to report a comm spike.
    pub spike_ratio: f64,
    /// Steps of EWMA warm-up before spike detection arms.
    pub spike_warmup: u32,
    /// EWMA smoothing factor for the comm baseline.
    pub ewma_alpha: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            straggler_z: 4.0,
            straggler_floor_ns: 20_000,
            imbalance_ratio: 2.0,
            imbalance_floor: 16.0,
            spike_ratio: 4.0,
            spike_warmup: 3,
            ewma_alpha: 0.3,
        }
    }
}

/// Online anomaly detector; feed it observations, read back records.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    comm_ewma: f64,
    comm_steps: u32,
    records: Vec<HealthRecord>,
}

fn median_of(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

impl HealthMonitor {
    /// Monitor with default thresholds.
    pub fn new() -> Self {
        Self::with_config(HealthConfig::default())
    }

    /// Monitor with explicit thresholds.
    pub fn with_config(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            comm_ewma: 0.0,
            comm_steps: 0,
            records: Vec::new(),
        }
    }

    /// Thresholds in force.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// All records so far, in detection order.
    pub fn records(&self) -> &[HealthRecord] {
        &self.records
    }

    /// Feed one superstep's per-rank walls; returns records created now.
    ///
    /// Each rank is tested leave-one-out: its wall against the median and
    /// MAD of the *other* ranks, so a single straggler cannot poison its own
    /// baseline. Below 3 ranks the estimator is degenerate — with one peer
    /// the "median of the others" is just that peer and the MAD is zero, so
    /// any wall difference divided by the floor looks like an outlier and
    /// either rank can flag the other. The policy is therefore *no flags*
    /// below 3 ranks: there is no peer population to define "normal".
    pub fn observe_superstep(
        &mut self,
        step: u64,
        superstep: u64,
        at_ns: u64,
        walls: &[u64],
    ) -> Vec<HealthRecord> {
        let n = walls.len();
        let mut new = Vec::new();
        if n < 3 {
            return new;
        }
        let mut others: Vec<u64> = Vec::with_capacity(n - 1);
        let mut devs: Vec<u64> = Vec::with_capacity(n - 1);
        for (rank, &w) in walls.iter().enumerate() {
            others.clear();
            others.extend(walls.iter().enumerate().filter_map(|(j, &x)| {
                if j == rank {
                    None
                } else {
                    Some(x)
                }
            }));
            others.sort_unstable();
            let baseline = median_of(&others);
            if w <= baseline {
                continue;
            }
            devs.clear();
            devs.extend(others.iter().map(|&x| x.abs_diff(baseline)));
            devs.sort_unstable();
            let mad = median_of(&devs) as f64 * 1.4826;
            let spread = mad
                .max(baseline as f64 * 0.25)
                .max(self.cfg.straggler_floor_ns as f64);
            let z = (w - baseline) as f64 / spread;
            if z >= self.cfg.straggler_z {
                new.push(HealthRecord {
                    step,
                    superstep,
                    at_ns,
                    kind: HealthKind::Straggler {
                        rank: rank as u32,
                        wall_ns: w,
                        baseline_ns: baseline,
                        z,
                    },
                });
            }
        }
        self.records.extend(new.iter().cloned());
        new
    }

    /// Feed one driver step's per-unit active counts and comm-byte delta;
    /// returns records created now.
    pub fn observe_step(
        &mut self,
        step: u64,
        at_ns: u64,
        active_per_unit: &[u64],
        comm_bytes: u64,
    ) -> Vec<HealthRecord> {
        let mut new = Vec::new();
        if !active_per_unit.is_empty() {
            let total: u64 = active_per_unit.iter().sum();
            let mean = total as f64 / active_per_unit.len() as f64;
            if mean >= self.cfg.imbalance_floor {
                let (max_unit, &max_active) = active_per_unit
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &a)| a)
                    .expect("non-empty");
                let skew = max_active as f64 / mean;
                if skew >= self.cfg.imbalance_ratio {
                    new.push(HealthRecord {
                        step,
                        superstep: step,
                        at_ns,
                        kind: HealthKind::LoadImbalance {
                            max_unit: max_unit as u32,
                            max_active,
                            mean_active: mean,
                            skew,
                        },
                    });
                }
            }
        }
        if self.comm_steps >= self.cfg.spike_warmup && self.comm_ewma > 0.0 {
            let ratio = comm_bytes as f64 / self.comm_ewma;
            if ratio >= self.cfg.spike_ratio {
                new.push(HealthRecord {
                    step,
                    superstep: step,
                    at_ns,
                    kind: HealthKind::CommSpike {
                        bytes: comm_bytes,
                        baseline: self.comm_ewma,
                        ratio,
                    },
                });
            }
        }
        let a = self.cfg.ewma_alpha;
        self.comm_ewma = if self.comm_steps == 0 {
            comm_bytes as f64
        } else {
            a * comm_bytes as f64 + (1.0 - a) * self.comm_ewma
        };
        self.comm_steps = self.comm_steps.saturating_add(1);
        self.records.extend(new.iter().cloned());
        new
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_walls_stay_silent() {
        let mut m = HealthMonitor::new();
        for ss in 0..20 {
            let new = m.observe_superstep(0, ss, 0, &[100_000, 104_000, 98_000, 101_000]);
            assert!(new.is_empty(), "false positive at superstep {ss}: {new:?}");
        }
    }

    #[test]
    fn single_straggler_is_flagged_immediately() {
        let mut m = HealthMonitor::new();
        let new = m.observe_superstep(3, 9, 42, &[100_000, 5_100_000, 98_000, 101_000]);
        assert_eq!(new.len(), 1);
        match &new[0].kind {
            HealthKind::Straggler { rank, z, .. } => {
                assert_eq!(*rank, 1);
                assert!(*z >= 4.0, "z = {z}");
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert_eq!(new[0].superstep, 9);
        assert_eq!(m.records().len(), 1);
    }

    #[test]
    fn one_rank_never_flags() {
        // No peers at all: nothing defines "normal", stay silent however
        // extreme the wall looks.
        let mut m = HealthMonitor::new();
        for ss in 0..5 {
            assert!(m.observe_superstep(0, ss, 0, &[u64::MAX / 2]).is_empty());
        }
        assert!(m.records().is_empty());
    }

    #[test]
    fn two_ranks_never_flag() {
        // With one peer the leave-one-out baseline is just that peer and
        // MAD is zero — either rank would flag the other on any skew, so
        // the policy below 3 ranks is silence. This pair used to produce a
        // flag; it must not.
        let mut m = HealthMonitor::new();
        let new = m.observe_superstep(0, 0, 0, &[50_000, 2_000_000]);
        assert!(
            new.is_empty(),
            "2-rank straggler flag is unreliable: {new:?}"
        );
        // Symmetric ordering, same answer.
        assert!(m
            .observe_superstep(0, 1, 0, &[2_000_000, 50_000])
            .is_empty());
        assert!(m.records().is_empty());
    }

    #[test]
    fn three_ranks_are_the_detection_floor() {
        // 3 ranks is the smallest population where the leave-one-out
        // baseline has two peers: detection arms exactly here.
        let mut m = HealthMonitor::new();
        let new = m.observe_superstep(0, 0, 0, &[100_000, 5_100_000, 98_000]);
        assert_eq!(new.len(), 1, "3-rank straggler must be flagged");
        match &new[0].kind {
            HealthKind::Straggler { rank, .. } => assert_eq!(*rank, 1),
            other => panic!("wrong kind: {other:?}"),
        }
        // Balanced 3-rank walls stay silent.
        assert!(m
            .observe_superstep(0, 1, 0, &[100_000, 101_000, 99_000])
            .is_empty());
    }

    #[test]
    fn imbalance_requires_skew_and_volume() {
        let mut m = HealthMonitor::new();
        // Below the activity floor: silent even though skewed.
        assert!(m.observe_step(0, 0, &[10, 0, 0, 0], 0).is_empty());
        // Above the floor and skewed: flagged.
        let new = m.observe_step(1, 0, &[4000, 10, 10, 10], 0);
        assert_eq!(new.len(), 1);
        match &new[0].kind {
            HealthKind::LoadImbalance { max_unit, skew, .. } => {
                assert_eq!(*max_unit, 0);
                assert!(*skew > 3.0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Balanced: silent.
        assert!(m.observe_step(2, 0, &[100, 101, 99, 100], 0).is_empty());
    }

    #[test]
    fn comm_spike_needs_warmup_then_fires() {
        let mut m = HealthMonitor::new();
        for step in 0..4 {
            assert!(m.observe_step(step, 0, &[], 1000).is_empty());
        }
        let new = m.observe_step(4, 0, &[], 50_000);
        assert_eq!(new.len(), 1);
        assert!(matches!(new[0].kind, HealthKind::CommSpike { .. }));
    }
}
