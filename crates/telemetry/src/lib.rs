//! Unified, zero-dependency telemetry for the SIMCoV-GPU reproduction.
//!
//! Every layer of the stack — driver steps, BSP supersteps, per-rank
//! compute/exchange phases, simulated GPU kernel phases — records into the
//! same subsystem:
//!
//! - [`Registry`]: named counters, gauges, and log₂-bucketed histograms;
//!   lock-free updates through `Arc`'d atomic handles.
//! - [`Telemetry`] + [`SpanEvent`]: hierarchical spans with parent ids over
//!   bounded per-track [`EventRing`]s — fixed capacity, explicit drop
//!   counters, no allocation on the hot path.
//! - [`MonotonicClock`]: the one timestamp source shared by spans, the
//!   `pgas` trace, and the bench harness.
//! - Exporters: [`chrome`] (trace-event JSON for `chrome://tracing` /
//!   Perfetto) and [`prometheus`] (text exposition).
//! - [`HealthMonitor`]: online straggler / load-imbalance / comm-spike
//!   detection over the same stream.
//! - [`StepRecord`] / [`MetricsSink`] / [`SharedSink`]: the generic per-step
//!   record stream shared by both executors.
//!
//! The cardinal invariant, inherited from the PR-2 observability layer and
//! enforced by the verify gates: telemetry is *pure observation*. A run with
//! every instrument enabled is bitwise identical to a run with none.

pub mod chrome;
pub mod clock;
pub mod health;
pub mod prometheus;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod span;
pub mod wire;

pub use clock::MonotonicClock;
pub use health::{HealthConfig, HealthKind, HealthMonitor, HealthRecord, RankWalls};
pub use registry::{
    Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Registry, ScopedRegistry,
    HISTOGRAM_BUCKETS,
};
pub use ring::EventRing;
pub use sink::{MetricsSink, SharedSink, StepRecord};
pub use span::{OpenSpan, SpanEvent, SpanKind, Telemetry};
pub use wire::WireStats;
