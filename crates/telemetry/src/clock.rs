//! Monotonic clock helper shared by every layer that timestamps events.
//!
//! All spans, trace events, and bench samples in the workspace measure time
//! the same way: nanoseconds since a fixed [`MonotonicClock`] origin. Keeping
//! one helper (instead of per-call-site `Instant` bookkeeping) means every
//! timestamp in a run is on a single comparable timeline, which is what the
//! Chrome-trace exporter needs to lay tracks out side by side.

use std::time::Instant;

/// A fixed time origin; `now_ns` reports monotonic nanoseconds since it.
///
/// `Copy` so handles can be embedded freely; copies share the same origin and
/// therefore the same timeline.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// Monotonic nanoseconds elapsed since the clock's origin.
    ///
    /// Saturates at `u64::MAX` (more than 500 years), so the cast is safe for
    /// any real run.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        let ns = self.origin.elapsed().as_nanos();
        if ns > u64::MAX as u128 {
            u64::MAX
        } else {
            ns as u64
        }
    }

    /// The underlying origin instant.
    pub fn origin(&self) -> Instant {
        self.origin
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a, "time went backwards: {a} -> {b}");
    }

    #[test]
    fn copies_share_the_origin() {
        let c = MonotonicClock::new();
        let d = c;
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = c.now_ns();
        let b = d.now_ns();
        // Both read the same timeline; readings must be within each other's
        // neighbourhood rather than restarting from zero.
        assert!(a >= 1_000_000 && b >= 1_000_000);
    }
}
