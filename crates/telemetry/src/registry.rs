//! Named metric registry: counters, gauges, and log₂-bucketed histograms.
//!
//! Instruments are registered once (a mutex-guarded push) and then updated
//! through `Arc`'d atomic handles, so the hot path never takes a lock. The
//! same instrument name may be registered with different label sets — each
//! (name, labels) pair is one time series, exactly as Prometheus models it;
//! re-registering an existing pair returns the existing handle.
//!
//! A process-wide [`Registry::global`] exists for code with no handle to a
//! run-scoped registry (each enabled [`crate::Telemetry`] carries its own).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ histogram buckets: bucket `i` counts values `v` with
/// `2^(i-1) < v <= 2^i` (bucket 0 counts `v <= 1`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Monotonically increasing integer metric.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous float metric (stored as `f64` bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Log₂-bucketed histogram of non-negative integer observations
/// (typically nanoseconds or bytes).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Bucket index for a value: the smallest `i` with `v <= 2^i`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (u64::BITS - (v - 1).leading_zeros()) as usize
        }
    }

    /// Record one observation. Two relaxed atomic adds plus a store.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = Self::bucket_index(v).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Raw (non-cumulative) per-bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The value half of a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading: raw per-bucket counts (index `i` ⇒ `le = 2^i`),
    /// total sum, and observation count.
    Histogram {
        /// Raw (non-cumulative) bucket counts.
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One (name, labels) time series captured by [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric family name.
    pub name: String,
    /// Help text for the family.
    pub help: String,
    /// Label key/value pairs.
    pub labels: Vec<(String, String)>,
    /// Current reading.
    pub value: MetricValue,
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    inst: Instrument,
}

/// A set of named instruments; registration locks, updates are lock-free.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn labels_eq(a: &[(String, String)], b: &[(&str, &str)]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.0 == y.0 && x.1 == y.1)
    }

    /// Register (or fetch) a counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a labelled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name && Self::labels_eq(&e.labels, labels) {
                if let Instrument::Counter(c) = &e.inst {
                    return c.clone();
                }
            }
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inst: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Register (or fetch) a gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a labelled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name && Self::labels_eq(&e.labels, labels) {
                if let Instrument::Gauge(g) = &e.inst {
                    return g.clone();
                }
            }
        }
        let g = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inst: Instrument::Gauge(g.clone()),
        });
        g
    }

    /// Register (or fetch) a histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a labelled histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name && Self::labels_eq(&e.labels, labels) {
                if let Instrument::Histogram(h) = &e.inst {
                    return h.clone();
                }
            }
        }
        let h = Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inst: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// A view of this registry that stamps `base` labels onto every
    /// instrument registered through it — the per-job scoping the sweep
    /// server uses (`[("job", name)]`) so concurrent jobs publishing the
    /// same metric family land on distinct time series.
    pub fn scoped<'a>(&'a self, base: &[(&str, &str)]) -> ScopedRegistry<'a> {
        ScopedRegistry {
            inner: self,
            base: base
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Capture every time series, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        buckets: h.buckets(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }
}

/// A label-scoped view of a [`Registry`]: every instrument registered
/// through it carries the view's base labels first, then any call-site
/// labels. Scopes are cheap (one small `Vec`) and many may coexist over one
/// registry; two scopes with different base labels never collide even when
/// registering the same metric name.
#[derive(Debug)]
pub struct ScopedRegistry<'a> {
    inner: &'a Registry,
    base: Vec<(String, String)>,
}

impl ScopedRegistry<'_> {
    fn merged(&self, labels: &[(&str, &str)]) -> Vec<(String, String)> {
        self.base
            .iter()
            .cloned()
            .chain(labels.iter().map(|(k, v)| (k.to_string(), v.to_string())))
            .collect()
    }

    /// Register (or fetch) a counter carrying the scope's base labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter with base + call-site labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let merged = self.merged(labels);
        let refs: Vec<(&str, &str)> = merged
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        self.inner.counter_with(name, help, &refs)
    }

    /// Register (or fetch) a gauge carrying the scope's base labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge with base + call-site labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let merged = self.merged(labels);
        let refs: Vec<(&str, &str)> = merged
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        self.inner.gauge_with(name, help, &refs)
    }

    /// Register (or fetch) a histogram carrying the scope's base labels.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a histogram with base + call-site labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let merged = self.merged(labels);
        let refs: Vec<(&str, &str)> = merged
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        self.inner.histogram_with(name, help, &refs)
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("series", &n).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistration_returns_the_same_series() {
        let r = Registry::new();
        let a = r.counter("hits", "hits");
        let b = r.counter("hits", "hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn label_sets_are_distinct_series() {
        let r = Registry::new();
        let a = r.counter_with("msgs", "m", &[("rank", "0")]);
        let b = r.counter_with("msgs", "m", &[("rank", "1")]);
        a.inc();
        b.add(5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].value, MetricValue::Counter(1));
        assert_eq!(snap[1].value, MetricValue::Counter(5));
    }

    #[test]
    fn scoped_registry_stamps_base_labels() {
        let r = Registry::new();
        let a = r.scoped(&[("job", "a")]);
        let b = r.scoped(&[("job", "b")]);
        a.counter("job_steps", "steps").add(3);
        b.counter("job_steps", "steps").add(7);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2, "scopes must be distinct series");
        assert_eq!(snap[0].labels, vec![("job".into(), "a".into())]);
        assert_eq!(snap[0].value, MetricValue::Counter(3));
        assert_eq!(snap[1].labels, vec![("job".into(), "b".into())]);
        assert_eq!(snap[1].value, MetricValue::Counter(7));
        // Same scope + name re-registers onto the same series.
        a.counter("job_steps", "steps").inc();
        assert_eq!(r.snapshot()[0].value, MetricValue::Counter(4));
    }

    #[test]
    fn scoped_registry_merges_call_site_labels() {
        let r = Registry::new();
        let s = r.scoped(&[("job", "j1")]);
        s.gauge_with("phase_wall", "w", &[("phase", "run")])
            .set(2.5);
        s.histogram_with("lat", "l", &[("tier", "fast")]).observe(4);
        let snap = r.snapshot();
        assert_eq!(
            snap[0].labels,
            vec![("job".into(), "j1".into()), ("phase".into(), "run".into())]
        );
        assert_eq!(
            snap[1].labels,
            vec![("job".into(), "j1".into()), ("tier".into(), "fast".into())]
        );
    }

    #[test]
    fn gauge_roundtrips_floats() {
        let r = Registry::new();
        let g = r.gauge("load", "l");
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 20), 20);
        let r = Registry::new();
        let h = r.histogram("lat", "l");
        h.observe(1);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1028);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[2], 1);
        assert_eq!(b[10], 1);
    }
}
