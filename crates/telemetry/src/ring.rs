//! Bounded single-writer event rings.
//!
//! The hot path of the runtime must never allocate or block to record an
//! event, and a long run must never grow an unbounded trace (the failure
//! mode of the original `pgas::trace` `Vec`). An [`EventRing`] is a
//! fixed-capacity circular buffer: pushes are wait-free stores from a single
//! writer thread, the ring keeps the most recent `capacity` events, and
//! everything older is counted — never silently lost — in [`EventRing::dropped`].
//!
//! ## Concurrency contract
//!
//! The ring is the same shape as the runtime's per-rank "slots" pattern: each
//! ring has **exactly one writer at a time** (the rank thread that owns the
//! track), and readers only run while writers are quiescent (after a
//! superstep barrier or at end of run). `push` takes `&self` so rank closures
//! can share one telemetry handle, and the type asserts `Sync` on that
//! single-writer / quiescent-reader discipline.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-capacity overwrite-oldest ring buffer for `Copy` events.
pub struct EventRing<T: Copy> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; capacity is always a power of two.
    mask: u64,
    /// Total number of pushes ever; the write cursor is `head % capacity`.
    head: AtomicU64,
}

// SAFETY: at most one thread writes a given ring at a time (single-writer
// contract above), and snapshots are only taken while writers are quiescent,
// so the `UnsafeCell` slots are never accessed concurrently for write+read.
// `head` is atomic. Same discipline as the BSP executor's per-rank slots.
unsafe impl<T: Copy + Send> Sync for EventRing<T> {}
unsafe impl<T: Copy + Send> Send for EventRing<T> {}

impl<T: Copy> EventRing<T> {
    /// A ring retaining the most recent `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
        }
    }

    /// Retention capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append an event, overwriting the oldest retained event when full.
    ///
    /// Wait-free and allocation-free. Must only be called by the ring's
    /// single writer (see the module docs).
    #[inline]
    pub fn push(&self, value: T) {
        let head = self.head.load(Ordering::Relaxed);
        let idx = (head & self.mask) as usize;
        // SAFETY: single-writer contract — no other thread touches the slot
        // while we write it, and readers are quiescent during pushes.
        unsafe {
            (*self.slots[idx].get()).write(value);
        }
        // Release so a reader that observes the new head also observes the
        // slot contents once writers have quiesced.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Total events ever pushed (retained + dropped).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.pushed().min(self.slots.len() as u64) as usize
    }

    /// True when nothing has ever been pushed.
    pub fn is_empty(&self) -> bool {
        self.pushed() == 0
    }

    /// Events lost to wraparound: pushes beyond capacity overwrite the
    /// oldest entries, and this counter accounts for every one of them.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Copy out the retained events, oldest first.
    ///
    /// Must only be called while the writer is quiescent (after a barrier or
    /// at end of run); this is the reader half of the ring's contract.
    pub fn snapshot(&self) -> Vec<T> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let retained = head.min(cap);
        let start = head - retained;
        let mut out = Vec::with_capacity(retained as usize);
        for i in start..head {
            let idx = (i & self.mask) as usize;
            // SAFETY: every index in `start..head` has been initialized by a
            // completed push, and the writer is quiescent (reader contract).
            out.push(unsafe { (*self.slots[idx].get()).assume_init() });
        }
        out
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for EventRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::<u64>::new(0).capacity(), 2);
        assert_eq!(EventRing::<u64>::new(5).capacity(), 8);
        assert_eq!(EventRing::<u64>::new(8).capacity(), 8);
    }

    #[test]
    fn retains_everything_under_capacity() {
        let r = EventRing::new(8);
        for i in 0..5u64 {
            r.push(i);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.snapshot(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_preserves_drop_counts() {
        let r = EventRing::new(8);
        for i in 0..20u64 {
            r.push(i);
        }
        assert_eq!(r.capacity(), 8);
        assert_eq!(r.pushed(), 20);
        assert_eq!(r.len(), 8, "ring retains exactly `capacity` events");
        assert_eq!(r.dropped(), 12, "every overwritten event is counted");
        assert_eq!(
            r.snapshot(),
            (12..20).collect::<Vec<u64>>(),
            "retained events are the most recent, oldest first"
        );
        // Keep wrapping: the accounting identity pushed = retained + dropped
        // holds at every point.
        for i in 20..1000u64 {
            r.push(i);
            assert_eq!(r.pushed(), r.len() as u64 + r.dropped());
        }
        assert_eq!(r.dropped(), 1000 - 8);
    }

    #[test]
    fn cross_thread_handoff_after_quiescence() {
        let r = std::sync::Arc::new(EventRing::new(4));
        let w = std::sync::Arc::clone(&r);
        std::thread::spawn(move || {
            for i in 0..10u64 {
                w.push(i);
            }
        })
        .join()
        .unwrap();
        // Writer has quiesced (joined): reader sees a consistent ring.
        assert_eq!(r.snapshot(), vec![6, 7, 8, 9]);
        assert_eq!(r.dropped(), 6);
    }
}
