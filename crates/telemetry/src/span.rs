//! Hierarchical spans over per-track ring buffers.
//!
//! A [`Telemetry`] handle is the one object threaded through every layer of
//! the stack. It is a cheap clone (an `Option<Arc<..>>`): a disabled handle
//! costs a single branch per instrumentation site, which is what lets
//! telemetry-on runs stay bitwise identical to telemetry-off runs — the
//! instrumentation only ever *observes*.
//!
//! Spans nest by parent id across layers without any thread-local state:
//!
//! ```text
//! step (driver, track 0)
//! └── superstep (BSP runtime, track 0)
//!     ├── compute (rank r, track r+1)
//!     │   └── kernel phases (GPU device r, track r+1, kind = Kernel)
//!     └── exchange (BSP runtime, track 0)
//! ```
//!
//! The driver publishes the current step span id in an atomic
//! ([`Telemetry::set_step_parent`]); the BSP superstep reads it, and hands
//! each rank closure its own span id the same way via per-track parent slots
//! ([`Telemetry::set_track_parent`]) so device code deep in the executor can
//! attach kernel-phase spans without plumbing ids through every call.
//!
//! Each track's ring has exactly one writer at a time (the owning rank
//! thread), which is what makes the lock-free [`EventRing`] sound — see that
//! module's contract.

use crate::clock::MonotonicClock;
use crate::registry::Registry;
use crate::ring::EventRing;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What level of the hierarchy a span belongs to. Doubles as the Chrome
/// exporter's category and the level label asserted by the smoke gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One driver step (track 0).
    Step,
    /// One BSP superstep (track 0).
    Superstep,
    /// Per-rank compute or exchange phase.
    RankPhase,
    /// GPU kernel phase inside a rank's compute span; the Chrome exporter
    /// routes these onto the dedicated GPU-phase track.
    Kernel,
    /// Zero-duration marker (health findings, injected stalls).
    Instant,
}

impl SpanKind {
    /// Stable lowercase name used in exporter output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Step => "step",
            SpanKind::Superstep => "superstep",
            SpanKind::RankPhase => "rank-phase",
            SpanKind::Kernel => "kernel",
            SpanKind::Instant => "instant",
        }
    }
}

/// A completed span (or instant), fixed-size and `Copy` so ring pushes never
/// allocate.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Unique id within the run (never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Static label, e.g. `"superstep"` or `"kernel:diffusion"`.
    pub label: &'static str,
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Track the event was recorded on (0 = driver/runtime, r+1 = rank r).
    pub track: u32,
    /// Start, nanoseconds since the telemetry clock origin.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// First kind-specific argument (step index, message count, rank, ...).
    pub a: u64,
    /// Second kind-specific argument (byte count, magnitude, ...).
    pub b: u64,
}

/// An open span: the id is allocated at open so children can parent to it
/// before the span closes. Zero-valued when telemetry is disabled.
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    /// Allocated span id (0 when telemetry is disabled).
    pub id: u64,
    /// Open timestamp in nanoseconds (0 when disabled).
    pub start_ns: u64,
}

impl OpenSpan {
    const DISABLED: OpenSpan = OpenSpan { id: 0, start_ns: 0 };
}

struct Inner {
    clock: MonotonicClock,
    next_id: AtomicU64,
    tracks: Box<[EventRing<SpanEvent>]>,
    /// Per-track parent slot: the rank's current compute span id, read by
    /// device code recording kernel phases on that track.
    track_parents: Box<[AtomicU64]>,
    /// Current driver step span id.
    step_parent: AtomicU64,
    registry: Registry,
}

/// Shared, cheaply clonable telemetry handle. `Telemetry::disabled()` is the
/// do-nothing default: every recording method is a single branch.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// The inert handle: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// An enabled handle with `n_tracks` event tracks (track 0 for the
    /// driver/runtime plus one per rank) each retaining `capacity` events.
    pub fn enabled(n_tracks: usize, capacity: usize) -> Self {
        let n = n_tracks.max(1);
        let tracks = (0..n)
            .map(|_| EventRing::new(capacity))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let track_parents = (0..n)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Telemetry(Some(Arc::new(Inner {
            clock: MonotonicClock::new(),
            next_id: AtomicU64::new(1),
            tracks,
            track_parents,
            step_parent: AtomicU64::new(0),
            registry: Registry::new(),
        })))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Number of event tracks (0 when disabled).
    pub fn n_tracks(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.tracks.len())
    }

    /// The handle's clock, if enabled.
    pub fn clock(&self) -> Option<MonotonicClock> {
        self.0.as_ref().map(|i| i.clock)
    }

    /// Nanoseconds since the telemetry origin (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// The metric registry carried by this handle, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.0.as_ref().map(|i| &i.registry)
    }

    /// Open a span: allocates an id and stamps the start time. On a disabled
    /// handle this is a branch returning zeros.
    #[inline]
    pub fn open(&self) -> OpenSpan {
        match &self.0 {
            None => OpenSpan::DISABLED,
            Some(i) => OpenSpan {
                id: i.next_id.fetch_add(1, Ordering::Relaxed),
                start_ns: i.clock.now_ns(),
            },
        }
    }

    /// Close an open span, recording it on `track`. No-op when disabled.
    ///
    /// Single-writer contract: only the thread owning `track` may call this
    /// for that track (see [`crate::ring`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn close(
        &self,
        track: usize,
        label: &'static str,
        kind: SpanKind,
        parent: u64,
        open: OpenSpan,
        a: u64,
        b: u64,
    ) {
        let Some(i) = &self.0 else { return };
        let end = i.clock.now_ns();
        let track = track.min(i.tracks.len() - 1);
        i.tracks[track].push(SpanEvent {
            id: open.id,
            parent,
            label,
            kind,
            track: track as u32,
            start_ns: open.start_ns,
            dur_ns: end.saturating_sub(open.start_ns),
            a,
            b,
        });
    }

    /// Record a zero-duration marker on `track`. No-op when disabled.
    #[inline]
    pub fn instant(&self, track: usize, label: &'static str, parent: u64, a: u64, b: u64) {
        let Some(i) = &self.0 else { return };
        let now = i.clock.now_ns();
        let track = track.min(i.tracks.len() - 1);
        i.tracks[track].push(SpanEvent {
            id: i.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            label,
            kind: SpanKind::Instant,
            track: track as u32,
            start_ns: now,
            dur_ns: 0,
            a,
            b,
        });
    }

    /// Publish the current driver step span id for lower layers to parent to.
    pub fn set_step_parent(&self, id: u64) {
        if let Some(i) = &self.0 {
            i.step_parent.store(id, Ordering::Release);
        }
    }

    /// Current driver step span id (0 when none / disabled).
    pub fn step_parent(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.step_parent.load(Ordering::Acquire))
    }

    /// Publish `track`'s current enclosing span id (the rank's compute span)
    /// for device-level kernel phases to parent to.
    pub fn set_track_parent(&self, track: usize, id: u64) {
        if let Some(i) = &self.0 {
            let track = track.min(i.track_parents.len() - 1);
            i.track_parents[track].store(id, Ordering::Release);
        }
    }

    /// Current enclosing span id for `track` (0 when none / disabled).
    pub fn track_parent(&self, track: usize) -> u64 {
        self.0.as_ref().map_or(0, |i| {
            let track = track.min(i.track_parents.len() - 1);
            i.track_parents[track].load(Ordering::Acquire)
        })
    }

    /// Convenience: record a completed kernel-phase span on `track`,
    /// parented to the track's published compute span.
    #[inline]
    pub fn kernel_span(&self, track: usize, label: &'static str, open: OpenSpan, a: u64, b: u64) {
        if self.is_enabled() {
            let parent = self.track_parent(track);
            self.close(track, label, SpanKind::Kernel, parent, open, a, b);
        }
    }

    /// Snapshot every track's retained events, merged and sorted by start
    /// time (stable on track for ties). Reader half of the ring contract:
    /// call only while writers are quiescent.
    pub fn events(&self) -> Vec<SpanEvent> {
        let Some(i) = &self.0 else { return Vec::new() };
        let mut all: Vec<SpanEvent> = i.tracks.iter().flat_map(|t| t.snapshot()).collect();
        all.sort_by_key(|e| (e.start_ns, e.track, e.id));
        all
    }

    /// Total events dropped to ring wraparound across all tracks.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.tracks.iter().map(|t| t.dropped()).sum())
    }

    /// Total events ever recorded across all tracks.
    pub fn recorded(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.tracks.iter().map(|t| t.pushed()).sum())
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("tracks", &self.n_tracks())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        let s = t.open();
        assert_eq!(s.id, 0);
        t.close(0, "x", SpanKind::Step, 0, s, 0, 0);
        t.instant(0, "y", 0, 0, 0);
        assert!(t.events().is_empty());
        assert_eq!(t.now_ns(), 0);
        assert!(t.registry().is_none());
    }

    #[test]
    fn spans_nest_by_parent_id() {
        let t = Telemetry::enabled(3, 64);
        let step = t.open();
        t.set_step_parent(step.id);
        let ss = t.open();
        let rank = t.open();
        t.set_track_parent(1, rank.id);
        let k = t.open();
        t.kernel_span(1, "kernel:diffusion", k, 9, 10);
        t.close(1, "compute", SpanKind::RankPhase, ss.id, rank, 0, 0);
        t.close(
            0,
            "superstep",
            SpanKind::Superstep,
            t.step_parent(),
            ss,
            0,
            0,
        );
        t.close(0, "step", SpanKind::Step, 0, step, 0, 0);

        let evs = t.events();
        assert_eq!(evs.len(), 4);
        let find = |label: &str| evs.iter().find(|e| e.label == label).copied().unwrap();
        let kern = find("kernel:diffusion");
        let comp = find("compute");
        let sup = find("superstep");
        let stp = find("step");
        assert_eq!(kern.parent, comp.id);
        assert_eq!(comp.parent, sup.id);
        assert_eq!(sup.parent, stp.id);
        assert_eq!(stp.parent, 0);
        assert_eq!(kern.a, 9);
        assert_eq!(kern.b, 10);
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let t = Telemetry::enabled(5, 64);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| t.open().id).collect::<Vec<u64>>()
            }));
        }
        let mut ids: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn track_index_is_clamped() {
        let t = Telemetry::enabled(2, 8);
        let s = t.open();
        t.close(99, "clamped", SpanKind::RankPhase, 0, s, 0, 0);
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].track, 1);
    }
}
