//! Per-device state and the two per-step phases of SIMCoV-GPU.
//!
//! Each timestep is two BSP supersteps (two communication waves, Fig. 2):
//!
//! 1. **plan + bid** — refresh ghosts, periodic tile check, extravasation
//!    over the halo reach, T-cell planning; every intent stores a bid at its
//!    target voxel; bid contributions are copied to every device holding the
//!    target.
//! 2. **resolve + update** — merge bids (max); every holder of a voxel
//!    independently determines the winner (deterministic tiebreak, §3.1):
//!    sources erase moved cells, owners instantiate them, bind winners
//!    trigger apoptosis. Then epithelial FSM + production run over owned
//!    *and ghost* voxels (ghost recomputation is exact because the FSM is
//!    voxel-local and all draws are counter-based), diffusion updates owned
//!    voxels, statistics are reduced by the variant's strategy, and the
//!    boundary state is pushed to neighbors.

use gpusim::device::LinkTraffic;
use gpusim::kernel::LaunchConfig;
use gpusim::reduce::{atomic_reduce, tree_reduce};
use gpusim::{DeviceCounters, KernelCategory};
use pgas::fault::SplitMix64;
use pgas::Outbox;
use simcov_core::decomp::{Partition, Subdomain};
use simcov_core::epithelial::EpiState;
use simcov_core::extrav::TrialTable;
use simcov_core::grid::{Coord, GridDims};
use simcov_core::halo::HaloBox;
use simcov_core::lanes::{self, KernelMode};
use simcov_core::params::SimParams;
use simcov_core::rules::{
    self, epi_update, extrav_lifetime, extrav_succeeds, plan_tcell, voxel_active, Bid, RuleView,
    TCellAction,
};
use simcov_core::soa::{StencilDeltas, VoxelSoA};
use simcov_core::stats::StatsPartial;
use simcov_core::tcell::TCellSlot;
use simcov_core::world::World;

use simcov_telemetry::Telemetry;

use crate::msg::{BidCell, GpuMsg, HaloCell};
use crate::tiles::{TileLayout, TileTracker};
use crate::variants::GpuVariant;

/// Statistic lanes reduced per step (virions, chemokine, tissue T cells,
/// five epithelial state counts).
const STAT_LANES: u64 = 8;
/// Bytes read per voxel by the statistics sweep: the tiled layout reads
/// tile-contiguous lines; the untiled layout wastes part of each cache line.
const REDUCE_BYTES_TILED: u64 = 20;
const REDUCE_BYTES_UNTILED: u64 = 28;
/// Approximate bytes of state touched per voxel by an update kernel: the
/// tile-contiguous layout (§3.2, Fig. 3) coalesces accesses; the untiled
/// row-major layout wastes part of each cache line on strided SoA sweeps.
const UPDATE_BYTES_TILED: u64 = 32;
const UPDATE_BYTES_UNTILED: u64 = 52;

/// One simulated device and its subdomain state (tile-ordered storage).
pub struct GpuDevice {
    pub id: usize,
    pub layout: TileLayout,
    dims: GridDims,
    neighbors: Vec<(usize, Subdomain)>,
    pub variant: GpuVariant,
    devices_per_node: usize,

    /// SoA voxel state in tile-major padded storage.
    soa: VoxelSoA,
    /// Constant stencil deltas for within-tile strides `(1, tile, tile²)`.
    stencil: StencilDeltas,
    /// Which diffusion kernel this device runs (bitwise identical either
    /// way; `Scalar` is the differential oracle).
    kernel: KernelMode,
    move_bid: Vec<Bid>,
    bind_bid: Vec<Bid>,
    touched_bids: Vec<u32>,
    tracker: TileTracker,

    actions: Vec<(u32, TCellAction)>,
    fresh_placed: Vec<u32>,
    extravasated: u64,
    diffuse_out: Vec<(u32, f32, f32)>,

    pub counters: DeviceCounters,
    pub link: LinkTraffic,
    /// Telemetry handle for kernel-phase spans (disabled unless attached;
    /// spans land on this device's rank track, parented to its compute span).
    tel: Telemetry,
}

struct DeviceView<'a> {
    dims: GridDims,
    layout: &'a TileLayout,
    soa: &'a VoxelSoA,
}

impl RuleView for DeviceView<'_> {
    #[inline]
    fn dims(&self) -> GridDims {
        self.dims
    }
    #[inline]
    fn epi_state(&self, c: Coord) -> EpiState {
        self.soa.epi.get(self.layout.local(c))
    }
    #[inline]
    fn tcell(&self, c: Coord) -> TCellSlot {
        self.soa.tcells[self.layout.local(c)]
    }
    #[inline]
    fn virions(&self, c: Coord) -> f32 {
        self.soa.virions.get(self.layout.local(c))
    }
    #[inline]
    fn chemokine(&self, c: Coord) -> f32 {
        self.soa.chem.get(self.layout.local(c))
    }
}

impl GpuDevice {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        partition: &Partition,
        world: &World,
        variant: GpuVariant,
        tile_side: usize,
        check_period: u64,
        devices_per_node: usize,
        kernel: KernelMode,
    ) -> Self {
        let dims = partition.dims;
        let hb = HaloBox::new(dims, *partition.sub(id));
        let layout = TileLayout::new(hb, tile_side);
        let n = layout.len();
        let mut soa = VoxelSoA::airway(n);
        let stencil = StencilDeltas::for_strides(dims, tile_side, tile_side);
        for t in 0..layout.n_tiles() {
            for (li, c) in layout.tile_coords(t) {
                if !dims.in_bounds(c) {
                    continue;
                }
                let gi = dims.index(c);
                soa.epi.state[li] = world.epi.state[gi];
                soa.epi.timer[li] = world.epi.timer[gi];
                soa.tcells[li] = world.tcells[gi];
                soa.virions.set(li, world.virions.get(gi));
                soa.chem.set(li, world.chemokine.get(gi));
            }
        }
        let mut tracker = TileTracker::new(&layout, check_period);
        if variant.tiling() {
            // Seed the active set from the actual state instead of waiting
            // for the next phase-aligned check: a device built mid-run (a
            // rollback or durable resume landing between checks) must not
            // freeze interior tiles until the schedule comes around.
            let found = scan_tile_activity(&layout, &soa);
            tracker.apply_check(&layout, &found);
        }
        let neighbors = partition
            .neighbor_ranks(id)
            .into_iter()
            .map(|r| (r, *partition.sub(r)))
            .collect();
        GpuDevice {
            id,
            dims,
            neighbors,
            variant,
            devices_per_node,
            soa,
            stencil,
            kernel,
            move_bid: vec![Bid::EMPTY; n],
            bind_bid: vec![Bid::EMPTY; n],
            touched_bids: Vec::new(),
            tracker,
            actions: Vec::new(),
            fresh_placed: Vec::new(),
            extravasated: 0,
            diffuse_out: Vec::new(),
            counters: DeviceCounters::new(),
            link: LinkTraffic::default(),
            tel: Telemetry::disabled(),
            layout,
        }
    }

    /// Attach the run's telemetry handle: kernel phases record spans on
    /// track `id + 1` from the next superstep on. Pure observation — never
    /// changes the trajectory.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    #[inline]
    fn view(&self) -> DeviceView<'_> {
        DeviceView {
            dims: self.dims,
            layout: &self.layout,
            soa: &self.soa,
        }
    }

    /// Tiles the update kernels visit this step (all tiles when tiling is
    /// disabled).
    fn work_tiles(&self) -> Vec<usize> {
        if self.variant.tiling() {
            self.tracker.active_tiles().collect()
        } else {
            (0..self.layout.n_tiles()).collect()
        }
    }

    fn same_node(&self, peer: usize) -> bool {
        self.id / self.devices_per_node == peer / self.devices_per_node
    }

    /// Superstep 1: ghosts, tile check, extravasation, planning, bid wave.
    pub fn plan_and_bid(
        &mut self,
        p: &SimParams,
        t: u64,
        trials: &TrialTable,
        inbox: &[GpuMsg],
        out: &mut Outbox<GpuMsg>,
    ) -> u64 {
        // Ghost refresh from the previous step's halo wave.
        let sp = self.tel.open();
        let mut unpacked = 0u64;
        for msg in inbox {
            if let GpuMsg::Halo(cells) = msg {
                for cell in cells {
                    let c = self.dims.coord(cell.gid as usize);
                    debug_assert!(self.layout.hb.covers(c) && !self.layout.hb.is_core(c));
                    let li = self.layout.local(c);
                    self.soa.epi.state[li] = cell.epi_state;
                    self.soa.epi.timer[li] = cell.epi_timer;
                    self.soa.tcells[li] = cell.tcell;
                    self.soa.virions.set(li, cell.virions);
                    self.soa.chem.set(li, cell.chem);
                }
                unpacked += cells.len() as u64;
            } else {
                unreachable!("unexpected message in plan superstep");
            }
        }
        if unpacked > 0 {
            let h = self.counters.category_mut(KernelCategory::Halo);
            h.launches += 1; // unpack kernel
            h.elements += unpacked;
            h.bytes += unpacked * 25;
        }
        self.tel.kernel_span(
            self.id + 1,
            "kernel:halo-unpack",
            sp,
            unpacked,
            unpacked * 25,
        );

        // Periodic tile-activity check (§3.2).
        if self.variant.tiling() && self.tracker.check_due(t) {
            let sp = self.tel.open();
            let found = scan_tile_activity(&self.layout, &self.soa);
            // The real kernel cannot early-exit a warp-parallel scan; charge
            // the full sweep.
            let tc = self.counters.category_mut(KernelCategory::TileCheck);
            tc.launches += 1;
            tc.elements += self.layout.len() as u64;
            tc.bytes += self.layout.len() as u64 * 13;
            self.tracker.apply_check(&self.layout, &found);
            let n = self.layout.len() as u64;
            self.tel
                .kernel_span(self.id + 1, "kernel:tile-check", sp, n, n * 13);
        }

        // Extravasation over the halo reach (ghost trials are evaluated
        // identically to their owner so fresh ghost cells block our movers).
        let sp = self.tel.open();
        self.extravasated = 0;
        self.fresh_placed.clear();
        let hb = self.layout.hb;
        let (lo, hi) = (hb.lo, hb.hi);
        let mut evaluated = 0u64;
        for z in lo.z.max(0)..hi.z.min(self.dims.z as i64) {
            for y in lo.y.max(0)..hi.y.min(self.dims.y as i64) {
                let x0 = lo.x.max(0);
                let x1 = hi.x.min(self.dims.x as i64);
                if x0 >= x1 {
                    continue;
                }
                let g0 = self.dims.index(Coord::new(x0, y, z));
                let g1 = g0 + (x1 - x0) as usize;
                for &(gv, trial) in trials.in_gid_range(g0, g1) {
                    let c = self.dims.coord(gv);
                    let li = self.layout.local(c);
                    if self.soa.tcells[li].occupied() {
                        continue;
                    }
                    if extrav_succeeds(p, t, trial, self.soa.chem.get(li)) {
                        let life = extrav_lifetime(p, t, trial);
                        self.soa.tcells[li] = TCellSlot::fresh(life);
                        if hb.is_core(c) {
                            self.extravasated += 1;
                            self.fresh_placed.push(li as u32);
                        }
                    }
                    evaluated += 1;
                }
            }
        }
        {
            let u = self.counters.category_mut(KernelCategory::UpdateAgents);
            u.launches += 1; // extravasation kernel
            u.elements += evaluated;
        }
        self.tel
            .kernel_span(self.id + 1, "kernel:extravasate", sp, evaluated, 0);

        // T-cell planning kernel ("Choose Direction" + bid store, Fig. 2).
        let sp = self.tel.open();
        self.actions.clear();
        debug_assert!(self.touched_bids.is_empty());
        let tiles = self.work_tiles();
        let mut scanned = 0u64;
        let mut bids_written = 0u64;
        for tile in &tiles {
            let span = self.layout.tile_span(*tile);
            for oz in 0..span.nz {
                for oy in 0..span.ny {
                    let row = span.base + oz * span.sz_stride + oy * span.sy_stride;
                    for ox in 0..span.nx {
                        let li = row + ox;
                        scanned += 1;
                        let slot = self.soa.tcells[li];
                        if !slot.occupied() || slot.is_fresh() {
                            continue;
                        }
                        let c = span.origin.offset(ox as i64, oy as i64, oz as i64);
                        if !hb.is_core(c) {
                            continue;
                        }
                        let action = plan_tcell(&self.view(), p, t, c);
                        match action {
                            TCellAction::TryMove { target, bid } => {
                                let tl = self.layout.local(target);
                                self.move_bid[tl] = self.move_bid[tl].merge(bid);
                                self.touched_bids.push(tl as u32);
                                bids_written += 1;
                            }
                            TCellAction::TryBind { target, bid } => {
                                let tl = self.layout.local(target);
                                self.bind_bid[tl] = self.bind_bid[tl].merge(bid);
                                self.touched_bids.push(tl as u32);
                                bids_written += 1;
                            }
                            _ => {}
                        }
                        self.actions.push((li as u32, action));
                    }
                }
            }
        }
        {
            let u = self.counters.category_mut(KernelCategory::UpdateAgents);
            u.launches += 1;
            u.elements += scanned;
            u.bytes += scanned * 8;
            // Bid stores are global atomicMax operations (§3.1).
            u.atomics += bids_written;
        }
        self.tel
            .kernel_span(self.id + 1, "kernel:plan", sp, scanned, bids_written);

        // Bid wave: send our contributions for every voxel a neighbor also
        // holds. All holders converge by max-merge, so each device can
        // resolve winners without a second wave (§3.1).
        let sp = self.tel.open();
        let mut bid_cells_sent = 0u64;
        self.touched_bids.sort_unstable();
        self.touched_bids.dedup();
        let mut per_neighbor: Vec<Vec<BidCell>> = vec![Vec::new(); self.neighbors.len()];
        for &tl in &self.touched_bids {
            let c = self.layout.coord_of(tl as usize);
            let cell = BidCell {
                gid: self.dims.index(c) as u64,
                move_bid: self.move_bid[tl as usize].0,
                bind_bid: self.bind_bid[tl as usize].0,
            };
            for (i, (_, nsub)) in self.neighbors.iter().enumerate() {
                if nsub.in_halo_reach(c) {
                    per_neighbor[i].push(cell);
                }
            }
        }
        for (i, cells) in per_neighbor.into_iter().enumerate() {
            let (nr, _) = self.neighbors[i];
            let n_cells = cells.len() as u64;
            let msg = GpuMsg::Bids(cells);
            let bytes = pgas::counters::WireSize::wire_size(&msg) as u64;
            self.link.record(bytes, self.same_node(nr));
            let h = self.counters.category_mut(KernelCategory::Halo);
            h.elements += n_cells;
            h.bytes += n_cells * 40;
            bid_cells_sent += n_cells;
            out.send(nr, msg);
        }
        self.counters.category_mut(KernelCategory::Halo).launches += 1; // pack kernel
        self.tel.kernel_span(
            self.id + 1,
            "kernel:bid-pack",
            sp,
            bid_cells_sent,
            bid_cells_sent * 40,
        );

        self.extravasated
    }

    /// Superstep 2: merge bids, resolve and apply, FSM + production
    /// (including ghost recomputation), diffusion, statistics reduction,
    /// boundary push. Returns this device's statistics partial.
    ///
    /// The reduction accumulates concentrations into [`ExactSum`]
    /// superaccumulators ([`StatsPartial`]), so the global result is
    /// independent of device count and reduction shape — recovery can
    /// re-partition without perturbing the trajectory's statistics.
    ///
    /// [`ExactSum`]: simcov_core::exact::ExactSum
    pub fn resolve_and_update(
        &mut self,
        p: &SimParams,
        t: u64,
        inbox: &[GpuMsg],
        out: &mut Outbox<GpuMsg>,
    ) -> StatsPartial {
        let hb = self.layout.hb;

        // Merge incoming bid contributions (commutative max — order-free).
        let sp = self.tel.open();
        let mut merged = 0u64;
        for msg in inbox {
            if let GpuMsg::Bids(cells) = msg {
                for cell in cells {
                    let c = self.dims.coord(cell.gid as usize);
                    debug_assert!(hb.covers(c));
                    let li = self.layout.local(c);
                    self.move_bid[li] = self.move_bid[li].merge(Bid(cell.move_bid));
                    self.bind_bid[li] = self.bind_bid[li].merge(Bid(cell.bind_bid));
                    self.touched_bids.push(li as u32);
                }
                merged += cells.len() as u64;
            } else {
                unreachable!("unexpected message in resolve superstep");
            }
        }
        if merged > 0 {
            let h = self.counters.category_mut(KernelCategory::Halo);
            h.launches += 1;
            h.elements += merged;
            h.atomics += merged * 2; // atomicMax merges into the bid fields
        }
        self.touched_bids.sort_unstable();
        self.touched_bids.dedup();
        self.tel
            .kernel_span(self.id + 1, "kernel:bid-merge", sp, merged, merged * 2);

        // "Assign Winners" + "Set Flips" + "Move Agents" (Fig. 2) — three
        // kernels over the action/bid sets.
        let sp = self.tel.open();
        let actions = std::mem::take(&mut self.actions);
        let n_actions = actions.len() as u64;
        for &(li, action) in &actions {
            let li = li as usize;
            let slot = self.soa.tcells[li];
            let ts = slot.tissue_steps();
            match action {
                TCellAction::Die => {
                    self.soa.tcells[li] = TCellSlot::EMPTY;
                }
                TCellAction::StayBound => {
                    self.soa.tcells[li] = TCellSlot::established(ts - 1, slot.bind_steps() - 1);
                }
                TCellAction::Stay => {
                    self.soa.tcells[li] = TCellSlot::established(ts - 1, 0);
                }
                TCellAction::TryBind { target, bid } => {
                    let tl = self.layout.local(target);
                    let bind = if self.bind_bid[tl] == bid {
                        p.tcell_binding_period
                    } else {
                        0
                    };
                    self.soa.tcells[li] = TCellSlot::established(ts - 1, bind);
                }
                TCellAction::TryMove { target, bid } => {
                    let tl = self.layout.local(target);
                    if self.move_bid[tl] == bid {
                        // Winner: materialize at the target if we own it
                        // (ghost targets are instantiated by their owner),
                        // and erase here either way — the deterministic
                        // tiebreak guarantees no duplication (§3.1).
                        if hb.is_core(target) {
                            self.soa.tcells[tl] = TCellSlot::established(ts - 1, 0);
                        }
                        self.soa.tcells[li] = TCellSlot::EMPTY;
                    } else {
                        self.soa.tcells[li] = TCellSlot::established(ts - 1, 0);
                    }
                }
            }
        }
        self.actions = actions;
        self.actions.clear();

        // Winning movers materialize at their targets; winning binds
        // trigger apoptosis — including on ghost copies, which keeps the
        // local FSM/production recomputation exact.
        let touched = std::mem::take(&mut self.touched_bids);
        for &tl in &touched {
            let tl = tl as usize;
            let c = self.layout.coord_of(tl);
            let mb = self.move_bid[tl];
            if !mb.is_empty() && hb.is_core(c) {
                let src = self.dims.coord(mb.src() as usize);
                debug_assert!(hb.covers(src));
                if !hb.is_core(src) {
                    // Remote winner: instantiate from the ghost copy
                    // ("a T cell that has moved into the memory space of a
                    // GPU can safely be instantiated without fear of
                    // duplication", §3.1). Local winners were materialized
                    // in the action loop above.
                    let slot = self.soa.tcells[self.layout.local(src)];
                    debug_assert!(slot.occupied() && !slot.is_fresh());
                    self.soa.tcells[tl] = TCellSlot::established(slot.tissue_steps() - 1, 0);
                }
            }
            let bb = self.bind_bid[tl];
            if !bb.is_empty() && self.soa.epi.get(tl) == EpiState::Expressing {
                let gid = self.dims.index(c) as u64;
                self.soa
                    .epi
                    .set(tl, EpiState::Apoptotic, rules::apoptosis_timer(p, t, gid));
            }
            self.move_bid[tl] = Bid::EMPTY;
            self.bind_bid[tl] = Bid::EMPTY;
        }
        self.touched_bids = touched;
        self.touched_bids.clear();

        // Settle fresh T cells.
        let fresh = std::mem::take(&mut self.fresh_placed);
        let n_fresh = fresh.len() as u64;
        for &li in &fresh {
            self.soa.tcells[li as usize] = self.soa.tcells[li as usize].settled();
        }
        self.tel
            .kernel_span(self.id + 1, "kernel:resolve", sp, n_actions, n_fresh);

        // FSM + production over core AND ghost voxels of the work tiles.
        let sp = self.tel.open();
        let tiles = self.work_tiles();
        let mut fsm_elems = 0u64;
        for tile in &tiles {
            let span = self.layout.tile_span(*tile);
            for oz in 0..span.nz {
                for oy in 0..span.ny {
                    let row = span.base + oz * span.sz_stride + oy * span.sy_stride;
                    for ox in 0..span.nx {
                        let li = row + ox;
                        let c = span.origin.offset(ox as i64, oy as i64, oz as i64);
                        if !self.dims.in_bounds(c) {
                            continue;
                        }
                        fsm_elems += 1;
                        let s = self.soa.epi.get(li);
                        if s == EpiState::Airway || s == EpiState::Dead {
                            continue;
                        }
                        let gid = self.dims.index(c) as u64;
                        let u = epi_update(
                            s,
                            self.soa.epi.timer[li],
                            self.soa.virions.get(li),
                            p,
                            t,
                            gid,
                        );
                        self.soa.epi.set(li, u.state, u.timer);
                        if u.state.produces_virions() {
                            self.soa.virions.set(
                                li,
                                simcov_core::diffusion::produce_virions(
                                    self.soa.virions.get(li),
                                    p.virion_production,
                                ),
                            );
                        }
                        if u.state.produces_chemokine() {
                            self.soa.chem.set(
                                li,
                                simcov_core::diffusion::produce_chemokine(
                                    self.soa.chem.get(li),
                                    p.chemokine_production,
                                ),
                            );
                        }
                    }
                }
            }
        }
        {
            let ub = if self.variant.tiling() {
                UPDATE_BYTES_TILED
            } else {
                UPDATE_BYTES_UNTILED
            };
            let u = self.counters.category_mut(KernelCategory::UpdateAgents);
            u.launches += 4; // assign winners, set flips, move agents, FSM
            u.elements += fsm_elems;
            u.bytes += fsm_elems * ub;
        }
        self.tel
            .kernel_span(self.id + 1, "kernel:fsm", sp, fsm_elems, 0);

        // Diffusion over core voxels of the work tiles (staged write-back).
        let sp = self.tel.open();
        self.diffuse_out.clear();
        let mut diff_elems = 0u64;
        let is_2d = self.dims.is_2d();
        let vc = p.virion_coeffs();
        let cc = p.chemokine_coeffs();
        for tile in &tiles {
            let span = self.layout.tile_span(*tile);
            for oz in 0..span.nz {
                let z_inner = is_2d || (oz >= 1 && oz + 1 < span.nz);
                for oy in 0..span.ny {
                    let y_inner = oy >= 1 && oy + 1 < span.ny;
                    let row = span.base + oz * span.sz_stride + oy * span.sy_stride;
                    let mut ox = 0usize;
                    while ox < span.nx {
                        let li = row + ox;
                        let c = span.origin.offset(ox as i64, oy as i64, oz as i64);
                        if !hb.is_core(c) {
                            ox += 1;
                            continue;
                        }
                        // Fast path: the whole Moore neighborhood lies inside
                        // this tile (tile-interior voxel) and inside the
                        // global grid, so the gather is a constant-stride
                        // sweep over the tile's contiguous storage — same
                        // values in the same offset order as the checked
                        // path, hence bitwise identical. In `Wide` mode,
                        // maximal x-runs of such voxels go through the
                        // chunked lane kernel (per-lane accumulation, same
                        // per-voxel order — see `simcov_core::lanes`).
                        let tile_inner = z_inner && y_inner && ox >= 1 && ox + 1 < span.nx;
                        if tile_inner && self.stencil.is_interior(c) {
                            let mut len = 1usize;
                            if self.kernel == KernelMode::Wide {
                                while ox + len + 1 < span.nx {
                                    let q =
                                        span.origin.offset((ox + len) as i64, oy as i64, oz as i64);
                                    if hb.is_core(q) && self.stencil.is_interior(q) {
                                        len += 1;
                                    } else {
                                        break;
                                    }
                                }
                            }
                            diff_elems += len as u64;
                            let out = &mut self.diffuse_out;
                            lanes::diffuse_interior_run(
                                &self.stencil,
                                li,
                                len,
                                &self.soa.virions,
                                &self.soa.chem,
                                vc,
                                cc,
                                |i, nv, nc| out.push((i as u32, nv, nc)),
                            );
                            ox += len;
                        } else {
                            diff_elems += 1;
                            let mut vs = 0.0f32;
                            let mut cs = 0.0f32;
                            let mut nv = 0usize;
                            for &(dx, dy, dz) in self.dims.neighbor_offsets() {
                                let q = c.offset(dx, dy, dz);
                                if self.dims.in_bounds(q) {
                                    let ql = self.layout.local(q);
                                    vs += self.soa.virions.get(ql);
                                    cs += self.soa.chem.get(ql);
                                    nv += 1;
                                }
                            }
                            self.diffuse_out.push((
                                li as u32,
                                vc.apply(self.soa.virions.get(li), vs, nv),
                                cc.apply(self.soa.chem.get(li), cs, nv),
                            ));
                            ox += 1;
                        }
                    }
                }
            }
        }
        let diffused = std::mem::take(&mut self.diffuse_out);
        for &(li, nv, nc) in &diffused {
            self.soa.virions.set(li as usize, nv);
            self.soa.chem.set(li as usize, nc);
        }
        self.diffuse_out = diffused;
        self.diffuse_out.clear();
        {
            let db = if self.variant.tiling() { 24 } else { 36 };
            let u = self.counters.category_mut(KernelCategory::UpdateAgents);
            u.launches += 2; // virion + chemokine stencil kernels
            u.elements += diff_elems * 2;
            u.bytes += diff_elems * 2 * db;
        }
        self.tel
            .kernel_span(self.id + 1, "kernel:diffuse", sp, diff_elems * 2, 0);

        // Statistics reduction over every owned voxel (§3.3): the sweep
        // covers the full core regardless of tiling (dead/healthy counts
        // live in inactive regions too); tiling only improves its locality.
        let sp = self.tel.open();
        let core_cells: Vec<u32> = self.core_indices();
        let n = core_cells.len();
        let bytes_per_elem = if self.variant.tiling() {
            REDUCE_BYTES_TILED
        } else {
            REDUCE_BYTES_UNTILED
        };
        let (virions, chem, tcells, epi) = (
            &self.soa.virions,
            &self.soa.chem,
            &self.soa.tcells,
            &self.soa.epi,
        );
        let map = |i: usize| -> StatsPartial {
            let li = core_cells[i] as usize;
            let mut s = StatsPartial::default();
            s.add_virions(virions.get(li));
            s.add_chemokine(chem.get(li));
            if tcells[li].occupied() {
                s.tcells_tissue = 1;
            }
            match epi.get(li) {
                EpiState::Healthy => s.epi_healthy = 1,
                EpiState::Incubating => s.epi_incubating = 1,
                EpiState::Expressing => s.epi_expressing = 1,
                EpiState::Apoptotic => s.epi_apoptotic = 1,
                EpiState::Dead => s.epi_dead = 1,
                EpiState::Airway => {}
            }
            s
        };
        let combine = |a: &mut StatsPartial, b: &StatsPartial| {
            *a += *b;
        };
        let mut stats = if self.variant.tree_reduce() {
            tree_reduce(
                &mut self.counters,
                LaunchConfig::cover(n, 256),
                n,
                STAT_LANES,
                bytes_per_elem,
                StatsPartial::default(),
                map,
                combine,
            )
        } else {
            // Unoptimized: a sweep whose per-element accumulation uses
            // global atomics.
            let r = atomic_reduce(
                &mut self.counters,
                n,
                STAT_LANES,
                StatsPartial::default(),
                map,
                combine,
            );
            let c = self.counters.category_mut(KernelCategory::ReduceStats);
            c.launches += 1;
            c.elements += n as u64;
            c.bytes += n as u64 * bytes_per_elem;
            r
        };
        stats.step = t;
        stats.extravasated = self.extravasated;
        self.tel.kernel_span(
            self.id + 1,
            "kernel:reduce",
            sp,
            n as u64,
            n as u64 * bytes_per_elem,
        );

        // End-of-step halo wave: full boundary state to every neighbor.
        let sp = self.tel.open();
        let mut halo_cells_sent = 0u64;
        let mut per_neighbor: Vec<Vec<HaloCell>> = vec![Vec::new(); self.neighbors.len()];
        for &li in &core_cells {
            let c = self.layout.coord_of(li as usize);
            if !hb.is_boundary(c) {
                continue;
            }
            let li = li as usize;
            let cell = HaloCell {
                gid: self.dims.index(c) as u64,
                epi_state: self.soa.epi.state[li],
                epi_timer: self.soa.epi.timer[li],
                tcell: self.soa.tcells[li],
                virions: self.soa.virions.get(li),
                chem: self.soa.chem.get(li),
            };
            for (i, (_, nsub)) in self.neighbors.iter().enumerate() {
                if nsub.in_halo_reach(c) {
                    per_neighbor[i].push(cell);
                }
            }
        }
        for (i, cells) in per_neighbor.into_iter().enumerate() {
            let (nr, _) = self.neighbors[i];
            let n_cells = cells.len() as u64;
            let msg = GpuMsg::Halo(cells);
            let bytes = pgas::counters::WireSize::wire_size(&msg) as u64;
            self.link.record(bytes, self.same_node(nr));
            let h = self.counters.category_mut(KernelCategory::Halo);
            h.elements += n_cells;
            h.bytes += n_cells * 25;
            halo_cells_sent += n_cells;
            out.send(nr, msg);
        }
        self.counters.category_mut(KernelCategory::Halo).launches += 1; // pack
        self.tel.kernel_span(
            self.id + 1,
            "kernel:halo-pack",
            sp,
            halo_cells_sent,
            halo_cells_sent * 25,
        );

        stats
    }

    /// Local storage indices of all core voxels, in tile order.
    fn core_indices(&self) -> Vec<u32> {
        let hb = self.layout.hb;
        let mut out = Vec::with_capacity(hb.core.nvoxels());
        for t in 0..self.layout.n_tiles() {
            let span = self.layout.tile_span(t);
            for oz in 0..span.nz {
                for oy in 0..span.ny {
                    let row = span.base + oz * span.sz_stride + oy * span.sy_stride;
                    for ox in 0..span.nx {
                        if hb.is_core(span.origin.offset(ox as i64, oy as i64, oz as i64)) {
                            out.push((row + ox) as u32);
                        }
                    }
                }
            }
        }
        out
    }

    /// Flip one seeded bit in this device's *owned* (core) state — the
    /// HBM-style silent corruption modeled by
    /// `FaultKind::StateCorruption`. Targets the same field family as
    /// `CheckpointStore::inject_corruption` (virion bits, chemokine bits,
    /// or an epithelial timer), so every injection site stresses the same
    /// invariants the integrity scrub/audit checks. XOR semantics: the
    /// same seed applied twice restores the original state.
    pub fn corrupt_bit(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let n = self.layout.hb.core.nvoxels() as u64;
        if n == 0 {
            return;
        }
        let pick = (rng.next_u64() % n) as usize;
        let c = self
            .layout
            .hb
            .core
            .iter_coords()
            .nth(pick)
            .expect("pick < nvoxels");
        let li = self.layout.local(c);
        match rng.next_u64() % 3 {
            0 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                let v = self.soa.virions.get(li);
                self.soa.virions.set(li, f32::from_bits(v.to_bits() ^ bit));
            }
            1 => {
                let bit = 1u32 << (rng.next_u64() % 32);
                let v = self.soa.chem.get(li);
                self.soa.chem.set(li, f32::from_bits(v.to_bits() ^ bit));
            }
            _ => {
                self.soa.epi.timer[li] ^= 1 << (rng.next_u64() % 32);
            }
        }
    }

    /// Copy this device's core region into a global world (verification).
    pub fn write_into(&self, world: &mut World) {
        for t in 0..self.layout.n_tiles() {
            for (li, c) in self.layout.tile_coords(t) {
                if !self.layout.hb.is_core(c) {
                    continue;
                }
                let gi = self.dims.index(c);
                world.epi.state[gi] = self.soa.epi.state[li];
                world.epi.timer[gi] = self.soa.epi.timer[li];
                world.tcells[gi] = self.soa.tcells[li];
                world.virions.set(gi, self.soa.virions.get(li));
                world.chemokine.set(gi, self.soa.chem.get(li));
            }
        }
    }

    /// Number of tiles currently active on this device.
    pub fn n_active_tiles(&self) -> usize {
        self.tracker.n_active()
    }

    /// Fraction of tiles currently active (diagnostics / tests).
    pub fn active_tile_fraction(&self) -> f64 {
        self.tracker.n_active() as f64 / self.layout.n_tiles().max(1) as f64
    }
}

/// Per-tile activity scan: `found[t]` iff tile `t` holds an active voxel.
/// Shared by the periodic check kernel and device construction (the latter
/// so a device rebuilt mid-run starts with the true active set).
fn scan_tile_activity(layout: &TileLayout, soa: &VoxelSoA) -> Vec<bool> {
    let mut found = vec![false; layout.n_tiles()];
    #[allow(clippy::needless_range_loop)] // `tile` also drives tile_span
    for tile in 0..layout.n_tiles() {
        let span = layout.tile_span(tile);
        'scan: for oz in 0..span.nz {
            for oy in 0..span.ny {
                let row = span.base + oz * span.sz_stride + oy * span.sy_stride;
                for li in row..row + span.nx {
                    if voxel_active(
                        soa.epi.get(li),
                        soa.tcells[li],
                        soa.virions.get(li),
                        soa.chem.get(li),
                    ) {
                        found[tile] = true;
                        break 'scan;
                    }
                }
            }
        }
    }
    found
}
