//! Inter-device messages of the GPU executor.
//!
//! Unlike the CPU baseline's many small RPCs, SIMCoV-GPU communicates in two
//! bulk halo copies per step (Fig. 2): the bid wave after T-cell planning,
//! and the boundary-state wave at the end of the step. Each message is one
//! packed buffer per (device, neighbor) pair — the GPU-to-GPU copy pattern
//! UPC++ performs.

use pgas::counters::WireSize;
use simcov_core::tcell::TCellSlot;

/// One voxel's bid contributions (only non-empty entries travel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidCell {
    pub gid: u64,
    pub move_bid: u128,
    pub bind_bid: u128,
}

/// One boundary voxel's full end-of-step state. Epithelial timers are
/// included (unlike the CPU baseline) because neighbor devices recompute
/// ghost FSM/production locally instead of receiving mid-step values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloCell {
    pub gid: u64,
    pub epi_state: u8,
    pub epi_timer: u32,
    pub tcell: TCellSlot,
    pub virions: f32,
    pub chem: f32,
}

/// A bulk device-to-device copy.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuMsg {
    /// The bid wave (§3.1): this device's bid contributions for voxels the
    /// receiver also holds (as core or ghost). Receivers max-merge.
    Bids(Vec<BidCell>),
    /// The end-of-step boundary state wave.
    Halo(Vec<HaloCell>),
}

impl GpuMsg {
    /// Payload cells in the message.
    pub fn n_cells(&self) -> usize {
        match self {
            GpuMsg::Bids(v) => v.len(),
            GpuMsg::Halo(v) => v.len(),
        }
    }
}

impl WireSize for GpuMsg {
    fn wire_size(&self) -> usize {
        // Packed on-wire sizes, not Rust in-memory sizes: a bid entry is
        // gid + two 16-byte bids; a halo cell packs to 25 bytes.
        match self {
            GpuMsg::Bids(v) => 16 + v.len() * 40,
            GpuMsg::Halo(v) => 16 + v.len() * 25,
        }
    }

    fn is_bulk(&self) -> bool {
        // All GPU communication is bulk device-to-device copies.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let b = GpuMsg::Bids(vec![
            BidCell {
                gid: 1,
                move_bid: 2,
                bind_bid: 3,
            };
            10
        ]);
        assert_eq!(b.wire_size(), 16 + 400);
        assert_eq!(b.n_cells(), 10);
        let h = GpuMsg::Halo(vec![]);
        assert_eq!(h.wire_size(), 16);
        assert_eq!(h.n_cells(), 0);
    }
}
