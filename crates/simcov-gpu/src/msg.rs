//! Inter-device messages of the GPU executor.
//!
//! Unlike the CPU baseline's many small RPCs, SIMCoV-GPU communicates in two
//! bulk halo copies per step (Fig. 2): the bid wave after T-cell planning,
//! and the boundary-state wave at the end of the step. Each message is one
//! packed buffer per (device, neighbor) pair — the GPU-to-GPU copy pattern
//! UPC++ performs.

use pgas::counters::WireSize;
use pgas::crc::{Crc64, Payload};
use pgas::fault::SplitMix64;
use pgas::wire::{WireCodec, WireReader, WireWrite};
use simcov_core::tcell::TCellSlot;

/// One voxel's bid contributions (only non-empty entries travel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidCell {
    pub gid: u64,
    pub move_bid: u128,
    pub bind_bid: u128,
}

/// One boundary voxel's full end-of-step state. Epithelial timers are
/// included (unlike the CPU baseline) because neighbor devices recompute
/// ghost FSM/production locally instead of receiving mid-step values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloCell {
    pub gid: u64,
    pub epi_state: u8,
    pub epi_timer: u32,
    pub tcell: TCellSlot,
    pub virions: f32,
    pub chem: f32,
}

/// A bulk device-to-device copy.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuMsg {
    /// The bid wave (§3.1): this device's bid contributions for voxels the
    /// receiver also holds (as core or ghost). Receivers max-merge.
    Bids(Vec<BidCell>),
    /// The end-of-step boundary state wave.
    Halo(Vec<HaloCell>),
}

impl GpuMsg {
    /// Payload cells in the message.
    pub fn n_cells(&self) -> usize {
        match self {
            GpuMsg::Bids(v) => v.len(),
            GpuMsg::Halo(v) => v.len(),
        }
    }
}

impl WireSize for GpuMsg {
    fn wire_size(&self) -> usize {
        // Packed on-wire sizes, not Rust in-memory sizes: a bid entry is
        // gid + two 16-byte bids; a halo cell packs to 25 bytes.
        match self {
            GpuMsg::Bids(v) => 16 + v.len() * 40,
            GpuMsg::Halo(v) => 16 + v.len() * 25,
        }
    }

    fn is_bulk(&self) -> bool {
        // All GPU communication is bulk device-to-device copies.
        true
    }
}

impl Payload for GpuMsg {
    fn digest(&self, crc: &mut Crc64) {
        match self {
            GpuMsg::Bids(cells) => {
                crc.write_u8(0);
                crc.write_len(cells.len());
                for c in cells {
                    crc.write_u64(c.gid);
                    crc.write_u128(c.move_bid);
                    crc.write_u128(c.bind_bid);
                }
            }
            GpuMsg::Halo(cells) => {
                crc.write_u8(1);
                crc.write_len(cells.len());
                for c in cells {
                    crc.write_u64(c.gid);
                    crc.write_u8(c.epi_state);
                    crc.write_u32(c.epi_timer);
                    crc.write_u32(c.tcell.0);
                    crc.write_f32(c.virions);
                    crc.write_f32(c.chem);
                }
            }
        }
    }

    fn corrupt(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        match self {
            GpuMsg::Bids(cells) => {
                if cells.is_empty() {
                    return;
                }
                let i = (rng.next_u64() % cells.len() as u64) as usize;
                let c = &mut cells[i];
                match rng.next_u64() % 3 {
                    0 => c.gid ^= 1 << (rng.next_u64() % 64),
                    1 => c.move_bid ^= 1 << (rng.next_u64() % 128),
                    _ => c.bind_bid ^= 1 << (rng.next_u64() % 128),
                }
            }
            GpuMsg::Halo(cells) => {
                if cells.is_empty() {
                    return;
                }
                let i = (rng.next_u64() % cells.len() as u64) as usize;
                let c = &mut cells[i];
                match rng.next_u64() % 6 {
                    0 => c.gid ^= 1 << (rng.next_u64() % 64),
                    1 => c.epi_state ^= 1 << (rng.next_u64() % 8),
                    2 => c.epi_timer ^= 1 << (rng.next_u64() % 32),
                    3 => c.tcell.0 ^= 1 << (rng.next_u64() % 32),
                    4 => {
                        let bit = 1u32 << (rng.next_u64() % 32);
                        c.virions = f32::from_bits(c.virions.to_bits() ^ bit);
                    }
                    _ => {
                        let bit = 1u32 << (rng.next_u64() % 32);
                        c.chem = f32::from_bits(c.chem.to_bits() ^ bit);
                    }
                }
            }
        }
    }

    fn corruptible(&self) -> bool {
        self.n_cells() > 0
    }
}

/// Process-boundary codec, mirroring the [`Payload::digest`] layout field
/// for field (same variant tags, same little-endian scalar order).
impl WireCodec for GpuMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GpuMsg::Bids(cells) => {
                out.put_u8(0);
                out.put_u64(cells.len() as u64);
                for c in cells {
                    out.put_u64(c.gid);
                    out.put_u128(c.move_bid);
                    out.put_u128(c.bind_bid);
                }
            }
            GpuMsg::Halo(cells) => {
                out.put_u8(1);
                out.put_u64(cells.len() as u64);
                for c in cells {
                    out.put_u64(c.gid);
                    out.put_u8(c.epi_state);
                    out.put_u32(c.epi_timer);
                    out.put_u32(c.tcell.0);
                    out.put_f32(c.virions);
                    out.put_f32(c.chem);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(match r.read_u8()? {
            0 => {
                let n = r.read_len(40)?;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    cells.push(BidCell {
                        gid: r.read_u64()?,
                        move_bid: r.read_u128()?,
                        bind_bid: r.read_u128()?,
                    });
                }
                GpuMsg::Bids(cells)
            }
            1 => {
                let n = r.read_len(25)?;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    cells.push(HaloCell {
                        gid: r.read_u64()?,
                        epi_state: r.read_u8()?,
                        epi_timer: r.read_u32()?,
                        tcell: TCellSlot(r.read_u32()?),
                        virions: r.read_f32()?,
                        chem: r.read_f32()?,
                    });
                }
                GpuMsg::Halo(cells)
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_a_self_inverse_and_never_silent() {
        let msgs = vec![
            GpuMsg::Bids(vec![
                BidCell {
                    gid: 9,
                    move_bid: 0xABCD,
                    bind_bid: 0x1234,
                };
                5
            ]),
            GpuMsg::Halo(vec![
                HaloCell {
                    gid: 3,
                    epi_state: 2,
                    epi_timer: 17,
                    tcell: TCellSlot::EMPTY,
                    virions: 0.75,
                    chem: 0.125,
                };
                4
            ]),
        ];
        let digest = |m: &GpuMsg| {
            let mut c = Crc64::new();
            m.digest(&mut c);
            c.finish()
        };
        for msg in msgs {
            assert!(msg.corruptible());
            for seed in 0..64u64 {
                let mut m = msg.clone();
                m.corrupt(seed);
                assert_ne!(digest(&m), digest(&msg), "flip changed the digest");
                m.corrupt(seed);
                assert_eq!(m, msg, "second application restores the original");
            }
        }
        assert!(!GpuMsg::Bids(vec![]).corruptible());
        assert!(!GpuMsg::Halo(vec![]).corruptible());
    }

    #[test]
    fn wire_sizes() {
        let b = GpuMsg::Bids(vec![
            BidCell {
                gid: 1,
                move_bid: 2,
                bind_bid: 3,
            };
            10
        ]);
        assert_eq!(b.wire_size(), 16 + 400);
        assert_eq!(b.n_cells(), 10);
        let h = GpuMsg::Halo(vec![]);
        assert_eq!(h.wire_size(), 16);
        assert_eq!(h.n_cells(), 0);
    }

    #[test]
    fn wire_codec_roundtrips_every_variant() {
        let msgs = vec![
            GpuMsg::Bids(vec![BidCell {
                gid: u64::MAX,
                move_bid: u128::MAX,
                bind_bid: 1,
            }]),
            GpuMsg::Bids(vec![]),
            GpuMsg::Halo(vec![HaloCell {
                gid: 3,
                epi_state: 2,
                epi_timer: 17,
                tcell: TCellSlot::EMPTY,
                virions: f32::from_bits(1), // denormal survives bit-exactly
                chem: -0.0,
            }]),
        ];
        let payload = pgas::wire::encode_bucket(&msgs);
        let back: Vec<GpuMsg> =
            pgas::wire::decode_bucket(msgs.len() as u64, &payload).expect("clean payload");
        assert_eq!(back, msgs);
        assert!(pgas::wire::decode_bucket::<GpuMsg>(
            msgs.len() as u64,
            &payload[..payload.len() - 1]
        )
        .is_none());
        let mut bad = payload.clone();
        bad[0] = 7; // unknown variant tag
        assert!(pgas::wire::decode_bucket::<GpuMsg>(msgs.len() as u64, &bad).is_none());
    }
}
